#!/usr/bin/env python
"""Cross-scheduler smoke harness: one spec, three backends, identical bytes.

Runs the bundled smoke experiment spec three ways —

1. in-process (``ExecutionPolicy(workers=1)``),
2. on a :class:`LocalScheduler` worker pool (``workers=2``),
3. on a :class:`RemoteScheduler` against two spawned ``freqywm worker``
   processes —

renders ``report.json`` / ``report.md`` for each, and exits non-zero
unless all three pairs are byte-identical and a cached rerun of the warm
run directory executes zero tasks. CI's ``scheduler-smoke`` job calls
this; it is equally useful locally after touching anything under
``src/repro/exec``.

Usage::

    python tools/scheduler_smoke.py [--spec experiments/specs/smoke.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from contextlib import contextmanager
from pathlib import Path

from repro.exec.blobs import dataplane_enabled
from repro.exec.policy import ExecutionPolicy
from repro.experiments import load_spec, run_experiment, write_report


@contextmanager
def spawn_worker(socket_path: Path):
    """A live ``freqywm worker`` on ``socket_path`` for the block's duration."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--socket",
            str(socket_path),
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = process.stderr.readline()
        if "listening on" not in line:
            process.terminate()
            raise RuntimeError(f"worker failed to start: {line!r}")
        yield process
    finally:
        process.terminate()
        process.wait(timeout=10)


def run_backend(spec, run_dir: Path, policy: ExecutionPolicy, label: str):
    """Run the spec under one policy and return (result, json bytes, md bytes)."""
    result = run_experiment(spec, run_dir, policy=policy)
    json_path, md_path = write_report(run_dir)
    print(
        f"  {label}: {result.executed_total} executed, "
        f"{result.cached_total} cached, {result.seconds:.2f}s "
        f"({result.workers} worker(s), {result.bytes_sent} bytes sent, "
        f"{result.bytes_deduped} deduped, {result.shm_segments} shm segment(s))"
    )
    telemetry_path = Path(run_dir) / "telemetry.json"
    if telemetry_path.exists():
        # Present only when FREQYWM_TELEMETRY was on for this process;
        # surfacing it here lets the CI telemetry job reuse this harness.
        telemetry = json.loads(telemetry_path.read_text(encoding="utf-8"))
        spans = telemetry.get("spans", {})
        print(
            f"    telemetry: features={','.join(telemetry.get('features', []))} "
            f"spans_buffered={spans.get('buffered', 0)} "
            f"dropped={spans.get('dropped', 0)} ({telemetry_path})"
        )
    return result, json_path.read_bytes(), md_path.read_bytes()


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--spec",
        default="experiments/specs/smoke.json",
        help="experiment spec to run (default: the bundled smoke spec)",
    )
    args = parser.parse_args(argv)
    spec = load_spec(args.spec)

    with tempfile.TemporaryDirectory(prefix="scheduler-smoke-") as tmp:
        tmp_path = Path(tmp)
        mode = "blob" if dataplane_enabled() else "inline"
        print(
            "running the smoke spec on all three scheduler backends "
            f"(data plane: {mode}):"
        )
        serial, serial_json, serial_md = run_backend(
            spec, tmp_path / "serial", ExecutionPolicy(workers=1), "in-process"
        )
        local, local_json, local_md = run_backend(
            spec, tmp_path / "local", ExecutionPolicy(workers=2), "local pool"
        )

        sock_a = tmp_path / "worker-a.sock"
        sock_b = tmp_path / "worker-b.sock"
        with spawn_worker(sock_a), spawn_worker(sock_b):
            remote_policy = ExecutionPolicy(
                scheduler="remote",
                addresses=(f"unix:{sock_a}", f"unix:{sock_b}"),
            )
            remote, remote_json, remote_md = run_backend(
                spec, tmp_path / "remote", remote_policy, "remote x2"
            )

        failures = []
        if serial.executed_total == 0:
            failures.append("the in-process run executed nothing")
        if remote.workers != 2:
            failures.append(f"remote run used {remote.workers} workers, wanted 2")
        for label, payload, baseline in [
            ("local report.json", local_json, serial_json),
            ("local report.md", local_md, serial_md),
            ("remote report.json", remote_json, serial_json),
            ("remote report.md", remote_md, serial_md),
        ]:
            if payload != baseline:
                failures.append(f"{label} differs from the in-process report")

        rerun = run_experiment(
            spec, tmp_path / "local", policy=ExecutionPolicy(workers=2)
        )
        if rerun.executed_total != 0:
            failures.append(
                f"cached rerun executed {rerun.executed_total} tasks, wanted 0"
            )
        else:
            print(f"  cached rerun: all {rerun.cached_total} tasks served from cache")

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1

    print("scheduler smoke passed: all three backends byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
