#!/usr/bin/env python3
"""Docstring-coverage gate for the documented service surface.

Parses every ``.py`` file under the given directories and requires a
docstring on the module itself and on every *public* definition — any
class, function or method whose name does not start with ``_``. The
dispute and service layers are the repo's wire- and vault-facing API
(``docs/service.md`` / ``docs/registry.md`` document them), so an
undocumented public symbol there is a review failure, not a style nit.

Stdlib-only (``ast``), so the CI docs job needs no extra tooling::

    python tools/check_docstrings.py src/repro/dispute src/repro/service

Exits non-zero listing every undocumented public definition.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

_DEFINITIONS = (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)


def _undocumented(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, dotted_name)`` for every public def lacking a docstring."""
    if ast.get_docstring(tree) is None:
        yield 1, "<module>"
    stack: List[Tuple[ast.AST, str]] = [(tree, "")]
    while stack:
        node, prefix = stack.pop()
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _DEFINITIONS):
                continue
            dotted = f"{prefix}{child.name}"
            if not child.name.startswith("_"):
                if ast.get_docstring(child) is None:
                    yield child.lineno, dotted
            # Private containers may still hold public members worth
            # documenting, but their internals are not part of the gate.
            if isinstance(child, ast.ClassDef) and not child.name.startswith("_"):
                stack.append((child, f"{dotted}."))
    return


def check_file(path: Path) -> List[Tuple[int, str]]:
    """All undocumented public definitions of one file, sorted by line."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return sorted(_undocumented(tree))


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_docstrings.py DIR [DIR ...]", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for name in argv:
        root = Path(name)
        if not root.exists():
            print(f"{name}: path not found", file=sys.stderr)
            failures += 1
            continue
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            checked += 1
            for line, dotted in check_file(path):
                print(f"{path}:{line}: missing docstring on {dotted}", file=sys.stderr)
                failures += 1
    if failures:
        print(f"{failures} undocumented public definition(s)", file=sys.stderr)
        return 1
    print(f"docstring coverage OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
