#!/usr/bin/env python3
"""Compare two benchmark smoke reports and fail on wall-clock regressions.

CI calls this after the smoke sweep with the previous run's
``BENCH_smoke.json`` (restored from the baseline cache) as the baseline
and the fresh report as the current run::

    python tools/compare_bench.py BASELINE.json CURRENT.json --max-ratio 2.0

The tracked metric is each benchmark's ``seconds`` wall clock. The check
fails (exit 1) when any benchmark present in both reports got slower
than ``max-ratio`` times its baseline; benchmarks new in the current
report are listed informationally, and sub-floor timings (both runs
under ``--min-seconds``) are ignored as timer noise. The comparison is
**tolerant by design** when no baseline exists — first runs, expired
caches and renamed artifacts exit 0 with a notice — so the gate can
never brick a fresh repository.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: Below this wall clock (seconds) a ratio is timer noise, not a signal.
DEFAULT_MIN_SECONDS = 0.5


def load_report(path: Path) -> Dict[str, float]:
    """Map benchmark name -> seconds from a ``BENCH_smoke.json`` report.

    Raises ``ValueError`` for files that exist but are not smoke reports
    (corrupt cache entries must not masquerade as regressions).
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    results = payload.get("results")
    if not isinstance(results, list):
        raise ValueError(f"{path}: not a smoke report (no results list)")
    timings: Dict[str, float] = {}
    for entry in results:
        timings[str(entry["benchmark"])] = float(entry["seconds"])
    return timings


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    *,
    max_ratio: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[str]:
    """Regression messages for every tracked metric exceeding the ratio."""
    regressions: List[str] = []
    for name in sorted(current):
        if name not in baseline:
            continue
        before, after = baseline[name], current[name]
        if before < min_seconds and after < min_seconds:
            continue  # both under the noise floor
        allowed = max(before * max_ratio, min_seconds)
        if after > allowed:
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"({after / before if before else float('inf'):.2f}x, "
                f"allowed {max_ratio:.1f}x)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="previous BENCH_smoke.json")
    parser.add_argument("current", type=Path, help="fresh BENCH_smoke.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when a benchmark exceeds this multiple of its baseline",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="ignore benchmarks where both runs are under this wall clock",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}: skipping regression check")
        return 0
    try:
        baseline = load_report(args.baseline)
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        print(f"unreadable baseline ({error}): skipping regression check")
        return 0
    current = load_report(args.current)

    fresh = sorted(set(current) - set(baseline))
    if fresh:
        print(f"new benchmarks (no baseline): {', '.join(fresh)}")
    regressions = compare(
        baseline, current, max_ratio=args.max_ratio, min_seconds=args.min_seconds
    )
    if regressions:
        for line in regressions:
            print(f"REGRESSION {line}", file=sys.stderr)
        print(f"{len(regressions)} benchmark regression(s)", file=sys.stderr)
        return 1
    shared = len(set(current) & set(baseline))
    print(f"no regressions across {shared} benchmark(s) (max {args.max_ratio:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
