#!/usr/bin/env python3
"""Compare two benchmark smoke reports and fail on wall-clock regressions.

CI calls this after the smoke sweep with the previous run's
``BENCH_smoke.json`` (restored from the baseline cache) as the baseline
and the fresh report as the current run::

    python tools/compare_bench.py BASELINE.json CURRENT.json --max-ratio 2.0

The tracked metric is tail-aware: when *both* reports carry the
``p95_seconds`` per-iteration latency (written by
``bench_utils.py --smoke --repeat N``), that is what gets compared —
a benchmark whose median stayed flat but whose tail doubled is a real
regression. Older single-shot reports fall back to the ``seconds``
wall clock (``--metric`` forces either). The check fails (exit 1) when
any benchmark present in both reports got slower than ``max-ratio``
times its baseline; benchmarks new in the current report are listed
informationally, and sub-floor timings (both runs under
``--min-seconds``) are ignored as timer noise. The comparison is
**tolerant by design** when no baseline exists — first runs, expired
caches and renamed artifacts exit 0 with a notice — so the gate can
never brick a fresh repository.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: Below this wall clock (seconds) a ratio is timer noise, not a signal.
DEFAULT_MIN_SECONDS = 0.5


def report_entries(path: Path) -> List[dict]:
    """The ``results`` entries of a ``BENCH_smoke.json`` report.

    Raises ``ValueError`` for files that exist but are not smoke reports
    (corrupt cache entries must not masquerade as regressions).
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    results = payload.get("results")
    if not isinstance(results, list):
        raise ValueError(f"{path}: not a smoke report (no results list)")
    return results


def entry_timings(entries: List[dict], metric: str) -> Dict[str, float]:
    """Map benchmark name -> the chosen latency metric.

    Entries missing the metric (older reports) fall back to ``seconds``
    so a forced ``--metric p95_seconds`` still compares something real.
    """
    timings: Dict[str, float] = {}
    for entry in entries:
        value = entry.get(metric, entry["seconds"])
        timings[str(entry["benchmark"])] = float(value)
    return timings


def select_metric(baseline: List[dict], current: List[dict]) -> str:
    """``p95_seconds`` when every entry on both sides has it, else ``seconds``."""
    if all("p95_seconds" in entry for entry in baseline + current):
        return "p95_seconds"
    return "seconds"


def load_report(path: Path, metric: str = "seconds") -> Dict[str, float]:
    """Map benchmark name -> ``metric`` from a ``BENCH_smoke.json`` report."""
    return entry_timings(report_entries(path), metric)


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    *,
    max_ratio: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[str]:
    """Regression messages for every tracked metric exceeding the ratio."""
    regressions: List[str] = []
    for name in sorted(current):
        if name not in baseline:
            continue
        before, after = baseline[name], current[name]
        if before < min_seconds and after < min_seconds:
            continue  # both under the noise floor
        allowed = max(before * max_ratio, min_seconds)
        if after > allowed:
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"({after / before if before else float('inf'):.2f}x, "
                f"allowed {max_ratio:.1f}x)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="previous BENCH_smoke.json")
    parser.add_argument("current", type=Path, help="fresh BENCH_smoke.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when a benchmark exceeds this multiple of its baseline",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="ignore benchmarks where both runs are under this wall clock",
    )
    parser.add_argument(
        "--metric",
        choices=("auto", "seconds", "p95_seconds"),
        default="auto",
        help=(
            "latency metric to compare (auto: p95_seconds when both "
            "reports carry it, else seconds)"
        ),
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}: skipping regression check")
        return 0
    try:
        baseline_entries = report_entries(args.baseline)
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        print(f"unreadable baseline ({error}): skipping regression check")
        return 0
    current_entries = report_entries(args.current)
    metric = args.metric
    if metric == "auto":
        metric = select_metric(baseline_entries, current_entries)
    baseline = entry_timings(baseline_entries, metric)
    current = entry_timings(current_entries, metric)

    fresh = sorted(set(current) - set(baseline))
    if fresh:
        print(f"new benchmarks (no baseline): {', '.join(fresh)}")
    regressions = compare(
        baseline, current, max_ratio=args.max_ratio, min_seconds=args.min_seconds
    )
    if regressions:
        for line in regressions:
            print(f"REGRESSION {line}", file=sys.stderr)
        print(f"{len(regressions)} benchmark regression(s)", file=sys.stderr)
        return 1
    shared = len(set(current) & set(baseline))
    print(
        f"no regressions across {shared} benchmark(s) "
        f"(metric {metric}, max {args.max_ratio:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
