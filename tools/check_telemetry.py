#!/usr/bin/env python
"""Validate the telemetry artifacts of an experiment run.

CI's telemetry job runs the bundled smoke spec with
``FREQYWM_TELEMETRY=spans,metrics`` and then points this checker at the
run directory (plus a captured ``freqywm stats`` exposition). The
checker fails (exit 1) unless:

* ``telemetry.json`` exists, parses, names only known features, and
  carries the run summary (plus a well-formed metrics snapshot when the
  ``metrics`` feature was on);
* ``telemetry/spans.jsonl`` parses line by line, every span carries the
  documented schema (``docs/observability.md``), the stream stitches
  into **one** trace with **zero** orphans, and the tree is rooted at
  ``experiment.run`` with task spans beneath it;
* the Prometheus text (``--prometheus FILE``, optional) is valid
  exposition-format 0.0.4: every sample parses, every metric is
  ``# TYPE``-declared before its samples, all names carry the
  ``freqywm_`` prefix, and histogram buckets are cumulative ending in
  ``+Inf``.

Usage::

    python tools/check_telemetry.py RUN_DIR [--prometheus FILE]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.report import SPANS_RELPATH, build_tree, load_spans, orphan_spans  # noqa: E402
from repro.obs.trace import TELEMETRY_FEATURES  # noqa: E402

#: Keys every span record must carry (see docs/observability.md).
SPAN_KEYS = ("trace", "span", "parent", "name", "start", "duration", "status", "pid")

#: One exposition sample: name, optional labels, value.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?[0-9.eE+]+|NaN|[+-]Inf)$"
)

TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$")


def check_telemetry_json(run_dir: Path) -> List[str]:
    """Failures for the run's ``telemetry.json`` summary artifact."""
    failures: List[str] = []
    path = run_dir / "telemetry.json"
    if not path.exists():
        return [f"missing {path}"]
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"{path}: not valid JSON ({error})"]
    features = payload.get("features")
    if not isinstance(features, list) or not features:
        failures.append(f"{path}: no enabled features recorded")
        features = []
    unknown = sorted(set(features) - set(TELEMETRY_FEATURES))
    if unknown:
        failures.append(f"{path}: unknown features {unknown}")
    run = payload.get("run")
    if not isinstance(run, dict) or "executed_total" not in run:
        failures.append(f"{path}: missing run summary")
    if "metrics" in features:
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            failures.append(f"{path}: metrics feature on but no snapshot")
        else:
            for section in ("counters", "gauges", "histograms", "views"):
                if not isinstance(metrics.get(section), dict):
                    failures.append(f"{path}: snapshot missing {section!r}")
    if "spans" in features and not isinstance(payload.get("spans"), dict):
        failures.append(f"{path}: spans feature on but no spans summary")
    return failures


def check_spans(run_dir: Path) -> List[str]:
    """Failures for the run's span stream: schema, stitching, rooting."""
    path = run_dir / SPANS_RELPATH
    if not path.exists():
        return [f"missing {path}"]
    try:
        spans = load_spans(path)
    except Exception as error:  # surfaced as one failure, not a traceback
        return [f"{path}: {error}"]
    failures: List[str] = []
    if not spans:
        return [f"{path}: no spans recorded"]
    for index, span in enumerate(spans):
        missing = [key for key in SPAN_KEYS if key not in span]
        if missing:
            failures.append(f"{path}:{index + 1}: span missing keys {missing}")
            continue
        if span["status"] not in ("ok", "error"):
            failures.append(f"{path}:{index + 1}: bad status {span['status']!r}")
        if not isinstance(span["duration"], (int, float)) or span["duration"] < 0:
            failures.append(f"{path}:{index + 1}: bad duration {span['duration']!r}")
    traces = build_tree(spans)
    if len(traces) != 1:
        failures.append(f"{path}: {len(traces)} traces, wanted one stitched tree")
    orphans = orphan_spans(spans)
    if orphans:
        names = sorted({str(span["name"]) for span in orphans})
        failures.append(f"{path}: {len(orphans)} orphan span(s) ({names})")
    roots = [root for roots in traces.values() for root in roots]
    if not any(root.name == "experiment.run" for root in roots):
        failures.append(f"{path}: no experiment.run root span")
    if not any(str(span["name"]).startswith("task:") for span in spans):
        failures.append(f"{path}: no task spans recorded")
    return failures


def check_prometheus(text: str, source: str = "exposition") -> List[str]:
    """Failures for a Prometheus text-format 0.0.4 exposition."""
    failures: List[str] = []
    if not text.strip():
        return [f"{source}: empty exposition"]
    if not text.endswith("\n"):
        failures.append(f"{source}: exposition must end with a newline")
    declared: Dict[str, str] = {}
    buckets: Dict[str, List[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("#"):
            match = TYPE_RE.match(line)
            if match is None:
                failures.append(f"{source}:{number}: malformed comment {line!r}")
            else:
                declared[match.group(1)] = match.group(2)
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            failures.append(f"{source}:{number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        if not name.startswith("freqywm_"):
            failures.append(f"{source}:{number}: {name} lacks freqywm_ prefix")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and base not in declared:
            failures.append(f"{source}:{number}: {name} has no # TYPE line")
        if name.endswith("_bucket") and match.group("labels"):
            label_match = re.search(r'le="([^"]*)"', match.group("labels"))
            if label_match is not None:
                buckets.setdefault(base, []).append(label_match.group(1))
    for base, bounds in buckets.items():
        if bounds[-1] != "+Inf":
            failures.append(f"{source}: histogram {base} does not end at +Inf")
    return failures


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "run_dir", type=Path, help="run directory written with telemetry on"
    )
    parser.add_argument(
        "--prometheus",
        type=Path,
        default=None,
        metavar="FILE",
        help="a captured `freqywm stats` exposition to validate too",
    )
    args = parser.parse_args(argv)

    failures = check_telemetry_json(args.run_dir)
    failures += check_spans(args.run_dir)
    if args.prometheus is not None:
        failures += check_prometheus(
            args.prometheus.read_text(encoding="utf-8"), str(args.prometheus)
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"{len(failures)} telemetry failure(s)", file=sys.stderr)
        return 1
    checked = "telemetry.json + spans"
    if args.prometheus is not None:
        checked += " + prometheus exposition"
    print(f"telemetry artifacts valid ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
