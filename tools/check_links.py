#!/usr/bin/env python3
"""Internal-link checker for the markdown docs.

Scans the given markdown files for ``[text](target)`` links and verifies
that every *internal* target — a relative path, optionally with a
``#fragment`` — exists on disk relative to the file containing the link.
External targets (``http(s)://``, ``mailto:``) and pure in-page
fragments (``#section``) are ignored; checking them would need network
access / an anchor parser and the CI docs job must stay hermetic.

Usage::

    python tools/check_links.py README.md docs/*.md

Exits non-zero listing every broken link (file, line, target), so the CI
docs job fails the PR that breaks a documented path.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: ``[text](target)`` with a non-greedy target that stops at the first
#: closing parenthesis; images (``![alt](src)``) match the same shape.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(path: Path) -> List[Tuple[int, str]]:
    """All ``(line_number, target)`` markdown links in ``path``."""
    links: List[Tuple[int, str]] = []
    in_code_fence = False
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((line_number, match.group(1)))
    return links


def broken_links(path: Path) -> List[Tuple[int, str]]:
    """The internal links of ``path`` whose targets do not exist."""
    broken: List[Tuple[int, str]] = []
    for line_number, target in iter_links(path):
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append((line_number, target))
    return broken


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for line_number, target in broken_links(path):
            print(f"{name}:{line_number}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all internal links OK across {len(argv)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
