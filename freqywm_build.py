"""Minimal, stdlib-only PEP 517 / PEP 660 build backend for this project.

Why this exists
---------------
The reproduction targets fully offline environments. The stock setuptools
backend cannot produce (editable) wheels there: PEP 660 editable installs
require the ``wheel`` package, and pip's build isolation tries to download
build dependencies from PyPI. This backend has **zero** build requirements
(``requires = []`` in ``pyproject.toml``) and uses only the standard
library, so ``pip install -e .`` and ``pip install .`` both work with no
network access.

What it builds
--------------
* ``build_wheel``     — a normal wheel containing the ``repro`` package
  copied from ``src/``.
* ``build_editable``  — an editable wheel containing a ``.pth`` file that
  points at the project's ``src/`` directory.
* ``build_sdist``     — a source tarball of the project tree.

Both wheel flavours carry proper ``dist-info`` metadata (METADATA, WHEEL,
RECORD, entry_points.txt) so the ``freqywm`` console script is installed
and ``pip uninstall`` works.
"""

from __future__ import annotations

import base64
import hashlib
import os
import tarfile
import zipfile
from pathlib import Path

PROJECT_ROOT = Path(__file__).resolve().parent
PACKAGE_NAME = "repro"
DIST_NAME = "repro"
VERSION = "1.0.0"
WHEEL_TAG = "py3-none-any"
SUMMARY = (
    "FreqyWM: frequency watermarking for the new data economy (ICDE 2024 reproduction)"
)
DEPENDENCIES = ("numpy", "scipy", "networkx")


# --------------------------------------------------------------------------- #
# Metadata files
# --------------------------------------------------------------------------- #


def _metadata_text() -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {DIST_NAME}",
        f"Version: {VERSION}",
        f"Summary: {SUMMARY}",
        "Requires-Python: >=3.10",
        "License: MIT",
    ]
    lines.extend(f"Requires-Dist: {dependency}" for dependency in DEPENDENCIES)
    readme = PROJECT_ROOT / "README.md"
    body = readme.read_text(encoding="utf-8") if readme.exists() else SUMMARY
    lines.append("Description-Content-Type: text/markdown")
    return "\n".join(lines) + "\n\n" + body


def _wheel_text() -> str:
    return (
        "Wheel-Version: 1.0\n"
        "Generator: freqywm_build (stdlib)\n"
        "Root-Is-Purelib: true\n"
        f"Tag: {WHEEL_TAG}\n"
    )


def _entry_points_text() -> str:
    return "[console_scripts]\nfreqywm = repro.cli:main\n"


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class _WheelWriter:
    """Accumulates files and writes a spec-compliant wheel archive."""

    def __init__(self, wheel_directory: str, dist_info: str) -> None:
        self.path = Path(wheel_directory) / f"{DIST_NAME}-{VERSION}-{WHEEL_TAG}.whl"
        self.dist_info = dist_info
        self._records: list[tuple[str, str, int]] = []
        self._zip = zipfile.ZipFile(self.path, "w", compression=zipfile.ZIP_DEFLATED)

    def add_bytes(self, arcname: str, data: bytes) -> None:
        self._zip.writestr(zipfile.ZipInfo(arcname, date_time=(2024, 1, 1, 0, 0, 0)), data)
        self._records.append((arcname, _record_hash(data), len(data)))

    def add_file(self, arcname: str, source: Path) -> None:
        self.add_bytes(arcname, source.read_bytes())

    def close(self) -> str:
        record_name = f"{self.dist_info}/RECORD"
        lines = [f"{name},{digest},{size}" for name, digest, size in self._records]
        lines.append(f"{record_name},,")
        self._zip.writestr(
            zipfile.ZipInfo(record_name, date_time=(2024, 1, 1, 0, 0, 0)),
            "\n".join(lines) + "\n",
        )
        self._zip.close()
        return self.path.name


def _add_dist_info(writer: _WheelWriter, dist_info: str) -> None:
    writer.add_bytes(f"{dist_info}/METADATA", _metadata_text().encode("utf-8"))
    writer.add_bytes(f"{dist_info}/WHEEL", _wheel_text().encode("utf-8"))
    writer.add_bytes(f"{dist_info}/entry_points.txt", _entry_points_text().encode("utf-8"))
    writer.add_bytes(f"{dist_info}/top_level.txt", f"{PACKAGE_NAME}\n".encode("utf-8"))


def _package_files() -> list[tuple[str, Path]]:
    package_root = PROJECT_ROOT / "src" / PACKAGE_NAME
    files = []
    for path in sorted(package_root.rglob("*")):
        if path.is_dir() or "__pycache__" in path.parts:
            continue
        arcname = str(Path(PACKAGE_NAME) / path.relative_to(package_root)).replace(os.sep, "/")
        files.append((arcname, path))
    return files


# --------------------------------------------------------------------------- #
# PEP 517 hooks
# --------------------------------------------------------------------------- #


def get_requires_for_build_wheel(config_settings=None):  # noqa: D103 - PEP 517 hook
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103 - PEP 660 hook
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103 - PEP 517 hook
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    """Build a regular wheel from the ``src/`` tree."""
    dist_info = f"{DIST_NAME}-{VERSION}.dist-info"
    writer = _WheelWriter(wheel_directory, dist_info)
    for arcname, path in _package_files():
        writer.add_file(arcname, path)
    _add_dist_info(writer, dist_info)
    return writer.close()


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    """Build an editable wheel: a ``.pth`` file pointing at ``src/``."""
    dist_info = f"{DIST_NAME}-{VERSION}.dist-info"
    writer = _WheelWriter(wheel_directory, dist_info)
    src_path = str((PROJECT_ROOT / "src").resolve())
    writer.add_bytes(f"__editable__.{DIST_NAME}.pth", (src_path + "\n").encode("utf-8"))
    _add_dist_info(writer, dist_info)
    return writer.close()


def build_sdist(sdist_directory, config_settings=None):
    """Build a source distribution tarball of the project tree."""
    name = f"{DIST_NAME}-{VERSION}"
    sdist_path = Path(sdist_directory) / f"{name}.tar.gz"
    include = ["pyproject.toml", "setup.py", "freqywm_build.py", "README.md", "DESIGN.md",
               "EXPERIMENTS.md", "src", "tests", "benchmarks", "examples"]
    with tarfile.open(sdist_path, "w:gz") as archive:
        for entry in include:
            path = PROJECT_ROOT / entry
            if not path.exists():
                continue
            archive.add(path, arcname=f"{name}/{entry}", filter=_exclude_pycache)
    return sdist_path.name


def _exclude_pycache(tarinfo: tarfile.TarInfo):
    if "__pycache__" in tarinfo.name or tarinfo.name.endswith(".pyc"):
        return None
    return tarinfo
