#!/usr/bin/env python3
"""Resident detection service: cached detectors + request coalescing.

A marketplace operator runs ownership verdicts as a resident service.
Requests arrive one dataset at a time — takedown checks, buyer audits,
crawl screening — against a working set of watermarks, and the service
amortises what a stateless deployment pays per request:

1. **Detector cache** — two watermarks (two buyers' fingerprinted
   copies) are registered up front; their detectors are constructed once
   and every later verdict is an LRU cache hit (no SHA-256 moduli
   derivation on the request path).
2. **Request coalescing** — 300 concurrent single-dataset requests,
   interleaved across both secrets, are drained from the service queue
   in small time windows and answered with a handful of vectorized
   ``detect_many`` passes instead of 300 single-dataset ones.
3. **Parity** — every coalesced verdict is checked against a direct
   ``WatermarkDetector.detect`` call: identical counters, identical
   verdicts; the service only changes *when* the math runs.
4. **Wire format** — the same requests expressed as JSON-lines
   (``repro.service.wire``), the format ``freqywm serve`` / ``freqywm
   client`` speak over stdio or a Unix socket.

Run with:  python examples/detection_service.py
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.detector import WatermarkDetector, detect_watermark
from repro.core.generator import generate_watermark
from repro.core.histogram import TokenHistogram
from repro.datasets.synthetic import generate_power_law_tokens
from repro.service import (
    DetectRequest,
    ServiceConfig,
    SyncDetectionService,
    encode_line,
)
from repro.utils.rng import ensure_rng

#: Concurrent single-dataset requests fired at the service.
REQUESTS = 300
#: Suspected-dataset size (tokens) of each request.
SUSPECT_SIZE = 2_000


def build_watermarks():
    """Two buyer copies of one asset, each with its own secret."""
    asset = generate_power_law_tokens(0.65, n_tokens=300, sample_size=120_000, rng=1)
    buyer_a = generate_watermark(asset, budget_percent=2.0, modulus_cap=31, rng=2)
    buyer_b = generate_watermark(asset, budget_percent=2.0, modulus_cap=29, rng=3)
    return buyer_a, buyer_b


def build_request_mix(buyer_a, buyer_b):
    """An interleaved request stream: copies, decoys, cross-buyer data."""
    rng = ensure_rng(99)
    decoy = TokenHistogram.from_tokens(
        [f"decoy-{int(i)}" for i in rng.integers(0, 50, size=20_000)]
    )
    pool = [
        (0, buyer_a.watermarked_histogram),  # buyer A's copy -> accept under A
        (1, buyer_b.watermarked_histogram),  # buyer B's copy -> accept under B
        (0, decoy),                          # unrelated data  -> reject
        (1, buyer_a.watermarked_histogram),  # A's copy under B's secret
    ]
    order = rng.integers(0, len(pool), size=REQUESTS)
    return [pool[int(index)] for index in order]


def main() -> int:
    buyer_a, buyer_b = build_watermarks()
    secrets = [buyer_a.secret, buyer_b.secret]
    requests = build_request_mix(buyer_a, buyer_b)

    # -- resident service: register both watermarks, fire the burst ---- #
    config = ServiceConfig(max_batch=64, max_delay=0.005, cache_capacity=8)
    with SyncDetectionService(config) as service:
        fingerprints = [service.register_secret(secret) for secret in secrets]
        started = time.perf_counter()
        per_secret = {}
        for index, (secret_index, data) in enumerate(requests):
            per_secret.setdefault(secret_index, []).append((index, data))
        # Both secrets' bursts are fired from concurrent threads, so the
        # service's coalescing windows genuinely interleave requests
        # across the two detectors (each window is grouped per detector).
        verdicts = [None] * len(requests)
        with ThreadPoolExecutor(max_workers=len(per_secret)) as executor:
            futures = {
                executor.submit(
                    service.detect_all,
                    [data for _i, data in members],
                    secret_fingerprint=fingerprints[secret_index],
                ): members
                for secret_index, members in per_secret.items()
            }
            for future, members in futures.items():
                for (request_index, _data), result in zip(members, future.result()):
                    verdicts[request_index] = result
        service_seconds = time.perf_counter() - started
        stats = service.stats.as_dict()
        cache = service.cache_stats().as_dict()

    # -- baseline: the same requests as stateless one-shot calls ------- #
    started = time.perf_counter()
    baseline = [
        detect_watermark(data, secrets[secret_index])
        for secret_index, data in requests
    ]
    one_shot_seconds = time.perf_counter() - started

    # -- parity: service == direct detection, request by request ------- #
    detectors = [WatermarkDetector(secret) for secret in secrets]
    for (secret_index, data), verdict, direct in zip(requests, verdicts, baseline):
        reference = detectors[secret_index].detect(data)
        assert (verdict.accepted, verdict.accepted_pairs) == (
            reference.accepted,
            reference.accepted_pairs,
        )
        assert (direct.accepted, direct.accepted_pairs) == (
            reference.accepted,
            reference.accepted_pairs,
        )

    accepted = sum(1 for verdict in verdicts if verdict.accepted)
    print(f"requests            : {len(requests)} across {len(secrets)} secrets")
    print(f"accepted verdicts   : {accepted}")
    print(
        f"service             : {service_seconds * 1000:7.1f} ms "
        f"({stats['batches']} vectorized passes, largest window "
        f"{stats['largest_batch']}, cache hit rate {cache['hit_rate']:.1%})"
    )
    print(
        f"one-shot baseline   : {one_shot_seconds * 1000:7.1f} ms "
        f"({len(requests)} detector constructions)"
    )
    print(
        f"speedup             : "
        f"{one_shot_seconds / max(service_seconds, 1e-9):7.1f} x"
    )

    # -- the same thing on the wire ------------------------------------ #
    wire_request = DetectRequest(
        request_id="takedown-001",
        counts=buyer_a.watermarked_histogram.as_dict(),
        secret_fingerprint=fingerprints[0],
    )
    line = encode_line(wire_request)
    print(f"wire request        : {line[:76]}...")
    print("serve it with       : freqywm serve --socket svc.sock --secret a.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
