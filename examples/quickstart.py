#!/usr/bin/env python3
"""Quickstart: watermark a small URL click-stream and detect the watermark.

This walks through the paper's Figure 1 running example end to end:

1. build a dataset of visited URLs (tokens),
2. embed a FreqyWM watermark with a 2 % distortion budget,
3. inspect what changed (pairs, similarity, ranking),
4. detect the watermark on the published copy,
5. show that a dataset without the watermark is rejected.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import detect_watermark, generate_watermark
from repro.analysis.distortion import distortion_report
from repro.core.histogram import TokenHistogram


def build_running_example() -> list:
    """The Figure 1 histogram, expanded into a raw token sequence."""
    frequencies = {
        "youtube.com": 1098,
        "facebook.com": 980,
        "google.com": 674,
        "instagram.com": 537,
        "bbc.com": 64,
        "cnn.com": 53,
        "elpais.com": 53,
    }
    tokens: list = []
    for url, count in frequencies.items():
        tokens.extend([url] * count)
    return tokens


def main() -> None:
    tokens = build_running_example()
    print(f"original dataset: {len(tokens)} URL visits, "
          f"{len(set(tokens))} distinct domains")

    # 1. Embed the watermark. The budget bounds the cosine-similarity drop
    #    of the frequency histogram; the modulus cap z controls how strong
    #    each embedded pair relation is.
    result = generate_watermark(
        tokens,
        budget_percent=2.0,
        modulus_cap=31,
        strategy="optimal",
        rng=7,  # seeded for a reproducible walk-through; omit in production
    )
    print("\n--- watermark generation ---")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")

    # 2. Inspect the distortion: the ranking of domains must be intact and
    #    the histogram should be nearly identical.
    report = distortion_report(
        result.original_histogram.as_dict(),
        result.watermarked_histogram.as_dict(),
        method="freqywm",
    )
    print("\n--- distortion ---")
    print(f"  similarity: {report.similarity_percent:.4f}%")
    print(f"  ranking preserved: {report.ranking_preserved}")
    print(f"  token appearances added+removed: {report.total_absolute_change}")
    print("  top domains after watermarking:")
    for token, count in result.watermarked_histogram.top(4):
        print(f"    {token:<16} {count}")

    # 3. The owner stores the secret list; the watermarked token sequence is
    #    what gets sold / published.
    secret = result.secret
    published_copy = result.watermarked_tokens

    # 4. Later: detect the watermark on a suspected copy.
    detection = detect_watermark(published_copy, secret, pair_threshold=1)
    print("\n--- detection on the published copy ---")
    print(f"  accepted: {detection.accepted}")
    print(f"  verified pairs: {detection.accepted_pairs}/{detection.total_pairs}")

    # 5. A dataset that never carried the watermark is rejected.
    unrelated = TokenHistogram.from_counts(
        {f"site-{index}.example": 500 - index for index in range(40)}
    )
    rejected = detect_watermark(unrelated, secret, pair_threshold=1)
    print("\n--- detection on unrelated data ---")
    print(f"  accepted: {rejected.accepted} "
          f"({rejected.accepted_pairs}/{rejected.total_pairs} pairs verified)")


if __name__ == "__main__":
    main()
