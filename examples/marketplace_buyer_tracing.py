#!/usr/bin/env python3
"""Data-marketplace scenario: per-buyer watermarks and leak tracing.

A data seller offers a click-stream dataset on a marketplace. Every buyer
receives its own watermarked copy, and a fingerprint of each watermark is
lodged in an append-only registry (the paper's "immutable index", played
here by a hash-chained ledger). When a pirated copy surfaces — even a
subsample of it — the seller looks it up against the registry to identify
which buyer leaked it, and can prove ownership to the marketplace.

Run with:  python examples/marketplace_buyer_tracing.py
"""

from __future__ import annotations

from repro.attacks.sampling import rescale_suspect, subsample_histogram
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.datasets.clickstream import ClickstreamSpec, clickstream_tokens, generate_clickstream
from repro.dispute.registry import WatermarkRegistry

BUYERS = ("acme-analytics", "globex-insights", "initech-data")


def main() -> None:
    # The seller's original asset: a month of click-stream events.
    clickstream = generate_clickstream(
        ClickstreamSpec(n_urls=400, n_users=50, n_events=25_000, days=28), rng=11
    )
    tokens = clickstream_tokens(clickstream)
    original = TokenHistogram.from_tokens(tokens)
    print(f"seller's dataset: {original.total_count()} visits over "
          f"{len(original)} distinct URLs")

    # One watermark per buyer. The require_modification hardening makes every
    # embedded pair carry actual evidence, which keeps the per-buyer
    # fingerprints distinguishable from one another.
    config = GenerationConfig(
        budget_percent=2.0,
        modulus_cap=131,
        require_modification=True,
        max_candidates=300,
    )
    registry = WatermarkRegistry()
    buyer_copies = {}
    print("\n--- issuing buyer copies ---")
    for index, buyer in enumerate(BUYERS):
        generator = WatermarkGenerator(config, rng=1_000 + index)
        result = generator.generate(original)
        registry.register(buyer, result.secret, dataset="clickstream-2026-05")
        buyer_copies[buyer] = result
        print(f"  {buyer:<18} pairs={result.pair_count:<4} "
              f"similarity={result.similarity_percent:.4f}%")

    print(f"\nregistry entries: {len(registry)}, chain intact: {registry.verify_chain()}")

    # One buyer resells its copy wholesale on a rival marketplace.
    leaker = BUYERS[1]
    leaked = buyer_copies[leaker].watermarked_histogram
    print(f"\nleak detected in the wild: {leaked.total_count()} visits")

    # Buyer-level attribution needs a strict per-pair threshold: at t = 0
    # only the leaking buyer's pairs are exactly aligned, while the other
    # buyers' pairs still show the small misalignment their (never applied)
    # modifications would have fixed.
    matches = registry.attribute_leak(leaked, detection=DetectionConfig(pair_threshold=0))
    print("\n--- leak attribution (full copy, t = 0) ---")
    for buyer, fraction in matches:
        print(f"  {buyer:<18} verified pair fraction: {fraction:.2f}")
    if matches:
        print(f"\n=> the leaked copy traces back to: {matches[0][0]}")
        assert matches[0][0] == leaker

    # If only a subsample surfaces, the seller can still prove the data is
    # *theirs* (ownership) by rescaling it and detecting with a relaxed
    # threshold — even if pinning down the exact buyer needs more evidence.
    sampled = subsample_histogram(leaked, 0.3, rng=77)
    rescaled = rescale_suspect(sampled, original.total_count())
    ownership = registry.attribute_leak(rescaled, detection=DetectionConfig(pair_threshold=4))
    print(f"\n30% subsample: watermark evidence found for "
          f"{len(ownership)} of {len(BUYERS)} issued copies "
          f"(ownership established, buyer attribution needs the strict check above)")

    # The public ledger (fingerprints only) can be handed to the marketplace
    # as tamper-evident proof of when each watermark was issued.
    ledger = registry.export_public_ledger()
    print(f"\npublic ledger verifies: {WatermarkRegistry.verify_exported_ledger(ledger)}")
    print("first entry:", {k: ledger[0][k] for k in ('index', 'buyer_id', 'fingerprint')})


if __name__ == "__main__":
    main()
