#!/usr/bin/env python3
"""Provenance tracking across a data pipeline with multi-watermarks.

Section VI of the paper motivates watermarking a dataset several times,
for example to mark the completion of each stage of a distributed
processing pipeline. This example pushes a taxi-trip dataset through three
pipeline stages (ingest -> clean -> enrich), adds one watermark per stage,
and then shows how the provenance chain identifies how far along the
pipeline an arbitrary leaked version is — and that the cumulative
distortion after all stages stays negligible.

Run with:  python examples/provenance_pipeline.py
"""

from __future__ import annotations

from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.histogram import TokenHistogram
from repro.core.multiwatermark import MultiWatermarker, ProvenanceChain
from repro.datasets.taxi import TaxiSpec, generate_taxi_dataset, taxi_tokens

PIPELINE_STAGES = ("ingest", "clean", "enrich")


def main() -> None:
    trips = generate_taxi_dataset(TaxiSpec(n_taxis=500, n_trips=60_000), rng=21)
    tokens = taxi_tokens(trips)
    original = TokenHistogram.from_tokens(tokens)
    print(f"taxi dataset: {original.total_count()} trips by {len(original)} taxis")

    # One watermark per pipeline stage. Each stage protects the tokens used
    # by earlier stages and only embeds pairs that actually need a change,
    # so every stage's mark stays verifiable at the strict threshold t = 0.
    config = GenerationConfig(
        budget_percent=2.0,
        modulus_cap=131,
        require_modification=True,
        max_pairs=25,
        max_candidates=300,
    )
    watermarker = MultiWatermarker(config, protect_previous_rounds=True, rng=99)
    result = watermarker.watermark(original, rounds=len(PIPELINE_STAGES))

    print("\n--- pipeline stages ---")
    for stage_name, stage in zip(PIPELINE_STAGES, result.rounds):
        print(f"  {stage_name:<8} pairs={stage.result.pair_count:<3} "
              f"cumulative similarity={stage.cumulative_similarity_percent:.5f}%")
    print(f"final similarity to the raw ingest data: "
          f"{result.final_similarity_percent:.5f}%")

    # Build the provenance chain from the per-stage secrets (oldest first).
    chain = ProvenanceChain(secrets=result.secrets)
    strict = DetectionConfig(pair_threshold=0)

    print("\n--- identifying leaked versions ---")
    versions = {
        "raw ingest data": result.original_histogram,
        "after 'ingest'": result.rounds[0].result.watermarked_histogram,
        "after 'clean'": result.rounds[1].result.watermarked_histogram,
        "after 'enrich' (final)": result.final_histogram,
    }
    for label, version in versions.items():
        prefix = chain.detectable_prefix(version, config=strict)
        stage = PIPELINE_STAGES[prefix - 1] if prefix else "(none)"
        print(f"  {label:<24} detectable stages: {prefix}  "
              f"=> last completed stage: {stage}")

    # Full per-stage report for the final version.
    print("\n--- per-stage detection on the final version ---")
    for entry in chain.detection_report(result.final_histogram, config=strict):
        print(f"  stage {entry['round']}: accepted={entry['accepted']} "
              f"({entry['accepted_pairs']}/{entry['total_pairs']} pairs)")


if __name__ == "__main__":
    main()
