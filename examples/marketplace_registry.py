#!/usr/bin/env python3
"""Marketplace registry: 10k buyers, one leak, sublinear attribution.

The paper's marketplace scenario end to end, over the service wire
(``docs/registry.md`` walks through the same flow with ``freqywm
registry``):

1. **Register** — a data seller fingerprints every buyer's copy with its
   own watermark secret. Here 10 000 buyers are registered through
   pipelined ``register`` bursts against a spawned ``freqywm serve``
   instance; one of them ("buyer-04217") receives a genuinely embedded
   watermark, the rest carry synthetic decoy secrets.
2. **Leak** — buyer-04217's watermarked copy surfaces in the wild.
3. **Attribute** — one ``attribute`` request screens the whole vault
   through the candidate-pruning index (sublinear: only bucket-accepted
   candidates reach exact detection) and convicts the leaking buyer.
4. **Revoke** — the convicted buyer's watermark is revoked (append-only
   ledger entry); re-attribution no longer names them.

Run with:  python examples/marketplace_registry.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.generator import generate_watermark
from repro.core.secrets import WatermarkSecret
from repro.datasets.synthetic import generate_power_law_tokens
from repro.service import (
    AttributeRequest,
    RegisterRequest,
    RevokeRequest,
    ServiceClient,
)

#: Registered buyers (one real watermark + decoys).
BUYERS = 10_000
#: The buyer whose copy leaks.
LEAKER = "buyer-04217"
#: Pairs per decoy secret. At the default acceptance rule (half the
#: pairs must verify) 16 pairs keeps chance convictions rare — a decoy
#: needs 8 simultaneous modulus coincidences to be named.
DECOY_PAIRS = 16
#: Register requests pipelined per burst.
BURST = 512


def build_market():
    """The seller's asset, the leaking buyer's copy, and decoy secrets."""
    asset = generate_power_law_tokens(0.6, n_tokens=300, sample_size=150_000, rng=5)
    embedded = generate_watermark(asset, budget_percent=2.0, modulus_cap=131, rng=6)

    rng = np.random.default_rng(7)
    vocab = np.array(sorted(set(asset)))
    first = rng.integers(0, len(vocab), size=(BUYERS, DECOY_PAIRS))
    second = (first + rng.integers(1, len(vocab), size=first.shape)) % len(vocab)
    values = rng.integers(1, 2**63, size=BUYERS)

    secrets = {}
    for index in range(BUYERS):
        buyer = f"buyer-{index:05d}"
        if buyer == LEAKER:
            secrets[buyer] = embedded.secret
        else:
            secrets[buyer] = WatermarkSecret.build(
                list(zip(vocab[first[index]], vocab[second[index]])),
                int(values[index]),
                embedded.secret.modulus_cap,
            )
    return embedded.watermarked_histogram, secrets


def main() -> int:
    leaked, secrets = build_market()
    buyers = sorted(secrets)

    with ServiceClient.spawn() as client:
        # -- 1. register the whole marketplace, pipelined in bursts ----- #
        started = time.perf_counter()
        registered = 0
        for start in range(0, len(buyers), BURST):
            burst = [
                RegisterRequest(
                    request_id=f"reg-{buyer}",
                    buyer_id=buyer,
                    secret=secrets[buyer].to_dict(),
                    metadata={"tier": "standard"},
                )
                for buyer in buyers[start : start + BURST]
            ]
            for response in client.request(burst):
                assert response.ok, response.error
                registered = max(registered, response.vault_size)
        register_seconds = time.perf_counter() - started
        print(f"registered buyers   : {registered} in {register_seconds:.1f} s")

        # -- 2 + 3. the leak surfaces; one request attributes it -------- #
        started = time.perf_counter()
        (verdict,) = client.request(
            [AttributeRequest(request_id="leak-1", counts=leaked.as_dict())]
        )
        attribute_seconds = time.perf_counter() - started
        assert verdict.ok, verdict.error
        convicted = [buyer for buyer, _fraction in verdict.matches]
        print(
            f"attribution         : {attribute_seconds * 1000:.0f} ms, "
            f"mode={verdict.mode}, candidates {verdict.candidates}/"
            f"{verdict.active_secrets}"
        )
        for buyer, fraction in verdict.matches:
            marker = "  <-- the leaker" if buyer == LEAKER else ""
            print(f"  convicted         : {buyer} ({fraction:.0%} pairs){marker}")
        assert LEAKER in convicted, "the leaking buyer went unattributed"

        # -- 4. revoke the leaker; they stop matching ------------------- #
        (revoked,) = client.request(
            [
                RevokeRequest(
                    request_id="rev-1", buyer_id=LEAKER, metadata={"reason": "leak"}
                )
            ]
        )
        assert revoked.ok, revoked.error
        (after,) = client.request(
            [AttributeRequest(request_id="leak-2", counts=leaked.as_dict())]
        )
        assert after.ok and LEAKER not in [buyer for buyer, _ in after.matches]
        print(f"after revocation    : {len(after.matches)} match(es), leaker gone")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
