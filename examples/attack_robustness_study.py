#!/usr/bin/env python3
"""Robustness study: how well does a FreqyWM watermark survive attacks?

A data owner wants to pick detection thresholds (t, k) before publishing a
watermarked dataset. This example watermarks a synthetic power-law workload
(the paper's Section V setting) and then plays the adversary:

* sampling attack  — pirate only a fraction of the rows,
* destroy attacks  — perturb frequencies with and without re-ordering,
* re-watermarking  — embed a second watermark and dispute ownership,
* guess attack     — brute-force forged secrets.

For each attack it reports the verified-pair fraction so the owner can see
which (t, k) region keeps false negatives and false positives low.

Run with:  python examples/attack_robustness_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.attacks.evaluation import RobustnessEvaluator
from repro.attacks.guess import GuessAttack
from repro.core.config import DetectionConfig, GenerationConfig
from repro.datasets.synthetic import generate_power_law_histogram
from repro.experiments.report import render_evaluator_records


def main() -> None:
    histogram = generate_power_law_histogram(
        0.5, n_tokens=250, sample_size=250_000, mode="sampled", rng=5
    )
    config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
    evaluator = RobustnessEvaluator(config, rng=42)

    print("watermarking the reference dataset and running the attack suite...")
    report = evaluator.evaluate(
        histogram,
        sampling_fractions=(0.05, 0.2, 0.5),
        sampling_thresholds=(0, 2, 10),
        destroy_thresholds=(0, 2, 4, 10),
        reordering_percents=(10, 50, 90),
        repetitions=2,
    )
    watermark = report.watermark
    print(f"\nreference watermark: {watermark.pair_count} pairs, "
          f"similarity {watermark.similarity_percent:.4f}%")

    print("\n--- sampling attack (owner rescales the suspect before detection) ---")
    print(format_table([
        {
            "sample_fraction": point.fraction,
            "t": point.pair_threshold,
            "verified_pairs": f"{point.accepted_pairs}/{point.total_pairs}",
            "detected": point.detected,
        }
        for point in report.sampling
    ]))

    print("\n--- destroy attacks: verified pair fraction vs t ---")
    rows = []
    thresholds = [point.pair_threshold for point in report.destroy_threshold_sweeps["no-attack"]]
    for index, threshold in enumerate(thresholds):
        row = {"t": threshold}
        for label, points in report.destroy_threshold_sweeps.items():
            row[label] = points[index].accepted_fraction
        rows.append(row)
    print(format_table(rows))

    print("\n--- destroy attack with re-ordering (t = 4) ---")
    print(format_table([
        {"noise_percent": percent, "verified_pair_fraction": fraction}
        for percent, fraction in sorted(report.reordering_success.items())
    ]))

    if report.rewatermark is not None:
        outcome = report.rewatermark
        print("\n--- re-watermarking attack ---")
        print(f"  owner's pairs still verified on the pirate's version: "
              f"{outcome.owner_pair_survival:.0%}")
        print(f"  pirate's *modified* pairs verified on the owner's version: "
              f"{outcome.attacker_modified_pair_survival_on_owner:.0%}")

    print("\n--- evaluation profile (per-attack timing + detector cache) ---")
    print(render_evaluator_records(report.records()))
    if report.detector_cache is not None:
        print(f"  detector cache overall: {report.detector_cache.as_dict()}")

    print("\n--- guess attack (forged secrets) ---")
    guess = GuessAttack(guessed_pairs=20, modulus_cap=131, rng=9)
    guess_report = guess.run(
        watermark.watermarked_histogram,
        attempts=200,
        detection=DetectionConfig(pair_threshold=0),
    )
    print(f"  {guess_report.successes} successful forgeries in "
          f"{guess_report.attempts} attempts "
          f"(analytical probability per guess: "
          f"{guess_report.analytical_success_probability:.2e})")

    print("\nguidance: pick t where the attacked curves are still above your "
          "detection fraction k while the non-watermarked control stays below it "
          "(see Figure 5 of the paper and benchmarks/bench_fig5_destroy.py).")


if __name__ == "__main__":
    main()
