#!/usr/bin/env python3
"""Multi-dimensional watermarking of a census-style table (Section IV-C).

Tokens do not have to be single column values: this example watermarks a
census table twice — once on the ``age`` column alone and once on the
composite token ``[age, workclass]`` — and shows how added rows are
synthesised by copying the non-token attributes of existing rows. It also
demonstrates the bucketisation helper for continuous columns (Section VI's
"challenging datasets"): the ``hours_per_week`` column is bucketised first
and then watermarked at the bucket level.

Run with:  python examples/tabular_census_watermark.py
"""

from __future__ import annotations

from repro.core.bucketize import bucketize_values
from repro.core.config import GenerationConfig
from repro.core.detector import detect_watermark
from repro.core.generator import generate_watermark
from repro.core.histogram import TokenHistogram
from repro.core.multidimensional import TabularWatermarker
from repro.datasets.adult import AdultSpec, generate_adult_dataset


def watermark_on_columns(dataset, columns, label):
    """Watermark the table on the given (composite) token columns."""
    watermarker = TabularWatermarker(
        columns,
        GenerationConfig(budget_percent=2.0, modulus_cap=131),
        rng=13,
    )
    result = watermarker.watermark(dataset)
    tokens_after = watermarker.tokenize(result.watermarked_dataset)
    detection = detect_watermark(
        TokenHistogram.from_tokens(tokens_after), result.core.secret
    )
    print(f"\n--- token = {label} ---")
    print(f"  distinct tokens: {len(result.core.original_histogram)}")
    print(f"  eligible pairs:  {len(result.core.eligible_pairs)}")
    print(f"  chosen pairs:    {result.pair_count}")
    print(f"  similarity:      {result.similarity_percent:.4f}%")
    print(f"  rows before/after: {len(dataset)} -> {len(result.watermarked_dataset)}")
    print(f"  watermark detected on the edited table: {detection.accepted}")
    return result


def main() -> None:
    dataset = generate_adult_dataset(AdultSpec(n_rows=20_000), rng=3)
    print(f"census table: {len(dataset)} rows, columns: {list(dataset.columns)}")

    # Single-attribute token (the paper's Table II 'Age' row).
    watermark_on_columns(dataset, ["age"], "Age")

    # Composite token (the paper's Section IV-C experiment).
    composite = watermark_on_columns(dataset, ["age", "workclass"], "[Age, WorkClass]")

    # Show one synthesised row: it copies every non-token attribute from a
    # real row carrying the same token value, so the schema stays intact.
    added_row = composite.watermarked_dataset[0]
    print("\nexample row from the watermarked table (schema preserved):")
    print(" ", {key: added_row[key] for key in composite.watermarked_dataset.columns})

    # Continuous columns: bucketise first, then watermark the bucket tokens.
    hours = [int(row["hours_per_week"]) for row in dataset]
    bucket_tokens, bucketizer = bucketize_values(hours, 12, strategy="width")
    result = generate_watermark(bucket_tokens, budget_percent=2.0, modulus_cap=31, rng=5)
    print("\n--- continuous column via bucketisation (hours_per_week) ---")
    print(f"  buckets: {len(bucketizer.buckets)}")
    print(f"  chosen pairs: {result.pair_count}")
    print(f"  similarity:   {result.similarity_percent:.4f}%")
    detection = detect_watermark(result.watermarked_histogram, result.secret)
    print(f"  detected:     {detection.accepted}")


if __name__ == "__main__":
    main()
