#!/usr/bin/env python3
"""Streaming ingestion + sharded batch watermarking service.

A data provider operates a watermarking service at production scale:

1. **Streaming ingestion** — the asset (here: a synthetic click log
   written to disk in chunks, standing in for a file too large to load
   at once) is ingested chunk by chunk. Two
   :class:`~repro.core.streaming.StreamingHistogramBuilder` workers each
   count half of the stream and their partial histograms are merged
   map-reduce style; the result is bit-identical to a one-shot build.
2. **Streaming watermarking** — generation runs in histogram-only mode
   and the watermarked token file is written by a second streaming pass
   (:func:`~repro.core.transform.apply_deltas_streaming`), so the raw
   dataset is never resident in memory.
3. **Sharded screening** — 1 000 suspected datasets (leaked subsamples
   mixed with unrelated decoys) are screened in parallel with a
   :class:`~repro.core.sharding.ShardedDetectionPool`, and the verdicts
   are checked to be identical — and identically ordered — to the
   in-process ``detect_many`` path.

Run with:  python examples/streaming_service.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.attacks.sampling import rescale_suspect, subsample_histogram
from repro.core.batch import detect_many
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.core.sharding import ShardedDetectionPool, default_worker_count
from repro.exec.policy import ExecutionPolicy
from repro.core.streaming import StreamingHistogramBuilder
from repro.core.transform import apply_deltas_streaming, histogram_deltas
from repro.datasets.loaders import iter_token_chunks, iter_tokens, save_token_file
from repro.datasets.synthetic import generate_power_law_tokens
from repro.utils.rng import ensure_rng

#: Tokens written to (and streamed back from) the on-disk click log.
STREAM_SIZE = 400_000
#: Tokens per ingestion chunk — the memory bound of the streaming pass.
CHUNK_SIZE = 20_000
#: Suspected datasets screened by the sharded pool.
SUSPECTS = 1_000


def write_click_log(path: Path) -> None:
    """Simulate a log that arrives in chunks and never fits in memory."""
    tokens = generate_power_law_tokens(
        0.6, n_tokens=800, sample_size=STREAM_SIZE, rng=42
    )
    with path.open("w", encoding="utf-8") as handle:
        for start in range(0, len(tokens), CHUNK_SIZE):
            handle.write("\n".join(tokens[start : start + CHUNK_SIZE]) + "\n")


def ingest_map_reduce(path: Path) -> TokenHistogram:
    """Chunked two-worker ingestion with a map-reduce merge."""
    workers = [StreamingHistogramBuilder(), StreamingHistogramBuilder()]
    for index, chunk in enumerate(iter_token_chunks(path, chunk_size=CHUNK_SIZE)):
        workers[index % len(workers)].add_tokens(chunk)
    merged = StreamingHistogramBuilder.merge_all(workers)
    print(
        f"  ingested {merged.total_count} occurrences / "
        f"{merged.distinct_tokens} distinct tokens in "
        f"{merged.chunks_ingested} chunks across {len(workers)} builders"
    )
    return merged.build()


def build_suspects(watermarked: TokenHistogram, count: int) -> list:
    """Leaked subsamples (rescaled, per the paper's defence) mixed with decoys."""
    rng = ensure_rng(7)
    original_size = watermarked.total_count()
    suspects = []
    for index in range(count):
        if index % 4 == 3:  # every fourth suspect is an unrelated decoy
            decoys = generate_power_law_tokens(
                0.6,
                n_tokens=300,
                sample_size=20_000,
                rng=10_000 + index,
                token_prefix="decoy",
            )
            suspects.append(TokenHistogram.from_tokens(decoys))
        else:
            fraction = 0.5 + 0.4 * rng.random()
            sampled = subsample_histogram(watermarked, fraction, rng=rng)
            suspects.append(rescale_suspect(sampled, original_size))
    return suspects


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="freqywm-streaming-"))
    log_path = workdir / "clicklog.txt"
    watermarked_path = workdir / "clicklog.watermarked.txt"

    print("--- phase 1: streaming ingestion ---")
    write_click_log(log_path)
    start = time.perf_counter()
    histogram = ingest_map_reduce(log_path)
    print(f"  streaming build: {time.perf_counter() - start:.2f}s "
          f"(peak memory bounded by {CHUNK_SIZE}-token chunks)")

    print("\n--- phase 2: streaming watermark generation ---")
    generator = WatermarkGenerator(
        GenerationConfig(budget_percent=2.0, modulus_cap=61, max_candidates=400),
        rng=2_026,
    )
    result = generator.generate(histogram)  # histogram-only mode
    deltas = histogram_deltas(histogram, result.watermarked_histogram)
    save_token_file(
        apply_deltas_streaming(iter_tokens(log_path), deltas, histogram, rng=2_027),
        watermarked_path,
    )
    print(f"  embedded {result.pair_count} pairs, "
          f"similarity {result.similarity_percent:.4f}%, "
          f"{result.total_changes} token edits streamed to disk")

    print(f"\n--- phase 3: sharded screening of {SUSPECTS} suspects ---")
    suspects = build_suspects(result.watermarked_histogram, SUSPECTS)
    config = DetectionConfig(pair_threshold=2)

    start = time.perf_counter()
    baseline = detect_many(suspects, result.secret, config)
    in_process = time.perf_counter() - start
    print(f"  in-process detect_many : {in_process:.2f}s")

    workers = max(2, min(4, default_worker_count()))
    with ShardedDetectionPool(
        result.secret, config, policy=ExecutionPolicy(workers=workers)
    ) as pool:
        start = time.perf_counter()
        sharded = pool.detect_many(suspects)
        sharded_seconds = time.perf_counter() - start
    print(f"  sharded ({workers} workers) : {sharded_seconds:.2f}s "
          f"({default_worker_count()} cores visible; the sharded path wins "
          "once histogram building dominates on a multi-core box)")

    assert baseline.accepted_flags == sharded.accepted_flags, "verdict mismatch!"
    assert [r.accepted_pairs for r in baseline] == [
        r.accepted_pairs for r in sharded
    ], "evidence mismatch!"
    print(
        f"  verdict parity: OK — {sharded.accepted_count}/{len(sharded)} suspects "
        f"verified (expected ~{3 * SUSPECTS // 4} leaked copies)"
    )


if __name__ == "__main__":
    main()
