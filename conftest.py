"""Pytest bootstrap: make ``repro`` importable from the source tree.

Installing the package (``pip install -e .``) is the normal workflow, but
tests and benchmarks should also run straight from a source checkout in
fully offline environments, so the ``src/`` layout directory is appended
to ``sys.path`` when the package is not already installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401 - probe whether the package is installed
    except ImportError:
        sys.path.insert(0, str(_SRC))
