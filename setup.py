"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in fully
offline environments where the ``wheel`` package (needed for PEP 660
editable wheels) may not be available: pip falls back to the legacy
``setup.py develop`` code path in that case.
"""

from setuptools import setup

setup()
