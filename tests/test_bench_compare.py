"""Benchmark baseline comparison: the CI regression gate's logic."""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from compare_bench import compare, load_report, main  # noqa: E402


def _report(path: Path, timings: dict) -> Path:
    path.write_text(
        json.dumps(
            {
                "scale": "smoke",
                "results": [
                    {"benchmark": name, "passed": True, "seconds": seconds}
                    for name, seconds in timings.items()
                ],
            }
        ),
        encoding="utf-8",
    )
    return path


class TestCompare:
    def test_flags_only_regressions_beyond_ratio(self):
        baseline = {"a": 1.0, "b": 1.0, "c": 1.0}
        current = {"a": 1.5, "b": 2.5, "c": 0.9}
        messages = compare(baseline, current, max_ratio=2.0)
        assert len(messages) == 1 and messages[0].startswith("b:")

    def test_ignores_noise_floor_and_new_benchmarks(self):
        baseline = {"tiny": 0.01}
        current = {"tiny": 0.09, "brand_new": 50.0}  # 9x but sub-floor; new: no baseline
        assert compare(baseline, current, max_ratio=2.0, min_seconds=0.5) == []

    def test_small_baseline_grace_uses_absolute_floor(self):
        # 0.1s -> 0.4s is 4x but still under the absolute floor: tolerated.
        assert compare({"x": 0.1}, {"x": 0.4}, max_ratio=2.0, min_seconds=0.5) == []
        # 0.4s -> 30s blows both the ratio and the floor: flagged.
        assert compare({"x": 0.4}, {"x": 30.0}, max_ratio=2.0, min_seconds=0.5)


class TestCli:
    def test_missing_baseline_is_tolerated(self, tmp_path, capsys):
        current = _report(tmp_path / "current.json", {"a": 1.0})
        assert main([str(tmp_path / "absent.json"), str(current)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_corrupt_baseline_is_tolerated(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        current = _report(tmp_path / "current.json", {"a": 1.0})
        assert main([str(bad), str(current)]) == 0
        assert "unreadable baseline" in capsys.readouterr().out

    def test_regression_fails_with_message(self, tmp_path, capsys):
        baseline = _report(tmp_path / "base.json", {"a": 1.0, "b": 2.0})
        current = _report(tmp_path / "current.json", {"a": 1.1, "b": 9.0})
        assert main([str(baseline), str(current), "--max-ratio", "2.0"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION b:" in captured.err

    def test_clean_run_reports_count(self, tmp_path, capsys):
        baseline = _report(tmp_path / "base.json", {"a": 1.0})
        current = _report(tmp_path / "current.json", {"a": 1.2})
        assert main([str(baseline), str(current)]) == 0
        assert "no regressions across 1 benchmark(s)" in capsys.readouterr().out

    def test_load_report_rejects_non_reports(self, tmp_path):
        import pytest

        not_report = tmp_path / "x.json"
        not_report.write_text('{"foo": 1}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_report(not_report)
