"""Unit tests for multi-watermarking and provenance chains (Section VI)."""

from __future__ import annotations

import pytest

from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import WatermarkDetector
from repro.core.multiwatermark import MultiWatermarker, ProvenanceChain
from repro.core.similarity import ranking_preserved
from repro.exceptions import GenerationError


@pytest.fixture(scope="module")
def multi_result(skewed_histogram):
    # Provenance tracking needs every round's watermark to discriminate
    # between versions, so the owner enables the require_modification
    # hardening (pairs already aligned by chance carry no evidence) and
    # protects earlier rounds' tokens from later perturbation.
    config = GenerationConfig(
        budget_percent=2.0,
        modulus_cap=61,
        require_modification=True,
        max_pairs=8,
    )
    return MultiWatermarker(config, protect_previous_rounds=True, rng=99).watermark(
        skewed_histogram, rounds=4
    )


class TestMultiWatermarker:
    def test_round_count(self, multi_result):
        assert len(multi_result.rounds) == 4
        assert [round_.index for round_ in multi_result.rounds] == [0, 1, 2, 3]

    def test_each_round_has_its_own_secret(self, multi_result):
        secrets = {round_.result.secret.secret for round_ in multi_result.rounds}
        assert len(secrets) == 4

    def test_cumulative_distortion_stays_small(self, multi_result):
        # The paper: 10 successive b=2 watermarks cost only ~0.003% similarity.
        assert multi_result.final_similarity_percent > 99.0
        similarities = [r.cumulative_similarity_percent for r in multi_result.rounds]
        # Cumulative similarity is non-increasing (each round adds distortion).
        assert all(
            similarities[i] >= similarities[i + 1] - 1e-9
            for i in range(len(similarities) - 1)
        )

    def test_ranking_survives_every_round(self, multi_result):
        original = multi_result.original_histogram.as_dict()
        for round_ in multi_result.rounds:
            assert ranking_preserved(original, round_.result.watermarked_histogram.as_dict())

    def test_every_round_detectable_in_final_version(self, multi_result):
        final = multi_result.final_histogram
        for index in range(len(multi_result.rounds)):
            detection = multi_result.detect_round(
                index, final, config=DetectionConfig(pair_threshold=2)
            )
            assert detection.accepted

    def test_later_round_not_detectable_in_earlier_version(self, multi_result):
        first_version = multi_result.rounds[0].result.watermarked_histogram
        last_secret = multi_result.rounds[-1].result.secret
        detection = WatermarkDetector(last_secret, DetectionConfig(pair_threshold=0)).detect(
            first_version
        )
        assert detection.accepted_fraction < 1.0

    def test_zero_rounds_rejected(self, skewed_histogram):
        with pytest.raises(GenerationError):
            MultiWatermarker(rng=1).watermark(skewed_histogram, rounds=0)

    def test_round_metadata_records_index(self, multi_result):
        for index, round_ in enumerate(multi_result.rounds):
            assert round_.result.secret.metadata["round"] == index


class TestProvenanceChain:
    def test_detectable_prefix_orders_versions(self, multi_result):
        chain = ProvenanceChain(secrets=multi_result.secrets)
        strict = DetectionConfig(pair_threshold=0)
        # The final version carries every stage (later rounds never touched
        # earlier rounds' tokens thanks to protect_previous_rounds).
        assert chain.detectable_prefix(multi_result.final_histogram, config=strict) == len(chain)
        # The original carries none of them: every pair needed an actual
        # modification, so at t = 0 nothing verifies before round 0 ran.
        assert chain.detectable_prefix(multi_result.original_histogram, config=strict) == 0

    def test_intermediate_version_prefix(self, multi_result):
        version_1 = multi_result.rounds[1].result.watermarked_histogram
        chain = ProvenanceChain(secrets=multi_result.secrets)
        prefix = chain.detectable_prefix(version_1)
        assert 2 <= prefix <= len(chain)

    def test_detection_report_rows(self, multi_result):
        chain = ProvenanceChain(secrets=multi_result.secrets)
        report = chain.detection_report(multi_result.final_histogram)
        assert len(report) == len(chain)
        assert all(entry["accepted"] for entry in report)
        assert [entry["round"] for entry in report] == list(range(len(chain)))

    def test_append(self, multi_result):
        chain = ProvenanceChain()
        for secret in multi_result.secrets:
            chain.append(secret)
        assert len(chain) == len(multi_result.secrets)


class TestChainPickling:
    def test_provenance_chain_and_multi_result_pickle(self, multi_result):
        import copy
        import pickle

        from repro.core.multiwatermark import ProvenanceChain

        chain = ProvenanceChain(secrets=list(multi_result.secrets))
        # Warm the embedded detector cache: the resident detectors (and
        # the cache lock) must not block pickling or deepcopy.
        chain.detectable_prefix(multi_result.final_histogram)
        restored = pickle.loads(pickle.dumps(chain))
        assert restored.secrets == chain.secrets
        assert restored.detectable_prefix(
            multi_result.final_histogram
        ) == chain.detectable_prefix(multi_result.final_histogram)
        copied = copy.deepcopy(chain)
        assert copied.secrets == chain.secrets

        multi_result.detect_round(0, multi_result.final_histogram)
        restored_result = pickle.loads(pickle.dumps(multi_result))
        assert restored_result.secrets == multi_result.secrets
        assert restored_result.final_histogram == multi_result.final_histogram
