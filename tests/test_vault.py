"""Persistence edge cases of the on-disk :class:`SecretVault`.

The vault's crash contract (module docstring of
:mod:`repro.dispute.vault`): a registration writes the content-addressed
secret file *first* and appends the fsynced ledger line *second*, so a
crash between the two leaves an ignorable orphan — never a vault entry
or an index posting. A crash mid-append leaves a torn final ledger line,
which reload truncates; anything corrupt *before* the tail is tampering
and must fail loudly. These tests simulate each of those disk states
directly and pin down what a reopened vault recovers.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import DetectionConfig
from repro.core.secrets import WatermarkSecret
from repro.dispute import SecretVault
from repro.exceptions import DisputeError

DETECTION = DetectionConfig(pair_threshold=0, min_accepted_fraction=0.5)


def _decoy_secret(histogram, modulus_cap, *, seed):
    """One synthetic buyer secret over the histogram's vocabulary."""
    tokens = sorted(histogram.as_dict())
    pairs = [
        (tokens[(seed + offset) % len(tokens)], tokens[(seed + offset + 7) % len(tokens)])
        for offset in range(0, 24, 3)
    ]
    return WatermarkSecret.build(pairs, 10_000 + seed, modulus_cap)


@pytest.fixture()
def vault_bundle(tmp_path, watermarked_bundle):
    """A vault holding the real buyer plus two decoys."""
    result, _ = watermarked_bundle
    vault = SecretVault(tmp_path)
    vault.register("buyer-real", result.secret, tier="premium")
    for index in range(2):
        vault.register(
            f"decoy-{index}",
            _decoy_secret(result.watermarked_histogram, result.secret.modulus_cap, seed=index),
        )
    return vault, result


def test_reload_round_trip(tmp_path, vault_bundle):
    """A reopened vault replays to the identical ledger, buyers, verdicts."""
    vault, result = vault_bundle
    vault.revoke("decoy-1", reason="expired")
    before_matches = vault.attribute_leak(result.watermarked_histogram, detection=DETECTION)
    before_ledger = vault.export_public_ledger()

    reopened = SecretVault(tmp_path)
    assert reopened.export_public_ledger() == before_ledger
    assert reopened.active_buyers == vault.active_buyers
    assert len(reopened) == len(vault) == 4  # 3 registrations + 1 revocation
    assert reopened.verify_chain()
    assert reopened.secret_for("buyer-real").fingerprint() == result.secret.fingerprint()
    assert (
        reopened.attribute_leak(result.watermarked_histogram, detection=DETECTION)
        == before_matches
    )


def test_crash_mid_register_leaves_no_partial_entry(tmp_path, vault_bundle):
    """An orphan secret file (crash before the ledger append) is ignored.

    The atomic-write contract: the half-finished registration must
    contribute no vault entry, no active buyer, and no index posting.
    """
    vault, result = vault_bundle
    orphan = _decoy_secret(
        result.watermarked_histogram, result.secret.modulus_cap, seed=99
    )
    # Simulate the crash window: the secret file landed, the ledger
    # append never happened.
    (tmp_path / "secrets" / f"{orphan.fingerprint()}.json").write_text(
        orphan.to_json(), encoding="utf-8"
    )

    reopened = SecretVault(tmp_path)
    assert set(reopened.active_buyers) == set(vault.active_buyers)
    assert reopened.index_stats().active_secrets == 3
    assert reopened.index_stats().postings == vault.index_stats().postings
    assert reopened.verify_chain()


def test_torn_ledger_tail_is_truncated(tmp_path, vault_bundle):
    """A crash mid-append (torn final line) is repaired, not fatal."""
    vault, result = vault_bundle
    intact = (tmp_path / "ledger.jsonl").read_text(encoding="utf-8")
    (tmp_path / "ledger.jsonl").write_text(
        intact + '{"seq":3,"action":"regis', encoding="utf-8"
    )

    reopened = SecretVault(tmp_path)
    assert set(reopened.active_buyers) == set(vault.active_buyers)
    # The torn bytes are gone from disk, so the next append re-chains
    # cleanly onto the surviving records.
    assert (tmp_path / "ledger.jsonl").read_text(encoding="utf-8") == intact
    reopened.revoke("decoy-0")
    assert SecretVault(tmp_path).verify_chain()


def test_mid_file_garbage_is_tampering(tmp_path, vault_bundle):
    """Corruption anywhere before the tail must raise, never repair."""
    _vault, _result = vault_bundle
    lines = (tmp_path / "ledger.jsonl").read_text(encoding="utf-8").splitlines()
    lines[0] = '{"seq":0,"acti'
    (tmp_path / "ledger.jsonl").write_text("\n".join(lines) + "\n", encoding="utf-8")

    with pytest.raises(DisputeError, match="corrupt"):
        SecretVault(tmp_path)


def test_edited_record_breaks_the_chain(tmp_path, vault_bundle):
    """A syntactically valid but edited record fails hash verification."""
    _vault, _result = vault_bundle
    lines = (tmp_path / "ledger.jsonl").read_text(encoding="utf-8").splitlines()
    record = json.loads(lines[1])
    record["buyer_id"] = "mallory"
    lines[1] = json.dumps(record, separators=(",", ":"), sort_keys=True)
    (tmp_path / "ledger.jsonl").write_text("\n".join(lines) + "\n", encoding="utf-8")

    with pytest.raises(DisputeError, match="hash chain"):
        SecretVault(tmp_path)


def test_missing_secret_file_is_fatal(tmp_path, vault_bundle):
    """A ledger record whose secret file vanished must fail the reload."""
    vault, _result = vault_bundle
    fingerprint = vault.secret_for("decoy-0").fingerprint()
    (tmp_path / "secrets" / f"{fingerprint}.json").unlink()

    with pytest.raises(DisputeError, match="does not exist"):
        SecretVault(tmp_path)


def test_reserved_action_metadata_is_rejected(tmp_path, vault_bundle):
    """The ledger's ``action`` discriminator can never be spoofed."""
    vault, result = vault_bundle
    spare = _decoy_secret(
        result.watermarked_histogram, result.secret.modulus_cap, seed=42
    )
    with pytest.raises(DisputeError, match="reserved"):
        vault.register("buyer-new", spare, action="revoke")
    with pytest.raises(DisputeError, match="reserved"):
        vault.revoke("decoy-0", action="register")
    # Neither failed call may have appended anything.
    assert len(SecretVault(tmp_path)) == 3


def test_duplicate_registration_appends_nothing(tmp_path, vault_bundle):
    """A rejected duplicate leaves the ledger exactly as it was."""
    vault, result = vault_bundle
    before = (tmp_path / "ledger.jsonl").read_text(encoding="utf-8")
    with pytest.raises(DisputeError, match="already"):
        vault.register("buyer-real", result.secret)
    assert (tmp_path / "ledger.jsonl").read_text(encoding="utf-8") == before


def test_revoke_then_attribute_survives_reopen(tmp_path, vault_bundle):
    """Revocation is durable: a reopened vault never names the buyer."""
    vault, result = vault_bundle
    assert "buyer-real" in {
        buyer
        for buyer, _ in vault.attribute_leak(
            result.watermarked_histogram, detection=DETECTION
        )
    }
    vault.revoke("buyer-real", reason="leak")

    reopened = SecretVault(tmp_path)
    matches = reopened.attribute_leak(result.watermarked_histogram, detection=DETECTION)
    assert "buyer-real" not in {buyer for buyer, _ in matches}
    # The append-only history still shows the registration and revocation.
    actions = [entry.action for entry in reopened.entries]
    assert actions == ["register", "register", "register", "revoke"]

    reopened.register("buyer-real", result.secret, tier="reissued")
    again = reopened.attribute_leak(result.watermarked_histogram, detection=DETECTION)
    assert "buyer-real" in {buyer for buyer, _ in again}
