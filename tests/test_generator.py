"""Unit and invariant tests for watermark generation (Algorithm I)."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator, generate_watermark
from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.similarity import ranking_preserved, similarity_percent
from repro.datasets.synthetic import uniform_histogram
from repro.exceptions import GenerationError


class TestGenerationInvariants:
    def test_selected_pairs_are_aligned(self, watermarked_bundle):
        result, _original = watermarked_bundle
        watermarked = result.watermarked_histogram
        for pair in result.secret.pairs:
            modulus = pair_modulus(
                pair.first, pair.second, result.secret.secret, result.secret.modulus_cap
            )
            difference = watermarked.frequency(pair.first) - watermarked.frequency(pair.second)
            assert difference % modulus == 0

    def test_ranking_preserved(self, watermarked_bundle):
        result, original = watermarked_bundle
        assert ranking_preserved(original.as_dict(), result.watermarked_histogram.as_dict())

    def test_similarity_within_budget(self, watermarked_bundle):
        result, original = watermarked_bundle
        assert result.similarity_percent >= 100.0 - 2.0
        assert result.similarity_percent == pytest.approx(
            similarity_percent(original.as_dict(), result.watermarked_histogram.as_dict())
        )

    def test_secret_contains_selected_pairs(self, watermarked_bundle):
        result, _ = watermarked_bundle
        assert len(result.secret.pairs) == result.pair_count
        assert result.secret.modulus_cap == 131
        assert result.secret.metadata["strategy"] == "optimal"

    def test_no_token_in_two_pairs(self, watermarked_bundle):
        result, _ = watermarked_bundle
        seen = set()
        for pair in result.secret.pairs:
            assert pair.first not in seen and pair.second not in seen
            seen.update(pair.as_tuple())

    def test_total_count_change_matches_adjustments(self, watermarked_bundle):
        result, original = watermarked_bundle
        delta = result.watermarked_histogram.total_count() - original.total_count()
        planned = sum(a.delta_first + a.delta_second for a in result.adjustments)
        assert delta == planned

    def test_summary_fields(self, watermarked_bundle):
        result, _ = watermarked_bundle
        summary = result.summary()
        assert summary["selected_pairs"] == result.pair_count
        assert summary["eligible_pairs"] == len(result.eligible_pairs)
        assert summary["distortion_percent"] == pytest.approx(result.distortion_percent)
        assert summary["generation_seconds"] >= 0.0

    def test_timings_cover_pipeline_stages(self, watermarked_bundle):
        result, _ = watermarked_bundle
        for stage in ("histogram", "eligibility", "selection", "modification"):
            assert stage in result.timings


class TestRawTokenGeneration:
    def test_watermarked_tokens_match_histogram(self, skewed_tokens):
        result = generate_watermark(
            skewed_tokens, budget_percent=2.0, modulus_cap=31, rng=3
        )
        assert result.watermarked_tokens is not None
        rebuilt = TokenHistogram.from_tokens(result.watermarked_tokens)
        assert rebuilt.as_dict() == result.watermarked_histogram.as_dict()

    def test_histogram_only_mode_has_no_tokens(self, skewed_histogram):
        result = generate_watermark(skewed_histogram, rng=3)
        assert result.watermarked_tokens is None


class TestDeterminismAndConfig:
    def test_same_seed_same_watermark(self, skewed_histogram):
        first = generate_watermark(skewed_histogram, rng=42)
        second = generate_watermark(skewed_histogram, rng=42)
        assert first.secret.pairs == second.secret.pairs
        assert first.secret.secret == second.secret.secret
        assert first.watermarked_histogram.as_dict() == second.watermarked_histogram.as_dict()

    def test_different_seeds_differ(self, skewed_histogram):
        first = generate_watermark(skewed_histogram, rng=1)
        second = generate_watermark(skewed_histogram, rng=2)
        assert first.secret.secret != second.secret.secret

    def test_explicit_secret_value_is_used(self, skewed_histogram):
        result = generate_watermark(skewed_histogram, rng=1, secret_value=777)
        assert result.secret.secret == 777

    def test_excluded_tokens_untouched(self, skewed_histogram):
        top = skewed_histogram.tokens[0]
        result = generate_watermark(
            skewed_histogram, rng=5, excluded_tokens=[top]
        )
        assert result.watermarked_histogram.frequency(top) == skewed_histogram.frequency(top)
        assert all(not pair.contains(top) for pair in result.secret.pairs)

    def test_strategy_threaded_through(self, skewed_histogram):
        result = generate_watermark(skewed_histogram, strategy="greedy", rng=5)
        assert result.selection.strategy == "greedy"


class TestUnsupportedInputs:
    def test_uniform_data_selects_no_pairs(self):
        histogram = uniform_histogram(n_tokens=40, count_per_token=500)
        result = generate_watermark(histogram, rng=1)
        assert result.pair_count == 0
        assert result.watermarked_histogram.as_dict() == histogram.as_dict()

    def test_single_token_dataset_rejected(self):
        with pytest.raises(GenerationError):
            generate_watermark(["only-token"] * 10, rng=1)

    def test_generator_reusable_across_datasets(self, skewed_histogram, running_example_histogram):
        generator = WatermarkGenerator(GenerationConfig(modulus_cap=31), rng=9)
        first = generator.generate(running_example_histogram)
        second = generator.generate(skewed_histogram)
        assert first.pair_count >= 0 and second.pair_count > 0
