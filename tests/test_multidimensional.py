"""Unit tests for multi-dimensional (tabular) watermarking — Section IV-C."""

from __future__ import annotations

import pytest

from repro.core.multidimensional import (
    CopyRowSynthesizer,
    TabularWatermarker,
    watermark_table,
)
from repro.core.similarity import ranking_preserved
from repro.core.tokens import compose_token
from repro.datasets.adult import AdultSpec, generate_adult_dataset
from repro.datasets.tabular import TabularDataset
from repro.exceptions import GenerationError


@pytest.fixture(scope="module")
def adult_table() -> TabularDataset:
    return generate_adult_dataset(AdultSpec(n_rows=4000), rng=31)


class TestTokenisation:
    def test_single_column_tokens(self, adult_table):
        watermarker = TabularWatermarker(["age"])
        tokens = watermarker.tokenize(adult_table)
        assert len(tokens) == len(adult_table)
        assert all(token.isdigit() for token in tokens)

    def test_composite_tokens(self, adult_table):
        watermarker = TabularWatermarker(["age", "workclass"])
        tokens = watermarker.tokenize(adult_table)
        row = adult_table[0]
        assert tokens[0] == compose_token((str(row["age"]), str(row["workclass"])))

    def test_unknown_column_rejected(self, adult_table):
        with pytest.raises(GenerationError):
            TabularWatermarker(["not-a-column"]).tokenize(adult_table)

    def test_empty_token_columns_rejected(self):
        with pytest.raises(GenerationError):
            TabularWatermarker([])


class TestTableWatermarking:
    def test_single_dimension_watermark(self, adult_table):
        result = watermark_table(adult_table, ["age"], modulus_cap=31, rng=5)
        assert result.pair_count > 0
        # Row-level edits realise exactly the watermarked histogram.
        recounted = result.watermarked_dataset.value_counts("age")
        assert recounted == result.core.watermarked_histogram.as_dict()
        assert ranking_preserved(
            result.core.original_histogram.as_dict(),
            result.core.watermarked_histogram.as_dict(),
        )

    def test_composite_token_watermark(self, adult_table):
        result = watermark_table(adult_table, ["age", "workclass"], modulus_cap=31, rng=5)
        watermarker = TabularWatermarker(["age", "workclass"])
        tokens = watermarker.tokenize(result.watermarked_dataset)
        from repro.core.histogram import TokenHistogram

        recounted = TokenHistogram.from_tokens(tokens).as_dict()
        assert recounted == result.core.watermarked_histogram.as_dict()
        assert result.token_columns == ("age", "workclass")

    def test_synthesized_rows_keep_schema(self, adult_table):
        result = watermark_table(adult_table, ["age"], modulus_cap=31, rng=5)
        for row in result.watermarked_dataset:
            assert set(row) == set(adult_table.columns)

    def test_added_rows_copy_non_token_attributes_from_real_rows(self, adult_table, rng):
        synthesizer = CopyRowSynthesizer()
        row = synthesizer.synthesize(adult_table, ["age"], (str(adult_table[0]["age"]),), rng)
        assert str(row["age"]) == str(adult_table[0]["age"])
        assert row["workclass"] in {r["workclass"] for r in adult_table}

    def test_synthesizer_unknown_token_rejected(self, adult_table, rng):
        with pytest.raises(GenerationError):
            CopyRowSynthesizer().synthesize(adult_table, ["age"], ("999",), rng)

    def test_detection_on_watermarked_table(self, adult_table):
        from repro.core.detector import detect_watermark

        result = watermark_table(adult_table, ["age"], modulus_cap=31, rng=5)
        tokens = TabularWatermarker(["age"]).tokenize(result.watermarked_dataset)
        detection = detect_watermark(tokens, result.core.secret)
        assert detection.accepted
