"""Unit tests for the genetic optimiser used by the WM-OBT baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.genetic import GeneticConfig, GeneticOptimizer
from repro.exceptions import BaselineError


class TestConfiguration:
    def test_invalid_hyperparameters(self):
        with pytest.raises(BaselineError):
            GeneticConfig(population_size=1)
        with pytest.raises(BaselineError):
            GeneticConfig(generations=0)
        with pytest.raises(BaselineError):
            GeneticConfig(crossover_rate=1.5)
        with pytest.raises(BaselineError):
            GeneticConfig(mutation_rate=-0.1)
        with pytest.raises(BaselineError):
            GeneticConfig(elitism=40, population_size=40)

    def test_bounds_shape_mismatch(self):
        with pytest.raises(BaselineError):
            GeneticOptimizer([0.0, 0.0], [1.0])

    def test_inverted_bounds(self):
        with pytest.raises(BaselineError):
            GeneticOptimizer([1.0], [0.0])


class TestOptimisation:
    def test_maximises_concave_objective(self):
        # Maximum of -(x-3)^2 - (y+1)^2 inside the box is at (3, -1).
        optimizer = GeneticOptimizer(
            [-5.0, -5.0],
            [5.0, 5.0],
            GeneticConfig(population_size=60, generations=80),
            rng=7,
        )
        result = optimizer.maximize(lambda x: -((x[0] - 3.0) ** 2) - ((x[1] + 1.0) ** 2))
        assert result.best_solution[0] == pytest.approx(3.0, abs=0.5)
        assert result.best_solution[1] == pytest.approx(-1.0, abs=0.5)
        assert result.best_fitness == pytest.approx(0.0, abs=0.3)

    def test_minimise_wraps_maximise(self):
        optimizer = GeneticOptimizer([-4.0], [4.0], GeneticConfig(generations=40), rng=3)
        result = optimizer.minimize(lambda x: (x[0] - 1.0) ** 2)
        assert result.best_solution[0] == pytest.approx(1.0, abs=0.5)
        assert result.best_fitness >= 0.0

    def test_solutions_respect_bounds(self):
        optimizer = GeneticOptimizer([0.0] * 5, [1.0] * 5, GeneticConfig(generations=20), rng=5)
        result = optimizer.maximize(lambda x: float(np.sum(x)))
        assert np.all(result.best_solution >= 0.0)
        assert np.all(result.best_solution <= 1.0)
        # Maximising the sum drives every coordinate towards its upper bound.
        assert result.best_fitness > 4.0

    def test_deterministic_given_seed(self):
        def objective(x):
            return -float(np.sum(np.square(x)))

        first = GeneticOptimizer([-1.0] * 3, [1.0] * 3, rng=11).maximize(objective)
        second = GeneticOptimizer([-1.0] * 3, [1.0] * 3, rng=11).maximize(objective)
        assert np.allclose(first.best_solution, second.best_solution)
        assert first.best_fitness == second.best_fitness

    def test_history_is_monotone_non_decreasing(self):
        optimizer = GeneticOptimizer([-2.0], [2.0], GeneticConfig(generations=30, elitism=2), rng=9)
        result = optimizer.maximize(lambda x: -(x[0] ** 2))
        history = np.array(result.history)
        assert np.all(np.diff(history) >= -1e-12)
