"""Unit tests for bucketisation of wide-range values (Section VI)."""

from __future__ import annotations

import pytest

from repro.core.bucketize import Bucketizer, bucketize_values
from repro.core.histogram import TokenHistogram
from repro.exceptions import DatasetError


class TestFitting:
    def test_quantile_buckets_balance_counts(self, rng):
        values = rng.lognormal(3.0, 1.0, size=5000)
        labels, bucketizer = bucketize_values(values, 10, strategy="quantile")
        histogram = TokenHistogram.from_tokens(labels)
        counts = histogram.frequencies()
        # Quantile buckets hold roughly equal mass: max/min ratio bounded.
        assert max(counts) <= 3 * min(counts)
        assert len(bucketizer.buckets) <= 10

    def test_width_buckets_cover_range(self, rng):
        values = rng.uniform(0, 100, size=1000)
        bucketizer = Bucketizer(5, strategy="width").fit(values)
        buckets = bucketizer.buckets
        assert buckets[0].low == pytest.approx(values.min())
        assert buckets[-1].high >= values.max()
        assert len(buckets) == 5

    def test_invalid_strategy(self):
        with pytest.raises(DatasetError):
            Bucketizer(5, strategy="kmeans")

    def test_empty_values_rejected(self):
        with pytest.raises(DatasetError):
            Bucketizer(5).fit([])

    def test_non_finite_rejected(self):
        with pytest.raises(DatasetError):
            Bucketizer(5).fit([1.0, float("nan")])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(DatasetError):
            Bucketizer(5).transform([1.0])


class TestTransform:
    def test_every_value_maps_to_its_bucket(self, rng):
        values = rng.normal(50, 10, size=2000)
        labels, bucketizer = bucketize_values(values, 8)
        for value, label in zip(values[:100], labels[:100]):
            bucket = bucketizer.bucket_of(float(value))
            assert bucket.label == label

    def test_representative_is_inside_bucket(self, rng):
        values = rng.uniform(0, 10, size=500)
        _labels, bucketizer = bucketize_values(values, 4, strategy="width")
        for bucket in bucketizer.buckets:
            assert bucket.low <= bucket.midpoint <= bucket.high
            assert bucketizer.representative(bucket.label) == bucket.midpoint

    def test_unknown_label_rejected(self, rng):
        _labels, bucketizer = bucketize_values(rng.uniform(0, 1, 100), 3)
        with pytest.raises(DatasetError):
            bucketizer.representative("bucket[99](0,1)")

    def test_out_of_range_values_clamp(self, rng):
        values = rng.uniform(10, 20, size=200)
        bucketizer = Bucketizer(4, strategy="width").fit(values)
        labels = bucketizer.transform([0.0, 100.0])
        assert labels[0] == bucketizer.buckets[0].label
        assert labels[1] == bucketizer.buckets[-1].label


class TestWatermarkingBucketisedData:
    def test_bucketised_continuous_data_becomes_watermarkable(self, rng):
        # Raw continuous values almost never repeat -> flat histogram; the
        # bucketised view has repeating tokens and can carry a watermark.
        # Equal-width buckets over a skewed value distribution give the
        # uneven bucket counts the watermark needs (quantile buckets would
        # be deliberately uniform and therefore unwatermarkable).
        from repro.core.generator import generate_watermark

        values = rng.lognormal(4.0, 0.8, size=20_000)
        labels, _bucketizer = bucketize_values(values, 40, strategy="width")
        result = generate_watermark(labels, modulus_cap=31, rng=5)
        assert result.pair_count > 0
