"""ExecutionPolicy: validation, merging, and deprecated-alias parity.

The policy is the single way callers configure parallelism; the old
``workers=`` / ``chunk_size=`` / ``start_method=`` keyword arguments on
:func:`repro.core.batch.detect_many`, :func:`~repro.core.batch.embed_many`,
the sharded pools and the experiment runner survive as deprecated
aliases. The parity tests here pin the contract the deprecation relies
on: alias and policy spellings produce identical results, the alias
emits :class:`DeprecationWarning`, and supplying both is an error rather
than a silent preference.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.batch import detect_many, embed_many
from repro.core.sharding import ShardedDetectionPool
from repro.exceptions import ConfigurationError
from repro.exec.policy import ExecutionPolicy, policy_from_kwargs


class TestValidation:
    def test_defaults_are_local_and_unbounded(self):
        policy = ExecutionPolicy()
        assert policy.scheduler == "local"
        assert policy.workers is None
        assert policy.addresses == ()

    @pytest.mark.parametrize("workers", [0, -1])
    def test_workers_must_be_positive(self, workers):
        with pytest.raises(ConfigurationError, match="workers"):
            ExecutionPolicy(workers=workers)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ExecutionPolicy(chunk_size=0)

    def test_scheduler_name_must_be_non_empty(self):
        with pytest.raises(ConfigurationError, match="scheduler"):
            ExecutionPolicy(scheduler="")

    def test_local_scheduler_rejects_addresses(self):
        with pytest.raises(ConfigurationError, match="no worker addresses"):
            ExecutionPolicy(addresses=("unix:/tmp/w.sock",))

    def test_remote_scheduler_requires_addresses(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ExecutionPolicy(scheduler="remote")

    def test_addresses_are_stored_as_a_tuple(self):
        policy = ExecutionPolicy(
            scheduler="remote", addresses=["unix:/a.sock", "host:9"]
        )
        assert policy.addresses == ("unix:/a.sock", "host:9")

    def test_merged_revalidates(self):
        policy = ExecutionPolicy(workers=2)
        assert policy.merged(workers=4).workers == 4
        with pytest.raises(ConfigurationError):
            policy.merged(workers=0)

    def test_parallel_property(self):
        assert ExecutionPolicy().parallel  # scheduler picks a count
        assert ExecutionPolicy(workers=2).parallel
        assert not ExecutionPolicy(workers=1).parallel
        assert ExecutionPolicy(
            scheduler="remote", addresses=("unix:/w.sock",)
        ).parallel


class TestPolicyFromKwargs:
    def test_no_legacy_kwargs_passes_the_policy_through(self):
        policy = ExecutionPolicy(workers=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert policy_from_kwargs(policy) is policy

    def test_legacy_kwargs_warn_and_fold_into_a_policy(self):
        with pytest.warns(DeprecationWarning, match="detect_many: workers="):
            merged = policy_from_kwargs(None, workers=4, caller="detect_many")
        assert merged == ExecutionPolicy(workers=4)

    def test_legacy_kwargs_merge_into_an_explicit_policy(self):
        policy = ExecutionPolicy(workers=2)
        with pytest.warns(DeprecationWarning):
            merged = policy_from_kwargs(policy, chunk_size=5)
        assert merged == ExecutionPolicy(workers=2, chunk_size=5)

    def test_conflicting_policy_and_kwarg_is_an_error(self):
        policy = ExecutionPolicy(workers=2)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="workers"):
                policy_from_kwargs(policy, workers=3, caller="detect_many")

    def test_addresses_merge_without_deprecation(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merged = policy_from_kwargs(
                ExecutionPolicy(scheduler="remote", addresses=("unix:/a",)),
                addresses=("unix:/b",),
            )
        assert merged.addresses == ("unix:/b",)


class TestDeprecatedAliasParity:
    """Alias and policy spellings must agree bit-for-bit."""

    def test_detect_many_workers_alias(self, watermarked_bundle):
        result, _ = watermarked_bundle
        suspects = [result.watermarked_histogram] * 3
        baseline = detect_many(
            suspects,
            result.secret,
            policy=ExecutionPolicy(workers=2, chunk_size=2),
        )
        with pytest.warns(DeprecationWarning, match="detect_many"):
            aliased = detect_many(
                suspects, result.secret, workers=2, chunk_size=2
            )
        assert aliased.accepted_flags == baseline.accepted_flags
        assert [r.accepted_pairs for r in aliased.results] == [
            r.accepted_pairs for r in baseline.results
        ]

    def test_embed_many_workers_alias(self, skewed_histogram):
        datasets = [skewed_histogram] * 2
        baseline = embed_many(
            datasets, rng=7, policy=ExecutionPolicy(workers=2)
        )
        with pytest.warns(DeprecationWarning, match="embed_many"):
            aliased = embed_many(datasets, rng=7, workers=2)
        assert [r.secret.fingerprint() for r in aliased.results] == [
            r.secret.fingerprint() for r in baseline.results
        ]

    def test_pool_workers_alias(self, watermarked_bundle):
        result, _ = watermarked_bundle
        with pytest.warns(DeprecationWarning, match="ShardedDetectionPool"):
            aliased_pool = ShardedDetectionPool(result.secret, workers=1)
        with aliased_pool:
            aliased = aliased_pool.detect_many([result.watermarked_histogram])
        with ShardedDetectionPool(
            result.secret, policy=ExecutionPolicy(workers=1)
        ) as pool:
            baseline = pool.detect_many([result.watermarked_histogram])
        assert aliased.accepted_flags == baseline.accepted_flags

    def test_experiment_runner_alias_warns(self, tmp_path):
        from repro.experiments import load_spec
        from repro.experiments.executor import ExperimentRunner

        spec = load_spec("experiments/specs/smoke.json")
        with pytest.warns(DeprecationWarning, match="ExperimentRunner"):
            runner = ExperimentRunner(spec, tmp_path / "run", workers=1)
        assert runner.workers == 1
        runner.close()
