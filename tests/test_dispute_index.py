"""Candidate-index attribution: scale parity, revocation, forced index mode.

``test_dispute.py`` pins the registry's ledger semantics on vaults small
enough that the pooled group test screens them. These tests exercise the
*index*-mode screening path the marketplace workflow depends on
(``docs/registry.md``): verdict parity with the full linear
:func:`~repro.core.batch.detect_many_secrets` scan over a
multi-thousand-buyer vault, real candidate pruning, revocation
semantics, and the empty / single-secret edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import detect_many_secrets
from repro.core.config import DetectionConfig
from repro.core.secrets import WatermarkSecret
from repro.dispute import WatermarkRegistry
from repro.exceptions import DisputeError

#: Exact-alignment acceptance, half the pairs required — the marketplace
#: attribution rule the benchmarks use.
DETECTION = DetectionConfig(pair_threshold=0, min_accepted_fraction=0.5)


def _decoy_secrets(vocabulary, count, modulus_cap, *, pairs=8, seed=7):
    """``count`` synthetic buyer secrets with random pair lists.

    Pairs are drawn over the leaked copy's own vocabulary so every
    bucket is a live modulus test (the screen cannot shortcut on
    missing tokens), mirroring ``benchmarks/bench_registry.py``.
    """
    rng = np.random.default_rng(seed)
    tokens = np.array(sorted(vocabulary))
    first = rng.integers(0, len(tokens), size=(count, pairs))
    # A nonzero offset keeps first != second without a rejection loop.
    second = (first + rng.integers(1, len(tokens), size=first.shape)) % len(tokens)
    values = rng.integers(1, 2**63, size=count)
    return [
        WatermarkSecret.build(
            list(zip(tokens[first[index]], tokens[second[index]])),
            int(values[index]),
            modulus_cap,
        )
        for index in range(count)
    ]


def _populated_registry(result, *, decoys, **registry_kwargs):
    """A registry holding the real watermark plus ``decoys`` synthetic buyers."""
    registry = WatermarkRegistry(**registry_kwargs)
    registry.register("buyer-real", result.secret)
    secrets = _decoy_secrets(
        result.watermarked_histogram.as_dict(), decoys, result.secret.modulus_cap
    )
    for index, secret in enumerate(secrets):
        registry.register(f"decoy-{index:04d}", secret)
    return registry


def test_index_parity_with_linear_scan(watermarked_bundle):
    """Index-mode verdicts are identical to screening the whole vault."""
    result, _ = watermarked_bundle
    registry = _populated_registry(result, decoys=1999)

    matches = registry.attribute_leak(result.watermarked_histogram, detection=DETECTION)

    buyers = registry.active_buyers
    linear_results = detect_many_secrets(
        result.watermarked_histogram,
        [registry.secret_for(buyer) for buyer in buyers],
        DETECTION,
    )
    linear_accepted = {
        buyer for buyer, verdict in zip(buyers, linear_results) if verdict.accepted
    }

    assert {buyer for buyer, _ in matches} == linear_accepted
    assert "buyer-real" in linear_accepted
    fractions = [fraction for _, fraction in matches]
    assert fractions == sorted(fractions, reverse=True)

    stats = registry.last_attribution
    assert stats is not None
    assert stats.mode == "index"
    assert stats.active_secrets == 2000
    assert 0 < stats.candidates < stats.active_secrets
    assert stats.matches == len(matches)


def test_empty_vault_attribution(skewed_histogram):
    """An empty vault attributes nothing and reports the empty screen."""
    registry = WatermarkRegistry()
    assert registry.attribute_leak(skewed_histogram, detection=DETECTION) == []
    stats = registry.last_attribution
    assert stats is not None
    assert stats.mode == "empty"
    assert stats.candidates == 0
    assert stats.active_secrets == 0
    assert stats.matches == 0


def test_single_secret_attribution(watermarked_bundle):
    """A one-buyer vault convicts that buyer via the group-test screen."""
    result, _ = watermarked_bundle
    registry = WatermarkRegistry()
    registry.register("only-buyer", result.secret)

    matches = registry.attribute_leak(result.watermarked_histogram, detection=DETECTION)

    assert [buyer for buyer, _ in matches] == ["only-buyer"]
    stats = registry.last_attribution
    assert stats is not None
    assert stats.mode == "group-test"
    assert stats.active_secrets == 1


def test_revoke_then_attribute_never_returns_revoked(watermarked_bundle):
    """A revoked buyer can never be named again — until re-registered."""
    result, _ = watermarked_bundle
    registry = _populated_registry(result, decoys=10)

    before = registry.attribute_leak(result.watermarked_histogram, detection=DETECTION)
    assert "buyer-real" in {buyer for buyer, _ in before}

    registry.revoke("buyer-real", reason="leak")
    after = registry.attribute_leak(result.watermarked_histogram, detection=DETECTION)
    assert "buyer-real" not in {buyer for buyer, _ in after}

    with pytest.raises(DisputeError):
        registry.revoke("buyer-real")
    with pytest.raises(DisputeError):
        registry.secret_for("buyer-real")

    # Re-registration is allowed and restores attribution.
    registry.register("buyer-real", result.secret)
    again = registry.attribute_leak(result.watermarked_histogram, detection=DETECTION)
    assert "buyer-real" in {buyer for buyer, _ in again}
    assert registry.verify_chain()


def test_group_test_threshold_zero_forces_index_mode(watermarked_bundle):
    """``group_test_threshold=0`` screens even tiny vaults per-secret.

    Verdicts must match the default (group-test) registry exactly — the
    two screen modes are different speed/shape trade-offs over one
    acceptance rule, never different semantics.
    """
    result, _ = watermarked_bundle
    forced = _populated_registry(result, decoys=3, group_test_threshold=0)
    default = _populated_registry(result, decoys=3)

    forced_matches = forced.attribute_leak(
        result.watermarked_histogram, detection=DETECTION
    )
    default_matches = default.attribute_leak(
        result.watermarked_histogram, detection=DETECTION
    )

    assert forced.last_attribution is not None
    assert forced.last_attribution.mode == "index"
    assert default.last_attribution is not None
    assert default.last_attribution.mode == "group-test"
    assert forced_matches == default_matches


def test_index_stats_track_registrations_and_revocations(watermarked_bundle):
    """Structural counters follow register/revoke exactly."""
    result, _ = watermarked_bundle
    registry = WatermarkRegistry()
    registry.register("buyer-real", result.secret)
    baseline = registry.index_stats()
    assert baseline.active_secrets == 1

    decoys = _decoy_secrets(
        result.watermarked_histogram.as_dict(), 2, result.secret.modulus_cap
    )
    registry.register("decoy-0000", decoys[0])
    registry.register("decoy-0001", decoys[1])
    grown = registry.index_stats()
    assert grown.active_secrets == 3
    assert grown.postings == baseline.postings + 16
    assert grown.buckets <= grown.postings

    registry.revoke("decoy-0000")
    shrunk = registry.index_stats()
    assert shrunk.active_secrets == 2
    assert shrunk.postings == baseline.postings + 8
