"""Unit tests for experiment specs: parsing, validation, fingerprints."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.spec import (
    AttackSpec,
    DatasetSpec,
    ExperimentSpec,
    load_spec,
)

SPEC_DIR = Path(__file__).resolve().parent.parent / "experiments" / "specs"


def _minimal_payload(**overrides):
    payload = {
        "name": "unit",
        "seed": 3,
        "datasets": [
            {"name": "d0", "kind": "power-law", "alpha": 0.5, "tokens": 20, "samples": 2000}
        ],
        "generation": {"budget_percent": 2.0, "modulus_cap": 11},
    }
    payload.update(overrides)
    return payload


class TestLoading:
    def test_roundtrip_through_dict(self):
        spec = ExperimentSpec.from_dict(_minimal_payload())
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_bundled_specs_all_parse(self):
        names = set()
        for path in sorted(SPEC_DIR.glob("*.json")):
            spec = load_spec(path)
            assert spec.name
            names.add(spec.name)
        # The three paper-mapped specs plus the CI smoke spec.
        assert {
            "smoke",
            "robustness-sweep",
            "fpr-curve",
            "baseline-comparison",
        } <= names

    def test_toml_twin_matches_json_fingerprint(self):
        json_spec = load_spec(SPEC_DIR / "smoke.json")
        toml_spec = load_spec(SPEC_DIR / "smoke.toml")
        assert toml_spec == json_spec
        assert toml_spec.fingerprint() == json_spec.fingerprint()

    def test_save_then_load(self, tmp_path):
        spec = ExperimentSpec.from_dict(_minimal_payload())
        path = tmp_path / "spec.json"
        spec.save(path)
        assert load_spec(path) == spec

    def test_fingerprint_is_key_order_independent(self):
        payload = _minimal_payload()
        reversed_payload = dict(reversed(list(payload.items())))
        assert (
            ExperimentSpec.from_dict(payload).fingerprint()
            == ExperimentSpec.from_dict(reversed_payload).fingerprint()
        )

    def test_fingerprint_changes_with_seed(self):
        base = ExperimentSpec.from_dict(_minimal_payload())
        other = ExperimentSpec.from_dict(_minimal_payload(seed=4))
        assert base.fingerprint() != other.fingerprint()


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            _minimal_payload(name="Not A Slug"),
            _minimal_payload(unknown_field=1),
            _minimal_payload(datasets=[]),
            _minimal_payload(
                datasets=[
                    {"name": "d0", "tokens": 20, "samples": 2000},
                    {"name": "d0", "tokens": 20, "samples": 2000},
                ]
            ),
            _minimal_payload(
                datasets=[{"name": "d0", "kind": "zipf", "tokens": 20, "samples": 2000}]
            ),
            _minimal_payload(attacks=[{"kind": "quantum"}]),
            _minimal_payload(attacks=[{"kind": "sampling", "strengths": [1.5]}]),
            _minimal_payload(attacks=[{"kind": "sampling", "repetitions": 0}]),
            _minimal_payload(thresholds=[-1]),
            _minimal_payload(thresholds=[0, 0]),
            _minimal_payload(thresholds=[]),
            _minimal_payload(thresholds=[0, 1.5]),
            _minimal_payload(thresholds=[True]),
            _minimal_payload(thresholds=["2"]),
            _minimal_payload(min_accepted_fraction=1.5),
            _minimal_payload(analyses=["sorcery"]),
            _minimal_payload(analyses=[]),
            _minimal_payload(baselines=["wm-unknown"]),
            _minimal_payload(fpr_trials=0),
            _minimal_payload(secrets_per_dataset=0),
            _minimal_payload(generation={"budget_percent": 2.0, "bogus_knob": 1}),
            _minimal_payload(generation={"modulus_cap": 1}),
        ],
    )
    def test_rejected_payloads(self, payload):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(payload)

    def test_dataset_validation(self):
        with pytest.raises(ConfigurationError):
            DatasetSpec(name="d", tokens=1)
        with pytest.raises(ConfigurationError):
            DatasetSpec(name="d", tokens=10, samples=5)
        with pytest.raises(ConfigurationError):
            DatasetSpec(name="", tokens=10, samples=100)

    def test_attack_validation(self):
        with pytest.raises(ConfigurationError):
            AttackSpec(kind="sampling", strengths=())
        with pytest.raises(ConfigurationError):
            AttackSpec(kind="reordering", strengths=(-1.0,))

    def test_missing_required_fields_raise_configuration_errors(self):
        """A spec file omitting a required key fails with the promised
        ConfigurationError, never a bare KeyError."""
        with pytest.raises(ConfigurationError, match="missing required field 'name'"):
            ExperimentSpec.from_dict(
                _minimal_payload(datasets=[{"tokens": 20, "samples": 2000}])
            )
        with pytest.raises(ConfigurationError, match="missing required field 'kind'"):
            ExperimentSpec.from_dict(
                _minimal_payload(attacks=[{"strengths": [0.5]}])
            )

    def test_integral_float_thresholds_accepted(self):
        """JSON/TOML sometimes render integers as 2.0 — fine; 1.5 is not."""
        spec = ExperimentSpec.from_dict(_minimal_payload(thresholds=[0, 2.0]))
        assert spec.thresholds == (0, 2)

    def test_non_list_sections_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(_minimal_payload(datasets="d0"))
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict(_minimal_payload(attacks="sampling"))


class TestResolvedConfigs:
    def test_generation_config_resolution(self):
        spec = ExperimentSpec.from_dict(
            _minimal_payload(
                generation={
                    "budget_percent": 1.5,
                    "modulus_cap": 17,
                    "strategy": "greedy",
                    "max_pairs": 5,
                }
            )
        )
        config = spec.generation_config()
        assert config.budget_percent == 1.5
        assert config.modulus_cap == 17
        assert config.strategy == "greedy"
        assert config.max_pairs == 5

    def test_detection_config_resolution(self):
        spec = ExperimentSpec.from_dict(
            _minimal_payload(thresholds=[0, 3], min_accepted_fraction=0.25)
        )
        config = spec.detection_config(3)
        assert config.pair_threshold == 3
        assert config.min_accepted_fraction == 0.25

    def test_bundled_smoke_spec_is_canonical_json(self):
        """The committed smoke spec parses to exactly what it declares."""
        raw = json.loads((SPEC_DIR / "smoke.json").read_text(encoding="utf-8"))
        spec = ExperimentSpec.from_dict(raw)
        assert spec.name == "smoke"
        assert spec.secrets_per_dataset == 1
        assert [attack.kind for attack in spec.attacks] == ["sampling", "reordering"]
