"""Unit tests for the optimal / greedy / random pair-selection strategies."""

from __future__ import annotations

import pytest

from repro.core.eligibility import generate_eligible_pairs
from repro.core.graph import matching_is_valid
from repro.core.matching import (
    available_strategies,
    get_matcher,
    greedy_matching,
    optimal_matching,
    random_matching,
    select_pairs,
)
from repro.exceptions import MatchingError

SECRET = 5150
Z = 131
BUDGET = 2.0


@pytest.fixture(scope="module")
def eligible(skewed_histogram):
    return generate_eligible_pairs(skewed_histogram, SECRET, Z)


class TestStrategies:
    def test_registry(self):
        assert set(available_strategies()) == {"greedy", "optimal", "random"}
        assert get_matcher("OPTIMAL") is optimal_matching
        with pytest.raises(MatchingError):
            get_matcher("annealing")

    def test_all_strategies_produce_disjoint_pairs_within_budget(
        self, skewed_histogram, eligible
    ):
        for strategy in available_strategies():
            result = select_pairs(
                skewed_histogram, eligible, BUDGET, strategy=strategy, rng=5
            )
            assert matching_is_valid(result.selected)
            assert result.similarity_percent >= 100.0 - BUDGET - 1e-9
            assert result.eligible_count == len(eligible)
            assert len(result) == len(result.selected)

    def test_optimal_at_least_matches_heuristics(self, skewed_histogram, eligible):
        optimal = optimal_matching(skewed_histogram, eligible, BUDGET)
        greedy = greedy_matching(skewed_histogram, eligible, BUDGET)
        random = random_matching(skewed_histogram, eligible, BUDGET, rng=7)
        assert len(optimal.selected) >= len(greedy.selected)
        assert len(optimal.selected) >= len(random.selected)
        assert len(optimal.selected) > 0

    def test_greedy_visits_cheapest_first(self, skewed_histogram, eligible):
        result = greedy_matching(skewed_histogram, eligible, BUDGET)
        costs = [item.cost for item in result.selected]
        assert costs == sorted(costs)

    def test_random_is_seed_deterministic(self, skewed_histogram, eligible):
        first = random_matching(skewed_histogram, eligible, BUDGET, rng=99)
        second = random_matching(skewed_histogram, eligible, BUDGET, rng=99)
        assert [item.pair for item in first.selected] == [item.pair for item in second.selected]

    def test_random_varies_with_seed(self, skewed_histogram, eligible):
        first = random_matching(skewed_histogram, eligible, BUDGET, rng=1)
        second = random_matching(skewed_histogram, eligible, BUDGET, rng=2)
        # Selections may coincide in size but the visiting order should
        # almost surely differ for 100+ eligible pairs.
        assert [item.pair for item in first.selected] != [item.pair for item in second.selected]

    def test_empty_eligible_list(self, skewed_histogram):
        for strategy in available_strategies():
            result = select_pairs(skewed_histogram, [], BUDGET, strategy=strategy)
            assert result.selected == ()
            assert result.similarity_percent == 100.0

    def test_max_pairs_caps_every_strategy(self, skewed_histogram, eligible):
        for strategy in available_strategies():
            result = select_pairs(
                skewed_histogram, eligible, BUDGET, strategy=strategy, rng=5, max_pairs=3
            )
            assert len(result.selected) <= 3

    def test_strategy_label_recorded(self, skewed_histogram, eligible):
        assert optimal_matching(skewed_histogram, eligible, BUDGET).strategy == "optimal"
        assert greedy_matching(skewed_histogram, eligible, BUDGET).strategy == "greedy"
        assert random_matching(skewed_histogram, eligible, BUDGET).strategy == "random"
