"""Boundary behaviour of the shared chunk-size heuristic.

One helper (:func:`repro.exec.chunking.derive_chunk_size`) now backs
every sharded dispatch layer — detection's many-small-chunks setting,
embedding's one-chunk-per-worker setting, and the batch helpers. The
cases here pin the boundaries that used to live (twice) inside the
pools: fewer items than workers, ``chunk_size=1``, and the cap
interacting with tiny batches.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulerError
from repro.exec.chunking import (
    DETECTION_CHUNKS_PER_WORKER,
    DETECTION_MAX_CHUNK,
    chunk_spans,
    derive_chunk_size,
    split_chunks,
)


class TestDeriveChunkSize:
    def test_explicit_chunk_size_is_returned_verbatim(self):
        assert derive_chunk_size(1000, 4, chunk_size=7) == 7

    def test_explicit_chunk_size_ignores_the_cap(self):
        assert derive_chunk_size(1000, 2, chunk_size=500, max_chunk=64) == 500

    def test_chunk_size_one_is_valid(self):
        assert derive_chunk_size(10, 4, chunk_size=1) == 1
        assert [len(c) for c in split_chunks(range(3), 1)] == [1, 1, 1]

    def test_explicit_chunk_size_must_be_positive(self):
        with pytest.raises(SchedulerError, match="chunk_size"):
            derive_chunk_size(10, 4, chunk_size=0)

    def test_one_chunk_per_worker_default(self):
        # Embedding's setting: ceil(n / workers).
        assert derive_chunk_size(100, 4) == 25
        assert derive_chunk_size(101, 4) == 26

    def test_fewer_items_than_workers(self):
        # Every worker gets at most one item; size never drops below 1.
        assert derive_chunk_size(3, 8) == 1
        assert derive_chunk_size(1, 8) == 1

    def test_zero_items(self):
        assert derive_chunk_size(0, 4) == 1

    def test_chunks_per_worker_spreads_the_batch(self):
        # Detection's setting: ceil(n / (workers * chunks_per_worker)).
        assert (
            derive_chunk_size(
                640, 4, chunks_per_worker=DETECTION_CHUNKS_PER_WORKER
            )
            == 40
        )

    def test_max_chunk_caps_the_derived_size(self):
        size = derive_chunk_size(
            100_000,
            2,
            chunks_per_worker=DETECTION_CHUNKS_PER_WORKER,
            max_chunk=DETECTION_MAX_CHUNK,
        )
        assert size == DETECTION_MAX_CHUNK

    def test_cap_does_not_lift_small_batches(self):
        assert derive_chunk_size(5, 4, max_chunk=DETECTION_MAX_CHUNK) == 2

    def test_invalid_workers_and_chunks_per_worker(self):
        with pytest.raises(SchedulerError, match="workers"):
            derive_chunk_size(10, 0)
        with pytest.raises(SchedulerError, match="chunks_per_worker"):
            derive_chunk_size(10, 2, chunks_per_worker=0)


class TestSpans:
    def test_spans_are_contiguous_and_ordered(self):
        assert list(chunk_spans(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_spans_of_empty_input(self):
        assert list(chunk_spans(0, 4)) == []

    def test_split_chunks_round_trip(self):
        items = list(range(11))
        chunks = list(split_chunks(items, 3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 2]
        assert [item for chunk in chunks for item in chunk] == items

    def test_bad_span_size_rejected(self):
        with pytest.raises(SchedulerError, match="chunk size"):
            list(chunk_spans(10, 0))
