"""Multi-secret batched detection: parity with per-secret detectors."""

from __future__ import annotations

import pytest

from repro.core.batch import detect_many_secrets
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import WatermarkDetector
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.datasets.synthetic import generate_power_law_tokens
from repro.exceptions import DetectionError


@pytest.fixture(scope="module")
def histogram() -> TokenHistogram:
    return TokenHistogram.from_tokens(
        generate_power_law_tokens(0.6, n_tokens=50, sample_size=12_000, rng=21)
    )


@pytest.fixture(scope="module")
def secrets(histogram):
    """A mix of genuine (verifying) and unrelated (failing) secrets."""
    generator = WatermarkGenerator(GenerationConfig(), rng=5)
    genuine = [
        generator.generate(histogram, secret_value=1000 + index).secret
        for index in range(3)
    ]
    forged = [
        WatermarkSecret.build(
            [("tok-x", "tok-y"), ("tok-z", "tok-w")], 999_000 + index, 131
        )
        for index in range(2)
    ]
    return genuine + forged


class TestDetectManySecrets:
    @pytest.mark.parametrize(
        "config",
        [
            None,
            DetectionConfig(pair_threshold=0),
            DetectionConfig(pair_threshold=2, min_accepted_fraction=0.7),
            DetectionConfig(pair_threshold_fraction=0.05),
            DetectionConfig(pair_threshold=1, symmetric_tolerance=True),
        ],
    )
    def test_matches_per_secret_detectors(self, histogram, secrets, config):
        batched = detect_many_secrets(histogram, secrets, config)
        for secret, result in zip(secrets, batched):
            direct = WatermarkDetector(secret, config).detect(
                histogram, collect_evidence=False
            )
            assert result == direct

    def test_evidence_matches_per_secret_detectors(self, histogram, secrets):
        config = DetectionConfig(pair_threshold=1)
        batched = detect_many_secrets(
            histogram, secrets, config, collect_evidence=True
        )
        for secret, result in zip(secrets, batched):
            direct = WatermarkDetector(secret, config).detect(histogram)
            assert result.evidence == direct.evidence

    def test_watermarked_histograms_verify(self, histogram, secrets):
        genuine = secrets[:3]
        # The genuine secrets were generated on `histogram` itself but the
        # watermark lives in the *modified* histograms; verify each there.
        generator = WatermarkGenerator(GenerationConfig(), rng=5)
        for index, secret in enumerate(genuine):
            result = generator.generate(histogram, secret_value=1000 + index)
            (verdict,) = detect_many_secrets(
                result.watermarked_histogram, [secret], DetectionConfig()
            )
            assert verdict.accepted

    def test_raw_token_input(self, secrets):
        tokens = generate_power_law_tokens(0.6, n_tokens=50, sample_size=6_000, rng=8)
        batched = detect_many_secrets(tokens, secrets[:2])
        direct = [WatermarkDetector(secret).detect(tokens) for secret in secrets[:2]]
        for left, right in zip(batched, direct):
            assert left.accepted == right.accepted
            assert left.accepted_pairs == right.accepted_pairs

    def test_empty_secret_list(self, histogram):
        assert detect_many_secrets(histogram, []) == []

    def test_pairless_secret_rejected(self, histogram):
        empty = WatermarkSecret(pairs=(), secret=1, modulus_cap=131)
        with pytest.raises(DetectionError):
            detect_many_secrets(histogram, [empty])
        with pytest.raises(DetectionError):
            detect_many_secrets(histogram, [empty], detector_cache=DetectorCache())


class TestDetectManySecretsCached:
    """The cached-detector path: identical verdicts, zero re-derivation."""

    @pytest.mark.parametrize(
        "config",
        [
            None,
            DetectionConfig(pair_threshold=0),
            DetectionConfig(pair_threshold=2, min_accepted_fraction=0.7),
            DetectionConfig(pair_threshold_fraction=0.05),
            DetectionConfig(pair_threshold=1, symmetric_tolerance=True),
        ],
    )
    def test_cached_path_matches_uncached(self, histogram, secrets, config):
        import backend_harness

        # Harness: cached AND uncached stacked passes against the
        # per-secret reference loop, on every available backend.
        backend_harness.assert_many_secrets_parity(histogram, secrets, config)

    def test_cached_evidence_matches_uncached(self, histogram, secrets):
        cache = DetectorCache(capacity=None)
        config = DetectionConfig(pair_threshold=1)
        uncached = detect_many_secrets(
            histogram, secrets, config, collect_evidence=True
        )
        cached = detect_many_secrets(
            histogram, secrets, config, collect_evidence=True, detector_cache=cache
        )
        for left, right in zip(cached, uncached):
            assert left.evidence == right.evidence

    def test_repeat_calls_construct_nothing(self, histogram, secrets):
        cache = DetectorCache(capacity=None)
        config = DetectionConfig(pair_threshold=1)
        detect_many_secrets(histogram, secrets, config, detector_cache=cache)
        stats = cache.stats()
        assert stats.misses == len(secrets)
        assert stats.hits == 0
        detect_many_secrets(histogram, secrets, config, detector_cache=cache)
        stats = cache.stats()
        assert stats.misses == len(secrets)  # unchanged: pure cache hits
        assert stats.hits == len(secrets)
