"""Unit tests for the synthetic power-law dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    PAPER_ALPHA_SWEEP,
    PowerLawSpec,
    generate_power_law_histogram,
    generate_power_law_tokens,
    power_law_probabilities,
    sampled_counts,
    token_names,
    uniform_histogram,
)
from repro.exceptions import DatasetError


class TestProbabilities:
    def test_normalised(self):
        probabilities = power_law_probabilities(0.7, 500)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities > 0)

    def test_alpha_zero_is_uniform(self):
        probabilities = power_law_probabilities(0.0, 100)
        assert np.allclose(probabilities, 1.0 / 100)

    def test_higher_alpha_is_more_skewed(self):
        flat = power_law_probabilities(0.2, 100)
        steep = power_law_probabilities(1.0, 100)
        assert steep[0] > flat[0]
        assert steep[-1] < flat[-1]

    def test_monotone_decreasing(self):
        probabilities = power_law_probabilities(0.9, 50)
        assert np.all(np.diff(probabilities) <= 0)


class TestHistogramGeneration:
    def test_expected_mode_is_deterministic(self):
        first = generate_power_law_histogram(0.5, n_tokens=100, sample_size=10_000)
        second = generate_power_law_histogram(0.5, n_tokens=100, sample_size=10_000)
        assert first.as_dict() == second.as_dict()

    def test_expected_mode_keeps_all_tokens(self):
        histogram = generate_power_law_histogram(1.0, n_tokens=200, sample_size=5_000)
        assert len(histogram) == 200
        assert min(histogram.frequencies()) >= 1

    def test_sampled_mode_total_matches_sample_size(self):
        histogram = generate_power_law_histogram(
            0.5, n_tokens=50, sample_size=20_000, mode="sampled", rng=3
        )
        assert histogram.total_count() == 20_000

    def test_sampled_mode_reproducible(self):
        a = sampled_counts(PowerLawSpec(0.5, 50, 10_000), rng=8)
        b = sampled_counts(PowerLawSpec(0.5, 50, 10_000), rng=8)
        assert a == b

    def test_invalid_mode_rejected(self):
        with pytest.raises(DatasetError):
            generate_power_law_histogram(0.5, n_tokens=10, sample_size=100, mode="bogus")

    def test_token_prefix_respected(self):
        histogram = generate_power_law_histogram(
            0.5, n_tokens=10, sample_size=100, token_prefix="url"
        )
        assert all(token.startswith("url-") for token in histogram.tokens)

    def test_spec_validation(self):
        with pytest.raises(Exception):
            PowerLawSpec(alpha=-1.0)
        with pytest.raises(Exception):
            PowerLawSpec(alpha=0.5, n_tokens=0)


class TestTokenSequences:
    def test_sequence_length_and_support(self):
        tokens = generate_power_law_tokens(0.7, n_tokens=30, sample_size=5_000, rng=2)
        assert len(tokens) == 5_000
        assert set(tokens) <= set(token_names(30))

    def test_reproducible_with_seed(self):
        first = generate_power_law_tokens(0.7, n_tokens=20, sample_size=1_000, rng=5)
        second = generate_power_law_tokens(0.7, n_tokens=20, sample_size=1_000, rng=5)
        assert first == second


class TestUniform:
    def test_uniform_histogram_has_equal_counts(self):
        histogram = uniform_histogram(n_tokens=20, count_per_token=7)
        assert set(histogram.frequencies()) == {7}

    def test_paper_sweep_constant(self):
        assert PAPER_ALPHA_SWEEP == (0.05, 0.2, 0.5, 0.7, 0.9, 1.0)


class TestNames:
    def test_token_names_are_unique_and_padded(self):
        names = token_names(1000)
        assert len(set(names)) == 1000
        assert names[0] == "tok-0000"
