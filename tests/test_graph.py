"""Unit tests for the eligible-pair graph and maximum weight matching."""

from __future__ import annotations

import pytest

from repro.core.eligibility import EligiblePair, generate_eligible_pairs
from repro.core.graph import (
    build_pair_graph,
    choose_weight_offset,
    matching_is_valid,
    maximum_weight_matching,
    pairs_by_token,
)
from repro.core.tokens import TokenPair
from repro.exceptions import MatchingError

SECRET = 424242
Z = 131


def _pair(first: str, second: str, modulus: int, remainder: int, difference: int) -> EligiblePair:
    return EligiblePair(
        pair=TokenPair(first, second),
        modulus=modulus,
        remainder=remainder,
        frequency_difference=difference,
    )


class TestGraphConstruction:
    def test_weight_offset_exceeds_costs(self):
        pairs = [_pair("a", "b", 100, 40, 140), _pair("c", "d", 50, 10, 60)]
        offset = choose_weight_offset(pairs)
        assert all(offset > item.cost for item in pairs)

    def test_empty_offset(self):
        assert choose_weight_offset([]) == 1

    def test_edges_carry_cost_and_eligible(self):
        pairs = [_pair("a", "b", 100, 40, 140)]
        graph = build_pair_graph(pairs)
        data = graph.get_edge_data("a", "b")
        assert data["cost"] == 40
        assert data["eligible"] is pairs[0]
        assert data["weight"] > 0

    def test_invalid_offset_rejected(self):
        pairs = [_pair("a", "b", 100, 40, 140)]
        with pytest.raises(MatchingError):
            build_pair_graph(pairs, weight_offset=10)


class TestMaximumWeightMatching:
    def test_matching_is_vertex_disjoint(self, skewed_histogram):
        eligible = generate_eligible_pairs(skewed_histogram, SECRET, Z)
        graph = build_pair_graph(eligible)
        matched = maximum_weight_matching(graph)
        assert matching_is_valid(matched)
        assert matched  # a skewed histogram yields at least one matched pair

    def test_prefers_cheap_edges_on_conflict(self):
        # Triangle a-b-c: only one edge can be chosen; the cheapest must win.
        pairs = [
            _pair("a", "b", 100, 10, 110),
            _pair("b", "c", 100, 40, 140),
            _pair("a", "c", 100, 30, 130),
        ]
        matched = maximum_weight_matching(build_pair_graph(pairs))
        assert len(matched) == 1
        assert matched[0].pair == TokenPair("a", "b")

    def test_max_cardinality_beats_single_heavy_edge(self):
        # Path a-b-c-d: picking the middle edge alone is lighter-cost but
        # max-cardinality matching must take the two outer edges.
        pairs = [
            _pair("a", "b", 100, 30, 130),
            _pair("b", "c", 100, 1, 101),
            _pair("c", "d", 100, 30, 130),
        ]
        matched = maximum_weight_matching(build_pair_graph(pairs))
        assert len(matched) == 2
        assert {item.pair for item in matched} == {TokenPair("a", "b"), TokenPair("c", "d")}

    def test_empty_graph(self):
        import networkx as nx

        assert maximum_weight_matching(nx.Graph()) == []


class TestHelpers:
    def test_matching_is_valid_detects_overlap(self):
        overlapping = [_pair("a", "b", 10, 1, 11), _pair("b", "c", 10, 1, 11)]
        assert not matching_is_valid(overlapping)

    def test_pairs_by_token(self):
        pairs = [_pair("a", "b", 10, 1, 11), _pair("c", "d", 10, 1, 11)]
        index = pairs_by_token(pairs)
        assert index["a"] == TokenPair("a", "b")
        assert index["d"] == TokenPair("c", "d")
