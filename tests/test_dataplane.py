"""The zero-copy data plane: blob store, shm transport, v4 wire dedup.

Four layers, matching ``docs/scheduler.md``:

* **BlobStore** — content-addressed put/get, LRU eviction honouring
  pins, disk spill, and the typed :class:`~repro.exceptions.
  BlobNotFoundError` miss.
* **Payload indirection** — :func:`~repro.exec.blobs.maybe_blob` only
  rewrites values above the size floor; :func:`~repro.exec.blobs.
  resolve_refs` restores the *identical* object in-process (zero extra
  copies on the inline fallback), and the protocol-5
  ``TokenHistogram.__reduce_ex__`` round-trips without copying its
  count array.
* **Local shm lifecycle** — a pool run ships blobbed payloads through
  shared memory, unlinks every segment on completion, and — the crash
  contract — on teardown after a worker death, with verdicts identical
  to the inline path.
* **Remote v4** — a real ``freqywm worker`` fetches each missing blob
  exactly once (dedup counters prove it), a ceiling-lowered worker
  negotiates down to v3 inline payloads transparently, and a
  blob-request for an evicted digest fails typed and bounded.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import scheduler_tasks
from repro.core.histogram import TokenHistogram
from repro.exceptions import BlobNotFoundError, WorkerCrashError
from repro.exec.blobs import (
    MIN_BLOB_BYTES,
    BlobRef,
    BlobStore,
    blob_digest,
    collect_refs,
    dataplane_enabled,
    default_blob_store,
    dumps_oob,
    loads_oob,
    maybe_blob,
    resolve_refs,
    rewrite_refs,
    set_default_blob_store,
)
from repro.exec.remote import RemoteScheduler
from repro.exec.scheduler import LocalScheduler, SchedulerStats, TaskSpec


def _payload_bytes(count: int = 2 * MIN_BLOB_BYTES) -> bytes:
    return bytes(range(256)) * (count // 256 + 1)


@pytest.fixture()
def fresh_store():
    """An isolated process-wide default store, restored afterwards."""
    store = BlobStore()
    previous = set_default_blob_store(store)
    try:
        yield store
    finally:
        set_default_blob_store(previous)


# --------------------------------------------------------------------------- #
# BlobStore
# --------------------------------------------------------------------------- #


class TestBlobStore:
    def test_put_get_round_trip_and_idempotence(self):
        store = BlobStore()
        data = dumps_oob({"key": _payload_bytes()})
        digest = store.put(data)
        assert store.put(data) == digest  # idempotent
        assert digest in store
        assert store.size_of(digest) == data.size
        assert loads_oob(store.get(digest)) == {"key": _payload_bytes()}
        stats = store.stats()
        assert stats["blobs"] == 1 and stats["puts"] == 1  # one insertion

    def test_missing_digest_is_a_typed_error(self):
        store = BlobStore()
        missing = "0" * 64
        with pytest.raises(BlobNotFoundError) as excinfo:
            store.get(missing)
        assert excinfo.value.digest == missing
        assert store.size_of(missing) == 0

    def test_lru_eviction_skips_pinned_blobs(self):
        store = BlobStore(capacity=40_000)
        keep = store.put(dumps_oob(_payload_bytes(16_000)))
        store.pin(keep)
        evicted = store.put(dumps_oob(_payload_bytes(16_000) + b"x"))
        store.put(dumps_oob(_payload_bytes(16_000) + b"yy"))  # over budget
        assert keep in store  # pinned survives even as LRU
        assert evicted not in store
        store.unpin(keep)

    def test_spill_dir_serves_evicted_blobs(self, tmp_path):
        store = BlobStore(capacity=20_000, spill_dir=tmp_path)
        data = dumps_oob(_payload_bytes(16_000))
        digest = store.put(data)
        store.put(dumps_oob(_payload_bytes(16_000) + b"z"))  # evicts the first
        assert digest not in store  # gone from memory...
        reloaded = store.get(digest)  # ...but served from disk
        assert blob_digest(reloaded) == digest
        assert store.stats()["spill_loads"] == 1


# --------------------------------------------------------------------------- #
# Payload indirection
# --------------------------------------------------------------------------- #


class TestMaybeBlob:
    def test_small_values_pass_through(self, fresh_store):
        value, refs = maybe_blob("tiny")
        assert value == "tiny" and refs == ()

    def test_large_values_become_refs_resolving_to_the_same_object(
        self, fresh_store
    ):
        original = {"bulk": _payload_bytes()}
        value, refs = maybe_blob(original)
        assert isinstance(value, BlobRef) and len(refs) == 1
        assert resolve_refs(value) is original  # value cache: zero copies

    def test_rewrite_and_collect_walk_nested_containers(self, fresh_store):
        ref = maybe_blob(_payload_bytes())[0]
        nested = ("head", [1, {"inner": ref}], ref)
        assert collect_refs(nested) == (ref.digest,)  # deduplicated
        marker = object()
        rewritten = rewrite_refs(nested, {ref.digest: marker})
        assert rewritten[1][1]["inner"] is marker and rewritten[2] is marker
        resolved = resolve_refs(nested)
        assert resolved[1][1]["inner"] is resolve_refs(ref)

    def test_dataplane_env_switch(self, monkeypatch):
        monkeypatch.delenv("FREQYWM_DATAPLANE", raising=False)
        assert dataplane_enabled()
        for off in ("inline", "off", "0", "false"):
            monkeypatch.setenv("FREQYWM_DATAPLANE", off)
            assert not dataplane_enabled()
        monkeypatch.setenv("FREQYWM_DATAPLANE", "blob")
        assert dataplane_enabled()


class TestHistogramPickleProtocol5:
    def test_protocol_5_round_trip_is_equal(self, skewed_histogram):
        clone = pickle.loads(pickle.dumps(skewed_histogram, protocol=5))
        assert clone == skewed_histogram
        # Older protocols still work (the inline v3 wire uses them).
        assert pickle.loads(pickle.dumps(skewed_histogram, protocol=4)) == (
            skewed_histogram
        )

    def test_out_of_band_buffers_are_zero_copy(self):
        histogram = TokenHistogram.from_counts(
            {f"tok{i:04d}": 1_000 - i for i in range(512)}
        )
        buffers = []
        data = pickle.dumps(
            histogram, protocol=5, buffer_callback=buffers.append
        )
        assert buffers, "the count array should travel out-of-band"
        clone = pickle.loads(data, buffers=[b.raw() for b in buffers])
        assert clone == histogram
        backing = np.frombuffer(buffers[0].raw(), dtype=np.int64)
        assert np.shares_memory(clone._array, backing)


# --------------------------------------------------------------------------- #
# Local shm lifecycle
# --------------------------------------------------------------------------- #


def _blobbed_specs(store, values, function="schedtest.echo"):
    specs = []
    for index, value in enumerate(values):
        payload, refs = maybe_blob(value, store=store)
        specs.append(
            TaskSpec(
                fingerprint=f"blob-{index}",
                function=function,
                payload=payload,
                blob_refs=refs,
            )
        )
    return specs


def _recording_exporter(monkeypatch):
    """Patch the scheduler's shm export to record every segment name."""
    import repro.exec.blobs as blobs
    import repro.exec.scheduler as scheduler_module

    names = []

    def recording(digest, data):
        handle, segment = blobs.export_shm_blob(digest, data)
        names.append(segment.name)
        return handle, segment

    monkeypatch.setattr(scheduler_module, "export_shm_blob", recording)
    return names


def _assert_unlinked(names):
    from multiprocessing import shared_memory

    assert names, "expected the run to export shm segments"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestLocalShm:
    def test_pool_run_ships_blobs_and_unlinks_segments(
        self, fresh_store, monkeypatch
    ):
        names = _recording_exporter(monkeypatch)
        values = [_payload_bytes() + bytes([i]) for i in range(6)]
        with LocalScheduler(workers=2) as scheduler:
            results = scheduler.run(_blobbed_specs(fresh_store, values))
        assert results == values
        _assert_unlinked(names)

    def test_worker_crash_still_releases_segments(self, fresh_store, monkeypatch):
        names = _recording_exporter(monkeypatch)
        payload, refs = maybe_blob(_payload_bytes(), store=fresh_store)
        fatal = TaskSpec(
            fingerprint="fatal",
            function="schedtest.die",
            payload=payload,
            blob_refs=refs,
        )
        # A second benign task keeps the batch on the pool path (a
        # single task runs inline and would kill this process).
        benign = _blobbed_specs(fresh_store, [_payload_bytes() + b"ok"])[0]
        with LocalScheduler(workers=2, max_retries=1) as scheduler:
            with pytest.raises(WorkerCrashError):
                scheduler.run([fatal, benign])
        _assert_unlinked(names)

    def test_inline_mode_matches_blob_mode(self, fresh_store, monkeypatch):
        values = [_payload_bytes() + bytes([i]) for i in range(4)]
        with LocalScheduler(workers=2) as scheduler:
            blobbed = scheduler.run(_blobbed_specs(fresh_store, values))
        monkeypatch.setenv("FREQYWM_DATAPLANE", "inline")
        plain = [
            TaskSpec(
                fingerprint=f"plain-{i}", function="schedtest.echo", payload=v
            )
            for i, v in enumerate(values)
        ]
        with LocalScheduler(workers=2) as scheduler:
            inline = scheduler.run(plain)
        assert blobbed == inline == values


# --------------------------------------------------------------------------- #
# Remote v4
# --------------------------------------------------------------------------- #


class TestRemoteDataPlane:
    def test_shared_blob_ships_once_and_counters_prove_it(
        self, fresh_store, tmp_path
    ):
        shared = _payload_bytes()
        payload, refs = maybe_blob(shared, store=fresh_store)
        specs = [
            TaskSpec(
                fingerprint=f"shared-{i}",
                function="schedtest.echo",
                payload=payload,
                blob_refs=refs,
            )
            for i in range(5)
        ]
        socket_path = tmp_path / "worker.sock"
        with scheduler_tasks.spawn_worker(socket_path):
            scheduler = RemoteScheduler([f"unix:{socket_path}"])
            with scheduler:
                results = scheduler.run(specs)
            assert results == [shared] * 5
            address = f"unix:{socket_path}"
            assert scheduler._versions[address] == 4
            stats = scheduler.stats
            assert stats.blobs_sent == 1  # fetched exactly once
            assert stats.blobs_deduped == 4  # reused by the other tasks
            assert stats.bytes_deduped >= 4 * len(shared)

    def test_v3_worker_degrades_to_inline_payloads(self, fresh_store, tmp_path):
        shared = _payload_bytes()
        payload, refs = maybe_blob(shared, store=fresh_store)
        specs = [
            TaskSpec(
                fingerprint=f"old-{i}",
                function="schedtest.echo",
                payload=payload,
                blob_refs=refs,
            )
            for i in range(3)
        ]
        socket_path = tmp_path / "old-worker.sock"
        with scheduler_tasks.spawn_worker(
            socket_path, extra_env={"FREQYWM_WIRE_CEILING": "3"}
        ):
            scheduler = RemoteScheduler([f"unix:{socket_path}"])
            with scheduler:
                results = scheduler.run(specs)
            assert results == [shared] * 3
            assert scheduler._versions[f"unix:{socket_path}"] == 3
            assert scheduler.stats.blobs_sent == 0  # nothing framed

    def test_evicted_digest_fails_typed_within_the_retry_bound(
        self, fresh_store, tmp_path
    ):
        payload, refs = maybe_blob(_payload_bytes(), store=fresh_store)
        spec = TaskSpec(
            fingerprint="gone",
            function="schedtest.echo",
            payload=payload,
            blob_refs=refs,
        )
        fresh_store.clear()  # simulate eviction after the spec was built
        socket_path = tmp_path / "worker.sock"
        with scheduler_tasks.spawn_worker(socket_path):
            scheduler = RemoteScheduler([f"unix:{socket_path}"], max_retries=0)
            with scheduler:
                with pytest.raises(WorkerCrashError, match="blob miss"):
                    scheduler.run([spec])


# --------------------------------------------------------------------------- #
# Stats
# --------------------------------------------------------------------------- #


def test_scheduler_stats_summary_line():
    stats = SchedulerStats(
        tasks=3, bytes_sent=1024, bytes_deduped=512, blobs_sent=2, blobs_deduped=1
    )
    line = stats.summary()
    for fragment in ("tasks=3", "bytes_sent=1024", "bytes_deduped=512"):
        assert fragment in line
