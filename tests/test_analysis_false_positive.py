"""Unit tests for the false-positive probability analysis — Section III-B4."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.analysis.false_positive import (
    empirical_false_positive_rate,
    false_positive_bound,
    markov_bound,
    pair_false_positive_probability,
    poisson_binomial_pmf,
    poisson_binomial_survival,
    profile_from_moduli,
    survival_curve,
    uniform_probability_profile,
)
from repro.exceptions import ConfigurationError


class TestPairProbability:
    def test_uniform_remainder_model(self):
        assert pair_false_positive_probability(131, 0) == pytest.approx(1 / 131)
        assert pair_false_positive_probability(131, 12) == pytest.approx(13 / 131)
        assert pair_false_positive_probability(10, 100) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            pair_false_positive_probability(1, 0)
        with pytest.raises(ConfigurationError):
            pair_false_positive_probability(10, -1)


class TestPoissonBinomial:
    def test_matches_binomial_for_identical_probabilities(self):
        n, p = 30, 0.2
        pmf = poisson_binomial_pmf([p] * n)
        reference = stats.binom.pmf(np.arange(n + 1), n, p)
        assert np.allclose(pmf, reference, atol=1e-9)

    def test_pmf_sums_to_one(self, rng):
        probabilities = rng.uniform(0, 1, size=40)
        pmf = poisson_binomial_pmf(probabilities)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_survival_against_binomial(self):
        n, p, k = 50, 0.3, 20
        survival = poisson_binomial_survival([p] * n, k)
        assert survival == pytest.approx(float(stats.binom.sf(k - 1, n, p)), abs=1e-9)

    def test_survival_edge_cases(self):
        assert poisson_binomial_survival([0.5] * 10, 0) == 1.0
        assert poisson_binomial_survival([0.5] * 10, 11) == 0.0

    def test_empty_probabilities(self):
        assert poisson_binomial_pmf([]).tolist() == [1.0]

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_binomial_pmf([0.5, 1.5])

    def test_survival_curve_monotone_decreasing(self, rng):
        probabilities = rng.uniform(0, 1, size=50)
        curve = survival_curve(probabilities)
        assert curve[0] == pytest.approx(1.0)
        assert np.all(np.diff(curve) <= 1e-12)
        # The paper's observation for n = 50: survival reaches ~0 at k = n.
        assert curve[-1] < 0.05


class TestMarkovBound:
    def test_bound_dominates_exact_probability(self, rng):
        probabilities = rng.uniform(0, 0.3, size=30)
        for k in (1, 5, 10, 20):
            assert markov_bound(probabilities, k) + 1e-12 >= poisson_binomial_survival(
                probabilities, k
            )

    def test_limit_in_t(self):
        # As t -> 0 the per-pair probability and hence the bound go to zero.
        bounds = [
            false_positive_bound(50, 10, modulus=131, threshold=t) for t in (20, 10, 4, 0)
        ]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[-1] < 0.04

    def test_limit_in_k(self):
        bounds = [false_positive_bound(50, k, modulus=131, threshold=4) for k in (1, 5, 20, 50)]
        assert bounds == sorted(bounds, reverse=True)

    def test_k_zero_gives_one(self):
        assert markov_bound([0.1] * 10, 0) == 1.0


class TestProfiles:
    def test_profile_from_moduli(self):
        profile = profile_from_moduli([100, 50, 25], threshold=4)
        assert profile.pair_probabilities == pytest.approx((5 / 100, 5 / 50, 5 / 25))
        assert profile.mean_accepted_pairs == pytest.approx(5 / 100 + 5 / 50 + 5 / 25)

    def test_minimal_k_reaches_target(self):
        profile = profile_from_moduli([131] * 40, threshold=0)
        k = profile.minimal_k_for(1e-6)
        assert profile.exact_probability(k) <= 1e-6
        assert profile.exact_probability(max(0, k - 1)) > 1e-6

    def test_markov_dominates_exact_in_profile(self):
        profile = uniform_probability_profile(30, rng=3)
        for k in (5, 15, 25):
            assert profile.markov_probability(k) + 1e-12 >= profile.exact_probability(k)


#: Hypothesis sweep over the paper's (n, t, moduli) knobs: modest example
#: counts keep the Monte-Carlo cross-checks fast while still roaming the
#: space of pair counts, thresholds and modulus mixes.
_fp_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_moduli_strategy = st.lists(
    st.integers(min_value=2, max_value=131), min_size=1, max_size=40
)


class TestExactSurvivalCrossChecks:
    """The DFT survival function against its two independent estimates.

    Property-based over ``n`` (implied by the moduli list length), the
    per-pair threshold ``t`` and the modulus mix — the three knobs the
    paper sweeps in Section III-B4.
    """

    @_fp_settings
    @given(moduli=_moduli_strategy, threshold=st.integers(min_value=0, max_value=16))
    def test_exact_survival_within_monte_carlo_noise(self, moduli, threshold):
        probabilities = [
            pair_false_positive_probability(modulus, threshold) for modulus in moduli
        ]
        k = max(1, len(moduli) // 2)
        exact = poisson_binomial_survival(probabilities, k)
        trials = 1500
        empirical = empirical_false_positive_rate(
            moduli, threshold, k, trials=trials, rng=101
        )
        # Four-sigma binomial confidence band around the exact value (plus
        # a floor for the tiny-probability regime where sigma ~ 0).
        sigma = np.sqrt(max(exact * (1.0 - exact), 1e-12) / trials)
        assert abs(empirical - exact) <= 4.0 * sigma + 5.0 / trials

    @_fp_settings
    @given(
        moduli=_moduli_strategy,
        threshold=st.integers(min_value=0, max_value=16),
        k_fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_markov_bound_dominates_exact_survival(
        self, moduli, threshold, k_fraction
    ):
        probabilities = [
            pair_false_positive_probability(modulus, threshold) for modulus in moduli
        ]
        k = max(1, int(round(k_fraction * len(moduli))))
        exact = poisson_binomial_survival(probabilities, k)
        assert markov_bound(probabilities, k) + 1e-12 >= exact

    @_fp_settings
    @given(moduli=_moduli_strategy, threshold=st.integers(min_value=0, max_value=16))
    def test_survival_is_a_valid_decreasing_tail(self, moduli, threshold):
        profile = profile_from_moduli(moduli, threshold)
        values = [
            profile.exact_probability(k) for k in range(len(moduli) + 2)
        ]
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == 0.0
        assert all(0.0 <= value <= 1.0 for value in values)
        assert all(
            later <= earlier + 1e-12 for earlier, later in zip(values, values[1:])
        )


class TestEmpiricalValidation:
    def test_monte_carlo_close_to_exact(self):
        moduli = [131] * 30
        threshold, k = 4, 3
        exact = poisson_binomial_survival(
            [pair_false_positive_probability(m, threshold) for m in moduli], k
        )
        empirical = empirical_false_positive_rate(
            moduli, threshold, k, trials=4000, rng=11
        )
        assert empirical == pytest.approx(exact, abs=0.03)

    def test_invalid_moduli_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_false_positive_rate([1, 10], 0, 1, trials=10)
