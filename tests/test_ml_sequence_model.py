"""Unit tests for the Markov next-URL sequence model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.ml.sequence_model import (
    MarkovSequenceModel,
    accuracy_impact,
    train_test_split_sequences,
)


@pytest.fixture()
def corpus():
    # Highly predictable browsing sessions: a -> b -> c, repeated, with a
    # couple of detours so back-off paths get exercised.
    return [
        ["a", "b", "c", "a", "b", "c", "a", "b", "c"],
        ["a", "b", "c", "d", "a", "b", "c"],
        ["b", "c", "a", "b", "c"],
    ]


class TestMarkovModel:
    def test_fit_predict_most_likely_transition(self, corpus):
        model = MarkovSequenceModel(order=1).fit(corpus)
        assert model.predict(["a"]) == ["b"]
        assert model.predict(["b"]) == ["c"]

    def test_order2_context_beats_order1_ambiguity(self, corpus):
        model = MarkovSequenceModel(order=2).fit(corpus)
        assert model.predict(["b", "c"])[0] in {"a", "d"}
        assert model.predict(["a", "b"]) == ["c"]

    def test_backoff_to_unigram_for_unknown_context(self, corpus):
        model = MarkovSequenceModel(order=2).fit(corpus)
        prediction = model.predict(["never-seen"])
        # Falls back to the globally most frequent tokens.
        assert prediction[0] in {"a", "b", "c"}

    def test_top_k_predictions(self, corpus):
        model = MarkovSequenceModel(order=1).fit(corpus)
        top2 = model.predict(["c"], top_k=2)
        assert len(top2) == 2
        assert "a" in top2 or "d" in top2

    def test_evaluate_accuracy_high_on_predictable_corpus(self, corpus):
        model = MarkovSequenceModel(order=2).fit(corpus)
        evaluation = model.evaluate(corpus, top_k=1)
        assert evaluation.accuracy > 0.7
        assert evaluation.evaluated_transitions == sum(len(s) - 1 for s in corpus)

    def test_errors_for_unfitted_or_invalid(self):
        with pytest.raises(ConfigurationError):
            MarkovSequenceModel(order=0)
        model = MarkovSequenceModel()
        with pytest.raises(ConfigurationError):
            model.predict(["a"])
        with pytest.raises(ConfigurationError):
            model.evaluate([["a", "b"]])
        with pytest.raises(ConfigurationError):
            model.fit([])


class TestSplitsAndImpact:
    def test_split_partitions_sequences(self, corpus):
        train, test = train_test_split_sequences(corpus * 4, test_fraction=0.25, rng=3)
        assert len(train) + len(test) == len(corpus) * 4
        assert len(test) >= 1

    def test_split_rejects_bad_fraction(self, corpus):
        with pytest.raises(ConfigurationError):
            train_test_split_sequences(corpus, test_fraction=0.0)

    def test_accuracy_impact_of_identical_corpora_is_zero(self, corpus):
        report = accuracy_impact(corpus * 5, corpus * 5, order=2, top_k=1, rng=7)
        assert report["accuracy_difference"] == pytest.approx(0.0, abs=1e-9)
        assert report["original_accuracy"] > 0.5

    def test_accuracy_impact_reports_both_sides(self, corpus):
        shuffled = [list(reversed(sequence)) for sequence in corpus * 5]
        report = accuracy_impact(corpus * 5, shuffled, order=1, top_k=1, rng=7)
        assert set(report) >= {
            "original_accuracy",
            "watermarked_accuracy",
            "accuracy_difference",
        }
