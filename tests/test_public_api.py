"""Tests of the public API surface: exports, docstrings, re-exports."""

from __future__ import annotations

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.bucketize",
    "repro.core.config",
    "repro.core.detector",
    "repro.core.eligibility",
    "repro.core.generator",
    "repro.core.graph",
    "repro.core.hashing",
    "repro.core.histogram",
    "repro.core.knapsack",
    "repro.core.matching",
    "repro.core.modification",
    "repro.core.multidimensional",
    "repro.core.multiwatermark",
    "repro.core.secrets",
    "repro.core.similarity",
    "repro.core.tokens",
    "repro.core.transform",
    "repro.datasets",
    "repro.datasets.adult",
    "repro.datasets.clickstream",
    "repro.datasets.loaders",
    "repro.datasets.synthetic",
    "repro.datasets.tabular",
    "repro.datasets.taxi",
    "repro.attacks",
    "repro.attacks.base",
    "repro.attacks.destroy",
    "repro.attacks.evaluation",
    "repro.attacks.guess",
    "repro.attacks.rewatermark",
    "repro.attacks.sampling",
    "repro.analysis",
    "repro.analysis.decomposition",
    "repro.analysis.distortion",
    "repro.analysis.false_positive",
    "repro.analysis.reporting",
    "repro.baselines",
    "repro.baselines.genetic",
    "repro.baselines.partitioning",
    "repro.baselines.wm_obt",
    "repro.baselines.wm_rvs",
    "repro.ml",
    "repro.ml.sequence_model",
    "repro.dispute",
    "repro.dispute.judge",
    "repro.dispute.registry",
    "repro.service",
    "repro.service.cache",
    "repro.service.client",
    "repro.service.server",
    "repro.service.service",
    "repro.service.wire",
    "repro.experiments",
    "repro.experiments.cache",
    "repro.experiments.executor",
    "repro.experiments.plan",
    "repro.experiments.report",
    "repro.experiments.spec",
    "repro.experiments.tasks",
    "repro.utils",
    "repro.utils.rng",
    "repro.utils.timing",
    "repro.utils.validation",
    "repro.exceptions",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


@pytest.mark.parametrize(
    "module_name",
    [name for name in PUBLIC_MODULES if not name.endswith(".cli")],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip("module does not define __all__")
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name!r}"


def test_top_level_exports_are_usable():
    import repro

    # The names advertised in the package docstring quickstart must exist
    # and be callable / instantiable.
    assert callable(repro.generate_watermark)
    assert callable(repro.detect_watermark)
    assert repro.__version__.count(".") == 2
    secret = repro.WatermarkSecret.build([("a", "b")], secret=1, modulus_cap=7)
    assert isinstance(secret, repro.WatermarkSecret)


def test_exceptions_form_a_single_hierarchy():
    from repro import exceptions

    error_classes = [
        getattr(exceptions, name)
        for name in dir(exceptions)
        if isinstance(getattr(exceptions, name), type)
        and issubclass(getattr(exceptions, name), Exception)
    ]
    assert exceptions.ReproError in error_classes
    for error_class in error_classes:
        assert issubclass(error_class, exceptions.ReproError)


def test_public_callables_have_docstrings():
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"repro.{name} is missing a docstring"
