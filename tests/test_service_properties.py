"""Service/direct parity under arbitrary request interleavings.

ISSUE 3 property: for any interleaving of single-dataset requests across
two distinct registered secrets, the verdicts the coalescing service
returns are identical to direct ``WatermarkDetector(secret).detect``
calls — coalescing changes *when* the vectorized pass runs, never what
it computes. The transports (socket/subprocess) are covered here too,
since they sit on the same submit path.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detector import WatermarkDetector
from repro.core.generator import generate_watermark
from repro.core.histogram import TokenHistogram
from repro.datasets.synthetic import generate_power_law_tokens
from repro.service import DetectionService, ServiceConfig

_WATERMARKS = None


def _watermarks():
    """Two distinct watermarks plus per-secret suspect pools (built once)."""
    global _WATERMARKS
    if _WATERMARKS is None:
        first = generate_watermark(
            generate_power_law_tokens(0.7, n_tokens=60, sample_size=8_000, rng=5),
            budget_percent=2.0,
            modulus_cap=31,
            rng=7,
        )
        second = generate_watermark(
            generate_power_law_tokens(0.6, n_tokens=50, sample_size=6_000, rng=11),
            budget_percent=2.0,
            modulus_cap=23,
            rng=13,
        )
        decoy = TokenHistogram.from_tokens([f"decoy-{i % 9}" for i in range(3_000)])
        cross = second.watermarked_histogram  # watermarked with the *other* secret
        suspects = [
            [first.watermarked_histogram, decoy, cross],
            [second.watermarked_histogram, decoy, first.watermarked_histogram],
        ]
        detectors = [
            WatermarkDetector(first.secret),
            WatermarkDetector(second.secret),
        ]
        _WATERMARKS = ([first.secret, second.secret], suspects, detectors)
    return _WATERMARKS


def _verdict(result):
    return (
        result.accepted,
        result.accepted_pairs,
        result.required_pairs,
        result.total_pairs,
    )


#: One request: (which secret, which suspect of that secret's pool, and
#: whether the submitter yields to the loop before the next submission —
#: this is what varies the interleaving/coalescing pattern).
_REQUESTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=2),
        st.booleans(),
    ),
    min_size=1,
    max_size=25,
)


class TestInterleavedParity:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(script=_REQUESTS, max_delay_ms=st.sampled_from([0, 1, 5]))
    def test_coalesced_verdicts_match_direct_detection(self, script, max_delay_ms):
        secrets, suspects, detectors = _watermarks()

        async def run():
            config = ServiceConfig(max_delay=max_delay_ms / 1000.0, max_batch=8)
            async with DetectionService(config) as service:
                keys = [service.register_secret(secret) for secret in secrets]
                pending = []
                for secret_index, suspect_index, yield_first in script:
                    if yield_first:
                        # Let the batcher observe (and possibly close) the
                        # current window before the next submission.
                        await asyncio.sleep(0)
                    pending.append(
                        asyncio.ensure_future(
                            service.detect(
                                suspects[secret_index][suspect_index],
                                secret_fingerprint=keys[secret_index],
                            )
                        )
                    )
                results = await asyncio.gather(*pending)
                return results, service.stats

        results, stats = asyncio.run(run())
        assert stats.requests == len(script)
        for (secret_index, suspect_index, _), result in zip(script, results):
            direct = detectors[secret_index].detect(
                suspects[secret_index][suspect_index]
            )
            assert _verdict(result) == _verdict(direct)


class TestTransportParity:
    def test_unix_socket_burst_matches_direct(self, tmp_path):
        from repro.service import (
            DetectRequest,
            ServiceClient,
            serve_unix,
        )

        secrets, suspects, detectors = _watermarks()
        socket_path = tmp_path / "svc.sock"
        requests = [
            DetectRequest(
                request_id=f"{si}-{di}-{n}",
                counts=suspects[si][di].as_dict(),
                secret=secrets[si].to_dict(),
            )
            for n, (si, di) in enumerate([(0, 0), (1, 0), (0, 1), (1, 2), (0, 0)])
        ]

        async def run():
            async with DetectionService(ServiceConfig(max_delay=0.01)) as service:
                ready = asyncio.Event()
                server_task = asyncio.ensure_future(
                    serve_unix(service, socket_path, ready=ready)
                )
                await ready.wait()
                loop = asyncio.get_running_loop()

                def talk():
                    with ServiceClient.connect_unix(socket_path) as client:
                        return client.request(requests)

                try:
                    # The blocking client runs in a worker thread so the
                    # server (this loop) stays live underneath it.
                    return await loop.run_in_executor(None, talk)
                finally:
                    server_task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await server_task

        responses = asyncio.run(run())
        assert not socket_path.exists()  # unlinked on shutdown
        for request, response in zip(requests, responses):
            si, di, _ = request.request_id.split("-")
            direct = detectors[int(si)].detect(suspects[int(si)][int(di)])
            assert response.ok
            assert (response.accepted, response.accepted_pairs) == (
                direct.accepted,
                direct.accepted_pairs,
            )

    def test_spawned_stdio_server_matches_direct(self):
        from repro.service import DetectRequest, ServiceClient

        secrets, suspects, detectors = _watermarks()
        requests = [
            DetectRequest(
                request_id=f"r{n}",
                counts=suspects[0][n % 3].as_dict(),
                secret=secrets[0].to_dict(),
            )
            for n in range(4)
        ]
        with ServiceClient.spawn() as client:
            responses = client.request(requests)
        for n, response in enumerate(responses):
            direct = detectors[0].detect(suspects[0][n % 3])
            assert response.ok
            assert (response.accepted, response.accepted_pairs) == (
                direct.accepted,
                direct.accepted_pairs,
            )
        # The pipelined burst coalesced inside the spawned server.
        assert max(response.batch_size for response in responses) > 1
