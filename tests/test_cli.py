"""Unit tests for the ``freqywm`` command line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.core.secrets import WatermarkSecret
from repro.datasets.loaders import load_token_file, save_token_file
from repro.datasets.synthetic import generate_power_law_tokens


@pytest.fixture()
def token_file(tmp_path) -> Path:
    path = tmp_path / "tokens.txt"
    tokens = generate_power_law_tokens(0.7, n_tokens=50, sample_size=6_000, rng=3)
    save_token_file(tokens, path)
    return path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["synth", "out.txt", "--alpha", "0.7"])
        assert args.command == "synth"
        assert args.alpha == 0.7

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerateDetect:
    def test_generate_then_detect_roundtrip(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        exit_code = main(
            [
                "generate",
                str(token_file),
                str(watermarked),
                str(secret),
                "--modulus",
                "31",
                "--seed",
                "7",
            ]
        )
        assert exit_code == 0
        assert watermarked.exists() and secret.exists()
        WatermarkSecret.load(secret)  # parses
        output = capsys.readouterr().out
        assert "selected_pairs" in output

        exit_code = main(["detect", str(watermarked), str(secret)])
        assert exit_code == 0
        assert "accepted" in capsys.readouterr().out

    def test_detect_fails_on_unrelated_data(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        unrelated = tmp_path / "unrelated.txt"
        save_token_file([f"other-{i}" for i in range(500)], unrelated)
        exit_code = main(["detect", str(unrelated), str(secret)])
        assert exit_code == 1

    def test_json_output(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        exit_code = main(
            [
                "--json",
                "generate",
                str(token_file),
                str(watermarked),
                str(secret),
                "--modulus",
                "31",
                "--seed",
                "7",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["selected_pairs"] >= 1


class TestStreamingGenerate:
    def test_chunked_generate_verifies(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        exit_code = main(
            [
                "--json",
                "generate",
                str(token_file),
                str(watermarked),
                str(secret),
                "--modulus",
                "31",
                "--seed",
                "7",
                "--chunk-size",
                "500",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["streaming"] is True and payload["chunk_size"] == 500
        # The streamed output realises the watermarked histogram: detection
        # must verify on the written file.
        assert main(["detect", str(watermarked), str(secret)]) == 0

    def test_chunked_generate_same_histogram_as_one_shot(self, token_file, tmp_path):
        from repro.core.histogram import TokenHistogram

        streamed_out = tmp_path / "streamed.txt"
        one_shot_out = tmp_path / "one_shot.txt"
        for output, extra in (
            (streamed_out, ["--chunk-size", "777"]),
            (one_shot_out, []),
        ):
            assert (
                main(
                    [
                        "generate",
                        str(token_file),
                        str(output),
                        str(tmp_path / f"{output.stem}.secret.json"),
                        "--modulus",
                        "31",
                        "--seed",
                        "7",
                        *extra,
                    ]
                )
                == 0
            )
        streamed = TokenHistogram.from_tokens(load_token_file(streamed_out))
        one_shot = TokenHistogram.from_tokens(load_token_file(one_shot_out))
        assert streamed == one_shot


class TestBatchDetect:
    def test_directory_screening(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        suspects = tmp_path / "suspects"
        suspects.mkdir()
        watermarked_tokens = load_token_file(watermarked)
        save_token_file(watermarked_tokens, suspects / "copy.txt")
        save_token_file([f"noise-{i % 11}" for i in range(2_000)], suspects / "decoy.txt")
        capsys.readouterr()
        exit_code = main(
            ["--json", "detect", str(suspects), str(secret), "--workers", "2"]
        )
        assert exit_code == 1  # the decoy is rejected
        payload = json.loads(capsys.readouterr().out)
        assert payload["datasets"] == 2
        assert payload["accepted_datasets"] == 1
        suspect_reports = payload["suspects"]
        assert suspect_reports[str(suspects / "copy.txt")]["accepted"] is True
        assert suspect_reports[str(suspects / "decoy.txt")]["accepted"] is False

    def test_directory_all_accepted_exit_zero(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        suspects = tmp_path / "suspects"
        suspects.mkdir()
        tokens = load_token_file(watermarked)
        save_token_file(tokens, suspects / "a.txt")
        save_token_file(tokens, suspects / "b.tokens")
        assert main(["detect", str(suspects), str(secret)]) == 0
        assert "accepted" in capsys.readouterr().out

    def test_single_file_directory_keeps_batch_schema(
        self, token_file, tmp_path, capsys
    ):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        suspects = tmp_path / "suspects"
        suspects.mkdir()
        save_token_file(load_token_file(watermarked), suspects / "only.txt")
        capsys.readouterr()
        exit_code = main(
            ["--json", "detect", str(suspects), str(secret), "--workers", "2"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["datasets"] == 1 and payload["workers"] == 2
        assert list(payload["suspects"]) == [str(suspects / "only.txt")]

    def test_empty_directory_errors(self, tmp_path, token_file):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["detect", str(empty), str(secret)]) == 2


class TestAttackAndSynth:
    def test_sampling_attack_command(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        exit_code = main(
            [
                "attack",
                str(watermarked),
                str(secret),
                "--kind",
                "sampling",
                "--fraction",
                "0.5",
                "--threshold",
                "4",
                "--seed",
                "3",
            ]
        )
        output = capsys.readouterr().out
        assert "attack" in output
        assert exit_code in (0, 1)

    def test_destroy_attack_command(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        exit_code = main(
            [
                "attack",
                str(watermarked),
                str(secret),
                "--kind",
                "destroy-percent",
                "--percent",
                "1.0",
                "--threshold",
                "10",
                "--seed",
                "3",
            ]
        )
        assert exit_code in (0, 1)
        assert "destroy-percentage-within-bounds" in capsys.readouterr().out

    def test_synth_command(self, tmp_path, capsys):
        output_path = tmp_path / "synthetic.txt"
        exit_code = main(
            ["synth", str(output_path), "--alpha", "0.5", "--tokens", "40", "--size", "2000", "--seed", "2"]
        )
        assert exit_code == 0
        tokens = load_token_file(output_path)
        assert len(tokens) == 2000
        assert "alpha" in capsys.readouterr().out


class TestBatchGenerate:
    def _make_inputs(self, tmp_path: Path, count: int = 3) -> Path:
        directory = tmp_path / "inputs"
        directory.mkdir()
        for index in range(count):
            save_token_file(
                generate_power_law_tokens(
                    0.7, n_tokens=40, sample_size=4_000, rng=10 + index
                ),
                directory / f"dataset{index}.txt",
            )
        return directory

    def test_directory_embedding_round_trip(self, tmp_path, capsys):
        inputs = self._make_inputs(tmp_path)
        out_dir = tmp_path / "out"
        secret_dir = tmp_path / "secrets"
        exit_code = main(
            [
                "--json",
                "generate",
                str(inputs),
                str(out_dir),
                str(secret_dir),
                "--seed",
                "5",
                "--workers",
                "1",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["datasets"] == 3
        assert len(payload["files"]) == 3
        # Every watermarked file must verify against its own secret file.
        for index in range(3):
            name = f"dataset{index}.txt"
            assert (out_dir / name).exists()
            secret = WatermarkSecret.load(secret_dir / (name + ".json"))
            exit_code = main(
                ["detect", str(out_dir / name), str(secret_dir / (name + ".json"))]
            )
            assert exit_code == 0
            assert len(secret.pairs) > 0
        capsys.readouterr()

    def test_directory_embedding_plain_report(self, tmp_path, capsys):
        inputs = self._make_inputs(tmp_path, count=2)
        exit_code = main(
            [
                "generate",
                str(inputs),
                str(tmp_path / "out"),
                str(tmp_path / "secrets"),
                "--seed",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "datasets" in output and "pairs" in output

    def test_directory_with_chunk_size_errors(self, tmp_path, capsys):
        inputs = self._make_inputs(tmp_path, count=1)
        exit_code = main(
            [
                "generate",
                str(inputs),
                str(tmp_path / "out"),
                str(tmp_path / "secrets"),
                "--chunk-size",
                "100",
            ]
        )
        assert exit_code == 2  # ReproError -> CLI error exit

    def test_empty_directory_errors(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        exit_code = main(
            ["generate", str(empty), str(tmp_path / "out"), str(tmp_path / "secrets")]
        )
        assert exit_code == 2

    def test_directory_embedding_uses_distinct_secrets(self, tmp_path):
        # Security regression guard: a seeded batch run must NOT hand
        # every file the same secret R (one recipient's secret list
        # would expose everyone else's watermark), while staying
        # reproducible per (seed, file name).
        inputs = self._make_inputs(tmp_path)
        for run in ("first", "second"):
            exit_code = main(
                [
                    "generate",
                    str(inputs),
                    str(tmp_path / run / "out"),
                    str(tmp_path / run / "secrets"),
                    "--seed",
                    "5",
                ]
            )
            assert exit_code == 0
        first = [
            WatermarkSecret.load(path)
            for path in sorted((tmp_path / "first" / "secrets").iterdir())
        ]
        second = [
            WatermarkSecret.load(path)
            for path in sorted((tmp_path / "second" / "secrets").iterdir())
        ]
        assert len({secret.secret for secret in first}) == len(first)
        assert [s.secret for s in first] == [s.secret for s in second]
