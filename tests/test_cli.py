"""Unit tests for the ``freqywm`` command line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.core.secrets import WatermarkSecret
from repro.datasets.loaders import load_token_file, save_token_file
from repro.datasets.synthetic import generate_power_law_tokens


@pytest.fixture()
def token_file(tmp_path) -> Path:
    path = tmp_path / "tokens.txt"
    tokens = generate_power_law_tokens(0.7, n_tokens=50, sample_size=6_000, rng=3)
    save_token_file(tokens, path)
    return path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["synth", "out.txt", "--alpha", "0.7"])
        assert args.command == "synth"
        assert args.alpha == 0.7

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerateDetect:
    def test_generate_then_detect_roundtrip(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        exit_code = main(
            [
                "generate",
                str(token_file),
                str(watermarked),
                str(secret),
                "--modulus",
                "31",
                "--seed",
                "7",
            ]
        )
        assert exit_code == 0
        assert watermarked.exists() and secret.exists()
        WatermarkSecret.load(secret)  # parses
        output = capsys.readouterr().out
        assert "selected_pairs" in output

        exit_code = main(["detect", str(watermarked), str(secret)])
        assert exit_code == 0
        assert "accepted" in capsys.readouterr().out

    def test_detect_fails_on_unrelated_data(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        unrelated = tmp_path / "unrelated.txt"
        save_token_file([f"other-{i}" for i in range(500)], unrelated)
        exit_code = main(["detect", str(unrelated), str(secret)])
        assert exit_code == 1

    def test_json_output(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        exit_code = main(
            [
                "--json",
                "generate",
                str(token_file),
                str(watermarked),
                str(secret),
                "--modulus",
                "31",
                "--seed",
                "7",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["selected_pairs"] >= 1


class TestAttackAndSynth:
    def test_sampling_attack_command(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        exit_code = main(
            [
                "attack",
                str(watermarked),
                str(secret),
                "--kind",
                "sampling",
                "--fraction",
                "0.5",
                "--threshold",
                "4",
                "--seed",
                "3",
            ]
        )
        output = capsys.readouterr().out
        assert "attack" in output
        assert exit_code in (0, 1)

    def test_destroy_attack_command(self, token_file, tmp_path, capsys):
        watermarked = tmp_path / "watermarked.txt"
        secret = tmp_path / "secret.json"
        main(["generate", str(token_file), str(watermarked), str(secret), "--modulus", "31", "--seed", "7"])
        exit_code = main(
            [
                "attack",
                str(watermarked),
                str(secret),
                "--kind",
                "destroy-percent",
                "--percent",
                "1.0",
                "--threshold",
                "10",
                "--seed",
                "3",
            ]
        )
        assert exit_code in (0, 1)
        assert "destroy-percentage-within-bounds" in capsys.readouterr().out

    def test_synth_command(self, tmp_path, capsys):
        output_path = tmp_path / "synthetic.txt"
        exit_code = main(
            ["synth", str(output_path), "--alpha", "0.5", "--tokens", "40", "--size", "2000", "--seed", "2"]
        )
        assert exit_code == 0
        tokens = load_token_file(output_path)
        assert len(tokens) == 2000
        assert "alpha" in capsys.readouterr().out
