"""Unit tests for the re-watermarking attack and the robustness harness."""

from __future__ import annotations

import pytest

from repro.attacks.evaluation import RobustnessEvaluator
from repro.attacks.rewatermark import RewatermarkAttack
from repro.core.config import DetectionConfig, GenerationConfig


@pytest.fixture(scope="module")
def rewatermark_outcome(watermarked_bundle):
    result, _ = watermarked_bundle
    attack = RewatermarkAttack(
        GenerationConfig(budget_percent=2.0, modulus_cap=131), rng=777
    )
    return attack.run(
        result.watermarked_histogram,
        result.secret,
        detection=DetectionConfig(pair_threshold=0),
    ), result


class TestRewatermarkAttack:
    def test_owner_watermark_survives_in_attacker_version(self, rewatermark_outcome):
        outcome, _owner = rewatermark_outcome
        # The paper reports ~92% survival at t = 0 on its 1 000-token
        # workload; at test scale the attacker's modifications touch a much
        # larger share of the (120-token) space, so we assert the weaker
        # invariant that the owner's watermark remains detectable.
        assert outcome.owner_pair_survival > 0.5
        assert outcome.owner_on_attacker_data.accepted

    def test_attacker_modified_pairs_do_not_verify_on_owner_version(
        self, rewatermark_outcome
    ):
        # The attacker's pairs that actually needed a frequency change were,
        # by construction, misaligned in the owner's earlier version. (Pairs
        # the attacker got "for free" — already aligned by chance — do
        # verify there; that ambiguity is what the registry tie-break in the
        # judge protocol exists for.)
        outcome, _owner = rewatermark_outcome
        assert outcome.attacker_modified_pair_survival_on_owner < 0.5
        assert 0.0 <= outcome.attacker_on_owner_data.accepted_fraction <= 1.0

    def test_dispute_resolution_via_registry_chronology(self, rewatermark_outcome):
        from repro.dispute.judge import Judge, OwnershipClaim
        from repro.dispute.registry import WatermarkRegistry

        outcome, owner_result = rewatermark_outcome
        registry = WatermarkRegistry()
        # The owner registered its watermark when it published the dataset;
        # the pirate can only register (if at all) afterwards.
        registry.register("owner", owner_result.secret)
        registry.register("pirate", outcome.attacker_result.secret)
        judge = Judge(DetectionConfig(pair_threshold=1), registry=registry)
        verdict = judge.arbitrate(
            [
                OwnershipClaim(
                    "owner", owner_result.secret, owner_result.watermarked_histogram
                ),
                OwnershipClaim(
                    "pirate",
                    outcome.attacker_result.secret,
                    outcome.attacker_result.watermarked_histogram,
                ),
            ]
        )
        assert verdict.winner == "owner"

    def test_attacker_detects_its_own_watermark(self, rewatermark_outcome):
        outcome, _owner = rewatermark_outcome
        from repro.core.detector import WatermarkDetector

        attacker_detection = WatermarkDetector(
            outcome.attacker_result.secret, DetectionConfig(pair_threshold=0)
        ).detect(outcome.attacker_result.watermarked_histogram)
        assert attacker_detection.accepted

    def test_attacker_used_a_fresh_secret(self, rewatermark_outcome):
        outcome, owner_result = rewatermark_outcome
        assert outcome.attacker_result.secret.secret != owner_result.secret.secret


class TestRobustnessEvaluator:
    def test_full_report_structure(self, skewed_histogram):
        evaluator = RobustnessEvaluator(
            GenerationConfig(budget_percent=2.0, modulus_cap=61), rng=5
        )
        report = evaluator.evaluate(
            skewed_histogram,
            sampling_fractions=(0.5,),
            sampling_thresholds=(0, 4),
            destroy_thresholds=(0, 4),
            reordering_percents=(10, 50),
            repetitions=1,
        )
        assert report.watermark.pair_count > 0
        assert len(report.sampling) == 2
        assert set(report.destroy_threshold_sweeps) == {
            "no-attack",
            "random-within-bounds",
            "percentage-within-bounds",
        }
        assert set(report.reordering_success) == {10.0, 50.0}
        assert report.rewatermark is not None
        assert report.rewatermark.owner_pair_survival > 0.6
        assert report.rewatermark.owner_on_attacker_data.accepted

    def test_report_emits_timings_and_cache_stats(self, skewed_histogram):
        evaluator = RobustnessEvaluator(
            GenerationConfig(budget_percent=2.0, modulus_cap=61), rng=5
        )
        report = evaluator.evaluate(
            skewed_histogram,
            sampling_fractions=(0.5,),
            sampling_thresholds=(0, 4),
            destroy_thresholds=(0, 4),
            reordering_percents=(10,),
            repetitions=1,
        )
        families = {
            "sampling",
            "destroy-no-attack",
            "destroy-random-within-bounds",
            "destroy-percentage-within-bounds",
            "destroy-reordering",
            "rewatermark",
        }
        assert set(report.attack_seconds) == families
        assert all(seconds >= 0.0 for seconds in report.attack_seconds.values())
        assert set(report.attack_cache_deltas) == families
        # The shared cache means later families run construction-free.
        assert report.attack_cache_deltas["destroy-reordering"]["misses"] == 0
        assert report.detector_cache is not None
        assert report.detector_cache.hits > 0
        records = report.records()
        assert [row["attack_family"] for row in records] == [
            "sampling",
            "destroy-no-attack",
            "destroy-random-within-bounds",
            "destroy-percentage-within-bounds",
            "destroy-reordering",
            "rewatermark",
        ]
        total_misses = sum(row["cache_misses"] for row in records)
        assert total_misses == report.detector_cache.misses

    def test_records_render_as_markdown(self, skewed_histogram):
        from repro.experiments.report import render_evaluator_records

        evaluator = RobustnessEvaluator(
            GenerationConfig(budget_percent=2.0, modulus_cap=61), rng=5
        )
        report = evaluator.evaluate(
            skewed_histogram,
            sampling_fractions=(0.5,),
            sampling_thresholds=(0,),
            destroy_thresholds=(0,),
            reordering_percents=(10,),
            repetitions=1,
            include_rewatermark=False,
        )
        table = render_evaluator_records(report.records())
        assert table.startswith("| attack_family |")
        assert "destroy-reordering" in table

    def test_rewatermark_can_be_skipped(self, skewed_histogram):
        evaluator = RobustnessEvaluator(
            GenerationConfig(budget_percent=2.0, modulus_cap=61), rng=5
        )
        report = evaluator.evaluate(
            skewed_histogram,
            sampling_fractions=(0.5,),
            sampling_thresholds=(0,),
            destroy_thresholds=(0,),
            reordering_percents=(10,),
            include_rewatermark=False,
            repetitions=1,
        )
        assert report.rewatermark is None


class TestDetectorReuse:
    """Satellite regression: cached/prebuilt detectors change no verdict."""

    def test_shared_cache_run_matches_default_run(self, watermarked_bundle):
        from repro.core.cache import DetectorCache

        result, _ = watermarked_bundle
        config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
        detection = DetectionConfig(pair_threshold=0)
        baseline = RewatermarkAttack(config, rng=777).run(
            result.watermarked_histogram, result.secret, detection=detection
        )
        cache = DetectorCache(capacity=None)
        cached = RewatermarkAttack(config, rng=777, detector_cache=cache).run(
            result.watermarked_histogram, result.secret, detection=detection
        )
        assert cached.owner_on_attacker_data == baseline.owner_on_attacker_data
        assert cached.attacker_on_owner_data == baseline.attacker_on_owner_data
        assert cached.owner_pair_survival == baseline.owner_pair_survival
        # Only the owner's detector goes through the shared cache; the
        # attacker's freshly sampled secret is constructed directly so
        # repeated simulations never accumulate dead cache entries.
        assert cache.stats().misses == 1
        assert len(cache) == 1

    def test_prebuilt_owner_detector_matches(self, watermarked_bundle):
        from repro.core.detector import WatermarkDetector

        result, _ = watermarked_bundle
        config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
        detection = DetectionConfig(pair_threshold=0)
        baseline = RewatermarkAttack(config, rng=778).run(
            result.watermarked_histogram, result.secret, detection=detection
        )
        prebuilt = WatermarkDetector(result.secret, detection)
        with_detector = RewatermarkAttack(config, rng=778).run(
            result.watermarked_histogram,
            result.secret,
            detection=detection,
            owner_detector=prebuilt,
        )
        assert (
            with_detector.owner_on_attacker_data == baseline.owner_on_attacker_data
        )
        assert (
            with_detector.attacker_on_owner_data == baseline.attacker_on_owner_data
        )


class TestAttackRunDetectorReuse:
    def test_base_attack_accepts_prebuilt_and_cached_detector(self, watermarked_bundle):
        from repro.attacks.sampling import SamplingAttack
        from repro.core.cache import DetectorCache
        from repro.core.detector import WatermarkDetector

        result, _ = watermarked_bundle
        detection = DetectionConfig(pair_threshold=2)
        baseline = SamplingAttack(0.5, rng=9).run(
            result.watermarked_histogram, result.secret, detection
        )
        prebuilt = WatermarkDetector(result.secret, detection)
        via_detector = SamplingAttack(0.5, rng=9).run(
            result.watermarked_histogram, detector=prebuilt
        )
        cache = DetectorCache()
        via_cache = SamplingAttack(0.5, rng=9).run(
            result.watermarked_histogram,
            result.secret,
            detection,
            detector_cache=cache,
        )
        assert via_detector.detection == baseline.detection
        assert via_cache.detection == baseline.detection
        assert cache.stats().misses == 1
