"""Unit tests for watermark detection (Algorithm II)."""

from __future__ import annotations

import pytest

from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector, detect_watermark
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import DetectionError


class TestDetectionOnWatermarkedData:
    def test_all_pairs_verify_at_zero_threshold(self, watermarked_bundle):
        result, _ = watermarked_bundle
        detection = detect_watermark(result.watermarked_histogram, result.secret)
        assert detection.accepted
        assert detection.accepted_pairs == detection.total_pairs == result.pair_count
        assert detection.accepted_fraction == 1.0

    def test_evidence_per_pair(self, watermarked_bundle):
        result, _ = watermarked_bundle
        detection = detect_watermark(result.watermarked_histogram, result.secret)
        assert len(detection.evidence) == result.pair_count
        for evidence in detection.evidence:
            assert evidence.present
            assert evidence.remainder == 0
            assert evidence.accepted

    def test_detection_from_raw_tokens(self, skewed_tokens):
        from repro.core.generator import generate_watermark

        result = generate_watermark(skewed_tokens, modulus_cap=31, rng=13)
        detection = detect_watermark(result.watermarked_tokens, result.secret)
        assert detection.accepted

    def test_summary(self, watermarked_bundle):
        result, _ = watermarked_bundle
        summary = detect_watermark(result.watermarked_histogram, result.secret).summary()
        assert summary["accepted"] is True
        assert summary["total_pairs"] == result.pair_count


class TestDetectionOnUnrelatedData:
    def test_original_data_mostly_rejected(self, watermarked_bundle):
        result, original = watermarked_bundle
        detection = detect_watermark(original, result.secret, pair_threshold=0)
        # The unwatermarked original should verify far fewer pairs than the
        # watermarked version (a few may align by chance).
        assert detection.accepted_pairs < result.pair_count
        assert detection.accepted_fraction < 0.5

    def test_different_token_space_rejected(self, watermarked_bundle):
        result, _ = watermarked_bundle
        unrelated = TokenHistogram.from_counts({f"other-{i}": 100 + i for i in range(50)})
        detection = detect_watermark(unrelated, result.secret)
        assert not detection.accepted
        assert detection.accepted_pairs == 0
        assert all(not evidence.present for evidence in detection.evidence)

    def test_missing_pair_tokens_fail_that_pair(self, watermarked_bundle):
        result, _ = watermarked_bundle
        pair = result.secret.pairs[0]
        counts = result.watermarked_histogram.as_dict()
        counts.pop(pair.first)
        detection = detect_watermark(TokenHistogram.from_counts(counts), result.secret)
        missing = [e for e in detection.evidence if e.pair == pair]
        assert len(missing) == 1 and not missing[0].present and not missing[0].accepted


class TestThresholds:
    def test_threshold_t_tolerates_small_perturbation(self, watermarked_bundle):
        result, _ = watermarked_bundle
        pair = result.secret.pairs[0]
        perturbed = result.watermarked_histogram.with_updates({pair.first: +1})
        strict = detect_watermark(perturbed, result.secret, pair_threshold=0)
        relaxed = detect_watermark(perturbed, result.secret, pair_threshold=1)
        assert relaxed.accepted_pairs >= strict.accepted_pairs
        assert relaxed.accepted_pairs == result.pair_count

    def test_symmetric_tolerance_catches_negative_residue(self, watermarked_bundle):
        result, _ = watermarked_bundle
        pair = result.secret.pairs[0]
        # Reducing the difference by one puts the remainder at modulus - 1.
        perturbed = result.watermarked_histogram.with_updates({pair.first: -1})
        asymmetric = WatermarkDetector(
            result.secret, DetectionConfig(pair_threshold=1)
        ).detect(perturbed)
        symmetric = WatermarkDetector(
            result.secret, DetectionConfig(pair_threshold=1, symmetric_tolerance=True)
        ).detect(perturbed)
        assert symmetric.accepted_pairs >= asymmetric.accepted_pairs

    def test_min_accepted_pairs_k(self, watermarked_bundle):
        result, original = watermarked_bundle
        lenient = detect_watermark(
            original, result.secret, pair_threshold=0, min_accepted_pairs=1
        )
        strict = detect_watermark(
            original, result.secret, pair_threshold=0, min_accepted_pairs=result.pair_count
        )
        assert not strict.accepted
        # With k=1 even chance alignments may be enough; just check the
        # required_pairs bookkeeping resolved correctly.
        assert lenient.required_pairs == 1
        assert strict.required_pairs == result.pair_count

    def test_fractional_threshold(self, watermarked_bundle):
        result, _ = watermarked_bundle
        detection = detect_watermark(
            result.watermarked_histogram,
            result.secret,
            pair_threshold_fraction=0.5,
        )
        assert detection.accepted
        for evidence in detection.evidence:
            assert evidence.threshold == evidence.modulus // 2


class TestReconfigured:
    """Threshold-sweep clones reuse moduli but match fresh construction."""

    @pytest.mark.parametrize(
        "config",
        [
            None,
            DetectionConfig(pair_threshold=2),
            DetectionConfig(pair_threshold=4, min_accepted_fraction=0.3),
            DetectionConfig(pair_threshold_fraction=0.1),
            DetectionConfig(pair_threshold=1, symmetric_tolerance=True),
        ],
    )
    def test_matches_fresh_construction(self, watermarked_bundle, config):
        result, _ = watermarked_bundle
        base = WatermarkDetector(result.secret, DetectionConfig(pair_threshold=0))
        clone = base.reconfigured(config)
        fresh = WatermarkDetector(result.secret, config)
        for suspect in (result.watermarked_histogram, result.original_histogram):
            assert clone.detect(suspect, collect_evidence=True) == fresh.detect(
                suspect, collect_evidence=True
            )
        assert clone.fingerprint == fresh.fingerprint
        assert clone.config == fresh.config

    def test_shares_moduli_without_rederivation(self, watermarked_bundle):
        result, _ = watermarked_bundle
        base = WatermarkDetector(result.secret)
        clone = base.reconfigured(DetectionConfig(pair_threshold=3))
        _firsts, _seconds, base_moduli, _ = base.pair_components()
        _firsts, _seconds, clone_moduli, _ = clone.pair_components()
        assert clone_moduli is base_moduli  # shared array, not recomputed

    def test_base_detector_is_untouched(self, watermarked_bundle):
        result, _ = watermarked_bundle
        base = WatermarkDetector(result.secret, DetectionConfig(pair_threshold=0))
        before = base.detect(result.watermarked_histogram)
        base.reconfigured(DetectionConfig(pair_threshold=7))
        assert base.detect(result.watermarked_histogram) == before
        assert base.config.pair_threshold == 0


class TestErrors:
    def test_pairs_with_degenerate_modulus_never_verify(self, watermarked_bundle):
        # A forged secret can contain pairs whose derived modulus is 0 or 1
        # (the generator never selects those); detection must treat them as
        # unverifiable rather than crashing or trivially accepting them.
        result, _ = watermarked_bundle
        histogram = result.watermarked_histogram
        tokens = histogram.tokens
        forged_pairs = [
            WatermarkSecret.build([(tokens[i], tokens[i + 1])], secret=s, modulus_cap=2)
            for i, s in ((0, 1), (2, 5), (4, 9))
        ]
        for forged in forged_pairs:
            detection = WatermarkDetector(
                forged, DetectionConfig(pair_threshold=10)
            ).detect(histogram)
            for evidence in detection.evidence:
                if evidence.modulus < 2:
                    assert not evidence.accepted
                    assert evidence.remainder is None

    def test_empty_secret_rejected(self):
        secret = WatermarkSecret.build([("a", "b")], secret=1, modulus_cap=10)
        empty = WatermarkSecret(pairs=(), secret=1, modulus_cap=10)
        with pytest.raises(DetectionError):
            WatermarkDetector(empty)
        # Sanity: a non-empty secret constructs fine.
        WatermarkDetector(secret)
