"""Golden parity tests: the vectorized engine versus the seed dict paths.

The array engine (array-backed :class:`TokenHistogram`, the incremental
:class:`SimilarityTracker`, the cached/vectorized detector and the
tracker-based knapsack) must produce *identical* generation and detection
outcomes to the seed implementation preserved in
:mod:`repro.core.reference`. These property-based tests drive both paths
over randomized histograms and adversarial edge cases (empty data,
all-equal frequencies, missing pair tokens) and assert exact agreement.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch import detect_many
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector
from repro.core.eligibility import generate_eligible_pairs
from repro.core.histogram import TokenBoundaries, TokenHistogram
from repro.core.knapsack import select_within_budget
from repro.core.matching import vertex_disjoint
from repro.core.reference import detect_reference, select_within_budget_reference
from repro.core.similarity import (
    SimilarityTracker,
    available_metrics,
    histogram_similarity,
)
from repro.exceptions import HistogramError

import backend_harness as harness

SECRET = 0xFEEDFACE
Z = 61

_settings = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_counts = st.dictionaries(
    keys=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=10
    ),
    values=st.integers(min_value=1, max_value=50_000),
    min_size=2,
    max_size=25,
)


class TestHistogramParity:
    @_settings
    @given(counts=_counts)
    def test_ordering_matches_dict_sort(self, counts):
        histogram = TokenHistogram.from_counts(counts)
        expected = sorted(counts, key=lambda token: (-counts[token], token))
        assert list(histogram.tokens) == expected
        assert histogram.frequencies() == tuple(counts[token] for token in expected)
        assert histogram.as_dict() == counts

    @_settings
    @given(counts=_counts)
    def test_boundaries_match_seed_definition(self, counts):
        histogram = TokenHistogram.from_counts(counts)
        order = list(histogram.tokens)
        bounds = histogram.boundaries()
        for index, token in enumerate(order):
            frequency = counts[token]
            if index == 0:
                assert math.isinf(bounds[token].upper)
            else:
                assert bounds[token].upper == float(counts[order[index - 1]] - frequency)
            if index == len(order) - 1:
                assert bounds[token].lower == frequency
            else:
                assert bounds[token].lower == frequency - counts[order[index + 1]]

    @_settings
    @given(counts=_counts, factor=st.floats(min_value=0.01, max_value=10.0))
    def test_scaled_matches_dict_rounding(self, counts, factor):
        histogram = TokenHistogram.from_counts(counts)
        scaled = histogram.scaled(factor)
        expected = {
            token: max(1, int(round(count * factor))) for token, count in counts.items()
        }
        assert scaled.as_dict() == expected

    def test_empty_histogram_rejected(self):
        with pytest.raises(HistogramError):
            TokenHistogram({})
        with pytest.raises(HistogramError):
            TokenHistogram.from_tokens([])

    def test_all_equal_frequencies_have_zero_slack_and_no_eligible_pairs(self):
        histogram = TokenHistogram.from_counts({f"t{i}": 500 for i in range(8)})
        slack = histogram.arrays().slack()
        # Every token but the last has zero slack (equal neighbours).
        assert list(slack[:-1]) == [0] * 7
        assert generate_eligible_pairs(histogram, SECRET, Z) == []


class TestSimilarityTrackerParity:
    @_settings
    @given(
        counts=_counts,
        deltas=st.lists(
            st.tuples(st.integers(0, 24), st.integers(-30, 30)), max_size=12
        ),
        metric=st.sampled_from(sorted(available_metrics())),
    )
    def test_incremental_matches_full_recompute(self, counts, deltas, metric):
        histogram = TokenHistogram.from_counts(counts)
        tokens = list(histogram.tokens)
        tracker = SimilarityTracker(histogram, metric=metric)
        current = dict(histogram.as_dict())
        for token_index, delta in deltas:
            token = tokens[token_index % len(tokens)]
            if current.get(token, 0) + delta < 0:
                continue
            peeked = tracker.peek({token: delta})
            applied = tracker.apply({token: delta})
            current[token] = current.get(token, 0) + delta
            assert applied == peeked
            full = histogram_similarity(histogram.as_dict(), current, metric=metric)
            assert applied == pytest.approx(full, abs=1e-12)

    def test_negative_counts_rejected_like_with_updates(self):
        tracker = SimilarityTracker({"a": 3, "b": 1})
        with pytest.raises(HistogramError):
            tracker.peek({"a": -4})
        with pytest.raises(HistogramError):
            tracker.apply({"missing": -1})

    def test_identical_state_is_exactly_one(self):
        tracker = SimilarityTracker({"a": 7, "b": 7})
        assert tracker.similarity() == 1.0
        tracker.apply({"a": 2})
        tracker.apply({"a": -2})
        assert tracker.similarity() == 1.0

    def test_custom_metric_registered_under_builtin_name_is_honoured(self):
        from repro.core.similarity import cosine_similarity, register_metric

        register_metric("cosine", lambda left, right: 0.25)
        try:
            tracker = SimilarityTracker({"a": 10, "b": 4}, metric="cosine")
            tracker.apply({"a": 1})
            # The override, not the built-in incremental formula, decides.
            assert tracker.similarity() == 0.25
            assert tracker.peek({"b": 1}) == 0.25
        finally:
            register_metric("cosine", cosine_similarity)
        tracker = SimilarityTracker({"a": 10, "b": 4}, metric="cosine")
        tracker.apply({"a": 1})
        assert tracker.similarity() == pytest.approx(
            histogram_similarity({"a": 10, "b": 4}, {"a": 11, "b": 4})
        )


class TestSelectionParity:
    @_settings
    @given(
        counts=_counts,
        budget=st.sampled_from([0.0, 0.05, 0.5, 2.0, 10.0, 100.0]),
        metric=st.sampled_from(sorted(available_metrics())),
    )
    def test_budget_selection_matches_reference(self, counts, budget, metric):
        histogram = TokenHistogram.from_counts(counts)
        candidates = vertex_disjoint(generate_eligible_pairs(histogram, SECRET, Z))
        engine = select_within_budget(histogram, candidates, budget, metric=metric)
        reference = select_within_budget_reference(
            histogram, candidates, budget, metric=metric
        )
        assert engine.selected == reference.selected
        assert engine.adjustments == reference.adjustments
        assert engine.rejected == reference.rejected
        assert engine.similarity_percent == pytest.approx(
            reference.similarity_percent, abs=1e-9
        )

    @_settings
    @given(counts=_counts, max_pairs=st.integers(min_value=1, max_value=5))
    def test_max_pairs_cap_matches_reference(self, counts, max_pairs):
        histogram = TokenHistogram.from_counts(counts)
        candidates = vertex_disjoint(generate_eligible_pairs(histogram, SECRET, Z))
        engine = select_within_budget(histogram, candidates, 5.0, max_pairs=max_pairs)
        reference = select_within_budget_reference(
            histogram, candidates, 5.0, max_pairs=max_pairs
        )
        assert engine.selected == reference.selected
        assert engine.rejected == reference.rejected


class TestDetectionParity:
    @_settings
    @given(
        counts=_counts,
        noise=st.lists(st.tuples(st.integers(0, 24), st.integers(-5, 5)), max_size=8),
        threshold=st.integers(min_value=0, max_value=3),
        symmetric=st.booleans(),
    )
    def test_detect_matches_reference(self, counts, noise, threshold, symmetric):
        case = harness.build_watermarked_case(counts)
        if case is None:
            return
        histogram, secret = case
        # Perturb the histogram (dropping tokens is allowed) to exercise
        # missing-pair-token and near-threshold paths.
        deltas = {}
        tokens = list(histogram.tokens)
        for token_index, delta in noise:
            token = tokens[token_index % len(tokens)]
            deltas[token] = delta
        suspected = harness.perturbed(histogram, deltas)
        config = DetectionConfig(
            pair_threshold=threshold, symmetric_tolerance=symmetric
        )
        # The harness checks the engine against the reference dict loop —
        # verdict, counts and evidence — on every available backend.
        harness.assert_detection_parity(suspected, secret, config)

    def test_missing_pair_tokens_fail_that_pair(self):
        histogram = TokenHistogram.from_counts({"a": 900, "b": 500, "c": 200, "d": 40})
        candidates = vertex_disjoint(generate_eligible_pairs(histogram, SECRET, Z))
        if not candidates:
            pytest.skip("no eligible pairs for this secret")
        from repro.core.secrets import WatermarkSecret

        secret = WatermarkSecret.build([candidates[0].pair], SECRET, Z)
        removed = {token: -histogram.frequency(token) for token in [candidates[0].pair.first]}
        suspected = histogram.with_updates(removed)
        engine = WatermarkDetector(secret).detect(suspected)
        reference = detect_reference(suspected, secret)
        assert engine.evidence == reference.evidence
        assert not engine.evidence[0].present
        assert engine.evidence[0].remainder is None


class TestBatchDetectionParity:
    @_settings
    @given(counts=_counts, batch=st.integers(min_value=1, max_value=6))
    def test_detect_many_matches_per_dataset_detect(self, counts, batch):
        case = harness.build_watermarked_case(counts)
        if case is None:
            return
        histogram, secret = case
        suspects = [histogram.scaled(1.0 + 0.1 * index) for index in range(batch)]
        # Harness: detect_many (and the in-process chunked pool path)
        # against the reference loop, per dataset, on every backend.
        harness.assert_batch_parity(suspects, secret, chunk_size=max(1, batch // 2))

    def test_detect_many_empty_batch(self):
        from repro.core.secrets import WatermarkSecret
        from repro.core.tokens import TokenPair

        secret = WatermarkSecret.build([TokenPair("a", "b")], SECRET, Z)
        report = detect_many([], secret)
        assert len(report) == 0
        assert report.accepted_count == 0

    def test_detect_many_accepts_raw_sequences_and_histograms(self):
        tokens = ["a"] * 300 + ["b"] * 120 + ["c"] * 50
        histogram = TokenHistogram.from_tokens(tokens)
        candidates = vertex_disjoint(generate_eligible_pairs(histogram, SECRET, 7))
        if not candidates:
            pytest.skip("no eligible pairs for this secret")
        from repro.core.secrets import WatermarkSecret

        secret = WatermarkSecret.build([candidates[0].pair], SECRET, 7)
        report = detect_many([tokens, histogram], secret)
        assert report.results[0].accepted_pairs == report.results[1].accepted_pairs


class TestTokenBoundariesRegression:
    def test_unbounded_upper_is_explicit(self):
        top = TokenBoundaries(upper=math.inf, lower=10)
        assert top.unbounded_upper
        # The unbounded upper never limits a change; the lower boundary does.
        assert top.allows_change(10)
        assert not top.allows_change(11)
        # Magnitudes beyond float precision must not be waved through by
        # an implicit float comparison.
        assert not top.allows_change(2**60)

    def test_finite_boundaries_compare_as_integers(self):
        bounds = TokenBoundaries(upper=float(2**53), lower=2**53 + 1)
        assert not bounds.unbounded_upper
        assert bounds.allows_change(2**53)
        assert not bounds.allows_change(2**53 + 1)

    def test_top_token_boundary_from_histogram(self):
        histogram = TokenHistogram.from_counts({"big": 1000, "small": 10})
        bounds = histogram.boundaries()
        assert bounds["big"].unbounded_upper
        assert bounds["big"].allows_change(990)
        assert not bounds["big"].allows_change(991)
