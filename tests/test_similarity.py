"""Unit tests for histogram similarity metrics and ranking helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.similarity import (
    align_frequencies,
    available_metrics,
    cosine_similarity,
    distortion_percent,
    get_metric,
    histogram_similarity,
    jaccard_similarity,
    kl_divergence,
    l1_similarity,
    l2_similarity,
    rank_changes,
    ranking,
    ranking_preserved,
    register_metric,
    similarity_percent,
)


class TestAlignment:
    def test_union_of_tokens_with_zero_fill(self):
        left, right = align_frequencies({"a": 3, "b": 1}, {"b": 2, "c": 5})
        assert left.tolist() == [3.0, 1.0, 0.0]
        assert right.tolist() == [0.0, 2.0, 5.0]

    def test_deterministic_order(self):
        first = align_frequencies({"b": 1, "a": 2}, {"a": 2, "b": 1})
        second = align_frequencies({"a": 2, "b": 1}, {"b": 1, "a": 2})
        assert np.array_equal(first[0], second[0])


class TestMetricValues:
    def test_identical_histograms_have_similarity_one(self):
        counts = {"a": 10, "b": 3}
        for metric in available_metrics():
            assert histogram_similarity(counts, counts, metric=metric) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_cosine_zero_vectors(self):
        assert cosine_similarity(np.zeros(2), np.zeros(2)) == 1.0
        assert cosine_similarity(np.zeros(2), np.array([1.0, 0.0])) == 0.0

    def test_l1_similarity_disjoint(self):
        assert l1_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_l2_similarity_in_unit_interval(self):
        value = l2_similarity(np.array([5.0, 1.0]), np.array([4.0, 2.0]))
        assert 0.0 < value < 1.0

    def test_jaccard(self):
        value = jaccard_similarity(np.array([2.0, 2.0]), np.array([1.0, 3.0]))
        assert value == pytest.approx((1 + 2) / (2 + 3))

    def test_kl_divergence_zero_for_identical(self):
        assert kl_divergence(np.array([2.0, 3.0]), np.array([2.0, 3.0])) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_kl_divergence_positive(self):
        assert kl_divergence(np.array([9.0, 1.0]), np.array([5.0, 5.0])) > 0.0


class TestRegistry:
    def test_get_metric_case_insensitive(self):
        assert get_metric("COSINE") is cosine_similarity

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            get_metric("no-such-metric")

    def test_register_custom_metric(self):
        register_metric("always-half", lambda left, right: 0.5)
        assert histogram_similarity({"a": 1}, {"a": 2}, metric="always-half") == 0.5


class TestPercentHelpers:
    def test_similarity_and_distortion_sum_to_100(self):
        original = {"a": 100, "b": 50}
        other = {"a": 90, "b": 60}
        assert similarity_percent(original, other) + distortion_percent(
            original, other
        ) == pytest.approx(100.0)

    def test_small_change_small_distortion(self):
        original = {f"t{i}": 1000 - i for i in range(100)}
        modified = dict(original)
        modified["t0"] += 1
        assert distortion_percent(original, modified) < 0.01


class TestRanking:
    def test_ranking_descending(self):
        assert ranking({"a": 1, "b": 5, "c": 3}) == ("b", "c", "a")

    def test_rank_changes_counts_moved_tokens(self):
        original = {"a": 5, "b": 4, "c": 3}
        swapped = {"a": 5, "b": 3, "c": 4}
        assert rank_changes(original, swapped) == 2

    def test_rank_changes_token_missing_counts_as_changed(self):
        assert rank_changes({"a": 5, "b": 1}, {"a": 5}) >= 1

    def test_ranking_preserved_allows_ties(self):
        # "b" catches up to "c" in count; the non-increasing order survives
        # but the exact rank permutation changes (tie broken lexicographically).
        original = {"a": 10, "c": 8, "b": 5}
        tied = {"a": 10, "c": 8, "b": 8}
        assert ranking_preserved(original, tied)
        assert not ranking_preserved(original, tied, strict=True)

    def test_ranking_preserved_detects_inversion(self):
        original = {"a": 10, "b": 8}
        inverted = {"a": 7, "b": 8}
        assert not ranking_preserved(original, inverted)
