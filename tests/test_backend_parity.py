"""Cross-backend differential parity suite.

Hypothesis-driven sweeps over vocabulary sizes, modulus caps, detection
thresholds and chunk boundaries, every case run through the harness in
``backend_harness``: the reference dict implementations, the NumPy
backend, and every other importable backend (always at least the
registered :class:`~backend_harness.MirrorBackend`; CuPy too on GPU
machines) must agree bit for bit — verdicts, evidence vectors,
embedding deltas.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import backend_harness as harness
from repro.core.backend import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector, detector_fingerprint
from repro.core.histogram import TokenHistogram
from repro.exceptions import BackendError

_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_TOKENS = "abcdefghijklmnopqrstuvwxyz0123456789.-"

_counts = st.dictionaries(
    st.text(alphabet=_TOKENS, min_size=1, max_size=8),
    st.integers(min_value=1, max_value=50_000),
    min_size=2,
    max_size=25,
)

_configs = st.builds(
    DetectionConfig,
    pair_threshold=st.integers(min_value=0, max_value=3),
    min_accepted_fraction=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
    symmetric_tolerance=st.booleans(),
)


def _watermarked_case(counts):
    """Build (original, watermarked, secret) or None for vacuous draws."""
    from repro.core.hashing import PairModulusCache
    from repro.core.modification import plan_adjustment

    built = harness.build_watermarked_case(counts)
    if built is None:
        return None
    histogram, secret = built
    moduli = PairModulusCache(secret.secret, secret.modulus_cap)
    deltas: dict = {}
    for pair in secret.pairs:
        adjustment = plan_adjustment(
            histogram.frequency(pair.first),
            histogram.frequency(pair.second),
            moduli.modulus(pair.first, pair.second),
            pair,
        )
        for token, delta in adjustment.as_deltas().items():
            deltas[token] = deltas.get(token, 0) + delta
    watermarked = harness.perturbed(histogram, deltas)
    return histogram, watermarked, secret


class TestBackendRegistry:
    def test_numpy_is_default_and_listed_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert get_backend().name == "numpy"
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_mirror_backend_is_registered_and_available(self):
        assert "mirror" in backend_names()
        assert "mirror" in available_backends()
        assert get_backend("mirror").name == "mirror"

    def test_backend_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("mirror") is get_backend("mirror")
        assert get_backend("numpy") is not get_backend("mirror")

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown"):
            get_backend("tpu-v9")

    def test_cupy_backend_is_registered_but_guarded(self):
        assert "cupy" in backend_names()
        try:
            instance = get_backend("cupy")
        except BackendError as error:
            # No GPU / no CuPy in this environment: the guard must fire
            # with an actionable message, not an ImportError.
            assert "cupy" in str(error).lower()
        else:  # pragma: no cover - GPU machines only
            assert instance.name == "cupy"
            assert "cupy" in available_backends()

    def test_env_variable_selects_backend(self):
        with harness.use_backend("mirror"):
            assert os.environ[BACKEND_ENV_VAR] == "mirror"
            assert get_backend().name == "mirror"
        assert get_backend().name == "numpy"

    def test_env_variable_with_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")
        with pytest.raises(BackendError, match="quantum"):
            get_backend()

    def test_resolve_backend_accepts_none_name_and_instance(self):
        mirror = get_backend("mirror")
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("mirror") is mirror
        assert resolve_backend(mirror) is mirror
        with pytest.raises(BackendError):
            resolve_backend("nope")


class TestKernelParity:
    """Direct kernel-level agreement between every backend and a dict loop."""

    @_settings
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),  # first frequency
                st.integers(min_value=0, max_value=10_000),  # second frequency
                st.integers(min_value=2, max_value=61),  # modulus
                st.integers(min_value=0, max_value=4),  # threshold
                st.booleans(),  # usable modulus (valid)
            ),
            min_size=1,
            max_size=30,
        ),
        symmetric=st.booleans(),
    )
    def test_stacked_modulo_matches_reference_loop(self, rows, symmetric):
        first = np.array([row[0] for row in rows], dtype=np.int64)
        second = np.array([row[1] for row in rows], dtype=np.int64)
        moduli = np.array([row[2] for row in rows], dtype=np.int64)
        thresholds = np.array([row[3] for row in rows], dtype=np.int64)
        valid = np.array([row[4] for row in rows], dtype=bool)
        safe_moduli = np.where(valid, moduli, 1)
        expected_accepted, expected_present, expected_remainder = [], [], []
        for f_i, f_j, modulus, threshold, usable in rows:
            present = f_i > 0 and f_j > 0
            safe = modulus if usable else 1
            remainder = (f_i - f_j) % safe
            residue = min(remainder, safe - remainder) if symmetric else remainder
            expected_accepted.append(present and usable and residue <= threshold)
            expected_present.append(present)
            expected_remainder.append(remainder)
        for backend in harness.parity_backends():
            accepted, present, remainder = backend.stacked_modulo(
                backend.from_host(first),
                backend.from_host(second),
                safe_moduli=backend.from_host(safe_moduli),
                valid=backend.from_host(valid),
                thresholds=backend.from_host(thresholds),
                symmetric_tolerance=symmetric,
            )
            where = f"stacked_modulo diverged on {backend.name!r}"
            assert accepted.tolist() == expected_accepted, where
            assert present.tolist() == expected_present, where
            assert remainder.tolist() == expected_remainder, where

    @_settings
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5_000),
                st.integers(min_value=0, max_value=5_000),
                st.integers(min_value=2, max_value=61),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_plan_deltas_matches_scalar_arithmetic(self, pairs):
        from repro.core.modification import plan_adjustment
        from repro.core.tokens import TokenPair

        ordered = [(max(a, b) + 1, min(a, b), modulus) for a, b, modulus in pairs]
        first = np.array([row[0] for row in ordered], dtype=np.int64)
        second = np.array([row[1] for row in ordered], dtype=np.int64)
        moduli = np.array([row[2] for row in ordered], dtype=np.int64)
        for backend in harness.parity_backends():
            delta_first, delta_second = backend.plan_deltas(first, second, moduli)
            for index, (f_i, f_j, modulus) in enumerate(ordered):
                expected = plan_adjustment(
                    f_i, f_j, modulus, TokenPair(first="hi", second="lo")
                )
                where = f"plan_deltas[{index}] diverged on {backend.name!r}"
                assert delta_first[index] == expected.delta_first, where
                assert delta_second[index] == expected.delta_second, where


class TestDetectionParity:
    @_settings
    @given(counts=_counts, config=_configs)
    def test_watermarked_and_original_verdicts(self, counts, config):
        case = _watermarked_case(counts)
        if case is None:
            return
        original, watermarked, secret = case
        reference = harness.assert_detection_parity(watermarked, secret, config)
        if not config.symmetric_tolerance and config.pair_threshold == 0:
            # The embedding aligned every stored pair, so the strict
            # paper rule must accept the watermarked histogram.
            assert reference.accepted
        harness.assert_detection_parity(original, secret, config)

    @_settings
    @given(counts=_counts, noise=_counts, config=_configs)
    def test_unrelated_data_verdicts(self, counts, noise, config):
        case = _watermarked_case(counts)
        if case is None:
            return
        _, _, secret = case
        harness.assert_detection_parity(TokenHistogram.from_counts(noise), secret, config)


class TestBatchChunkBoundaries:
    @_settings
    @given(
        counts=_counts,
        perturbations=st.lists(
            st.integers(min_value=-3, max_value=3), min_size=1, max_size=9
        ),
        chunk_size=st.integers(min_value=1, max_value=11),
    )
    def test_chunked_batches_match_reference(self, counts, perturbations, chunk_size):
        case = _watermarked_case(counts)
        if case is None:
            return
        original, watermarked, secret = case
        anchor = next(iter(counts))
        suspects = [original, watermarked] + [
            harness.perturbed(watermarked, {anchor: delta})
            for delta in perturbations
        ]
        harness.assert_batch_parity(suspects, secret, chunk_size=chunk_size)


class TestManySecretsParity:
    @_settings
    @given(
        counts=_counts,
        forged_seeds=st.lists(
            st.integers(min_value=1, max_value=2**31), min_size=1, max_size=4
        ),
        config=_configs,
    )
    def test_true_and_forged_secrets(self, counts, forged_seeds, config):
        case = _watermarked_case(counts)
        if case is None:
            return
        _, watermarked, secret = case
        secrets = [secret]
        for seed in forged_seeds:
            forged = harness.build_watermarked_case(
                counts, secret_value=seed, budget=1.5
            )
            if forged is not None:
                secrets.append(forged[1])
        harness.assert_many_secrets_parity(watermarked, secrets, config)


class TestEmbeddingParity:
    @_settings
    @given(counts=_counts, seed=st.integers(min_value=0, max_value=2**31))
    def test_full_generation_is_backend_invariant(self, counts, seed):
        harness.assert_embedding_parity(counts, rng_seed=seed)


class TestEligibilityParity:
    @_settings
    @given(
        counts=_counts,
        modulus_cap=st.integers(min_value=2, max_value=200),
        require_modification=st.booleans(),
    )
    def test_vectorized_scan_matches_loop(
        self, counts, modulus_cap, require_modification
    ):
        harness.assert_eligibility_parity(
            TokenHistogram.from_counts(counts),
            modulus_cap=modulus_cap,
            require_modification=require_modification,
        )


class TestMonteCarloParity:
    @pytest.mark.parametrize(
        "trials", [1, 1023, 1024, 1025, 2048 + 7], ids=lambda t: f"trials{t}"
    )
    @pytest.mark.parametrize("backend_name", available_backends())
    def test_batched_rate_equals_per_trial_loop(self, trials, backend_name):
        from repro.analysis.false_positive import empirical_false_positive_rate

        moduli = [7, 11, 13, 29, 61]
        expected = harness.reference_false_positive_rate(
            moduli, 2, 2, trials=trials, seed=20240807
        )
        actual = empirical_false_positive_rate(
            moduli, 2, 2, trials=trials, rng=20240807, backend=backend_name
        )
        assert actual == expected

    def test_rng_stream_is_identical_across_backends(self):
        from repro.analysis.false_positive import empirical_false_positive_rate

        rates = {
            name: empirical_false_positive_rate(
                [5, 9, 17, 33], 1, 3, trials=1500, rng=7, backend=name
            )
            for name in available_backends()
        }
        assert len(set(rates.values())) == 1, rates


class TestSpawnFailureFallback:
    """Sharded dispatch that cannot spawn must fall back in-process,
    on whichever backend was requested."""

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_detect_many_falls_back_on_requested_backend(
        self, monkeypatch, backend_name
    ):
        import multiprocessing

        from repro.core.batch import detect_many
        from repro.core.reference import detect_reference

        class FailingContext:
            def Pool(self, *args, **kwargs):
                raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method=None: FailingContext()
        )
        case = harness.build_watermarked_case(
            {"a": 4000, "b": 2600, "c": 1500, "d": 900, "e": 500, "f": 220}
        )
        assert case is not None
        histogram, secret = case
        suspects = [histogram, histogram.scaled(1.2), histogram.scaled(0.8)]
        with pytest.warns(RuntimeWarning, match="no /dev/shm in this sandbox"):
            report = detect_many(
                suspects, secret, workers=4, backend=backend_name
            )
        assert len(report) == len(suspects)
        for suspect, result in zip(suspects, report):
            reference = detect_reference(suspect, secret)
            assert result.accepted == reference.accepted
            assert result.accepted_pairs == reference.accepted_pairs


class TestBackendIsolation:
    """Caches and fingerprints must never mix backends."""

    def test_fingerprint_embeds_backend_name(self):
        case = harness.build_watermarked_case(
            {"a": 900, "b": 500, "c": 260, "d": 120, "e": 55}
        )
        assert case is not None
        _, secret = case
        numpy_print = detector_fingerprint(secret, backend="numpy")
        mirror_print = detector_fingerprint(secret, backend="mirror")
        assert numpy_print.endswith("|xp=numpy")
        assert mirror_print.endswith("|xp=mirror")
        assert numpy_print != mirror_print
        detector = WatermarkDetector(secret, backend="mirror")
        assert detector.fingerprint == mirror_print

    def test_detector_cache_keeps_backends_apart(self):
        case = harness.build_watermarked_case(
            {"a": 900, "b": 500, "c": 260, "d": 120, "e": 55}
        )
        assert case is not None
        _, secret = case
        cache = DetectorCache(capacity=None)
        on_numpy = cache.get(secret, backend="numpy")
        on_mirror = cache.get(secret, backend="mirror")
        assert on_numpy is not on_mirror
        assert on_numpy.backend.name == "numpy"
        assert on_mirror.backend.name == "mirror"
        assert cache.get(secret, backend="numpy") is on_numpy
        assert cache.get(secret, backend="mirror") is on_mirror
        assert len(cache) == 2

    def test_env_switch_threads_through_whole_pipeline(self):
        counts = {"a": 4000, "b": 2600, "c": 1500, "d": 900, "e": 500, "f": 220}
        with harness.use_backend("mirror"):
            result = harness.assert_embedding_parity(
                counts, backend_names=["mirror"]
            )
            assert result is not None
            detector = WatermarkDetector(result.secret)
            assert detector.backend.name == "mirror"
            assert detector.fingerprint.endswith("|xp=mirror")
            assert detector.detect(result.watermarked_histogram).accepted
        assert WatermarkDetector(result.secret).backend.name == "numpy"

    def test_every_backend_satisfies_protocol(self):
        for backend in harness.parity_backends():
            assert isinstance(backend, ArrayBackend)
            assert backend.name
            round_trip = backend.to_host(
                backend.from_host(np.array([1, 2, 3], dtype=np.int64))
            )
            assert isinstance(round_trip, np.ndarray)
            assert round_trip.tolist() == [1, 2, 3]
