"""End-to-end integration tests across the whole FreqyWM pipeline."""

from __future__ import annotations


from repro.analysis.distortion import distortion_report
from repro.attacks.destroy import PercentageNoiseAttack
from repro.attacks.sampling import rescale_suspect, subsample_histogram
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import WatermarkDetector, detect_watermark
from repro.core.generator import WatermarkGenerator, generate_watermark
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.datasets.clickstream import ClickstreamSpec, clickstream_tokens, generate_clickstream
from repro.dispute.judge import Judge, OwnershipClaim
from repro.dispute.registry import WatermarkRegistry


class TestMarketplaceScenario:
    """A seller watermarks per buyer, a buyer leaks, the seller proves it."""

    def test_full_marketplace_lifecycle(self, tmp_path):
        clickstream = generate_clickstream(
            ClickstreamSpec(n_urls=200, n_users=25, n_events=6_000, days=10), rng=42
        )
        tokens = clickstream_tokens(clickstream)

        registry = WatermarkRegistry()
        config = GenerationConfig(budget_percent=2.0, modulus_cap=61, max_candidates=150)
        buyer_versions = {}
        for index, buyer in enumerate(("alpha-corp", "beta-llc")):
            generator = WatermarkGenerator(config, rng=500 + index)
            result = generator.generate(tokens)
            registry.register(buyer, result.secret, dataset="clickstream-q1")
            buyer_versions[buyer] = result

        assert registry.verify_chain()

        # beta-llc leaks a 40% subsample of its copy.
        leaked_histogram = subsample_histogram(
            buyer_versions["beta-llc"].watermarked_histogram, 0.4, rng=9
        )
        rescaled = rescale_suspect(
            leaked_histogram, buyer_versions["beta-llc"].watermarked_histogram.total_count()
        )
        matches = registry.attribute_leak(rescaled, detection=DetectionConfig(pair_threshold=4))
        assert matches
        assert matches[0][0] == "beta-llc"

        # Secrets survive a round-trip through storage.
        secret_path = tmp_path / "beta.json"
        buyer_versions["beta-llc"].secret.save(secret_path)
        reloaded = WatermarkSecret.load(secret_path)
        detection = detect_watermark(
            buyer_versions["beta-llc"].watermarked_histogram, reloaded
        )
        assert detection.accepted


class TestAttackThenDisputeScenario:
    def test_watermark_survives_noise_and_dispute(self, skewed_histogram):
        config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
        owner = WatermarkGenerator(config, rng=61).generate(skewed_histogram)

        # The owner lodges its watermark fingerprint in the registry when it
        # publishes the dataset; the pirate can only register later.
        registry = WatermarkRegistry()
        registry.register("owner", owner.secret, dataset="published-v1")

        # A pirate adds 1%-of-slack noise and then re-watermarks.
        noisy = PercentageNoiseAttack(1.0, rng=7).tamper(owner.watermarked_histogram)
        pirate = WatermarkGenerator(config, rng=62).generate(noisy)
        registry.register("pirate", pirate.secret, dataset="stolen-v1")

        detection_config = DetectionConfig(pair_threshold=4)
        owner_on_pirate = WatermarkDetector(owner.secret, detection_config).detect(
            pirate.watermarked_histogram
        )
        assert owner_on_pirate.accepted

        verdict = Judge(detection_config, registry=registry).arbitrate(
            [
                OwnershipClaim("owner", owner.secret, owner.watermarked_histogram),
                OwnershipClaim("pirate", pirate.secret, pirate.watermarked_histogram),
            ]
        )
        assert verdict.winner == "owner"


class TestQualityGuarantees:
    def test_watermark_quality_report(self, skewed_histogram):
        result = generate_watermark(skewed_histogram, budget_percent=1.0, rng=77)
        report = distortion_report(
            result.original_histogram.as_dict(),
            result.watermarked_histogram.as_dict(),
            method="freqywm",
        )
        assert report.ranking_preserved
        assert report.distortion_percent <= 1.0
        assert report.total_absolute_change == result.total_changes

    def test_histograms_and_raw_tokens_agree_end_to_end(self, skewed_tokens):
        result = generate_watermark(skewed_tokens, modulus_cap=31, rng=17)
        assert result.watermarked_tokens is not None
        rebuilt = TokenHistogram.from_tokens(result.watermarked_tokens)
        detection_from_tokens = detect_watermark(result.watermarked_tokens, result.secret)
        detection_from_histogram = detect_watermark(rebuilt, result.secret)
        assert detection_from_tokens.accepted and detection_from_histogram.accepted
        assert (
            detection_from_tokens.accepted_pairs == detection_from_histogram.accepted_pairs
        )
