"""Edge-case and failure-injection tests across module boundaries.

These complement the per-module unit tests with the awkward inputs a
downstream user will eventually feed the library: two-token datasets, huge
single gaps, all-tied histograms, degenerate bucket inputs, empty attack
spaces, and serialisation of unusual token strings.
"""

from __future__ import annotations

import pytest

from repro.core.bucketize import Bucketizer
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import detect_watermark
from repro.core.generator import generate_watermark
from repro.core.histogram import TokenHistogram
from repro.core.multiwatermark import MultiWatermarker
from repro.core.secrets import WatermarkSecret
from repro.datasets.tabular import TabularDataset
from repro.exceptions import DatasetError, GenerationError


class TestTinyDatasets:
    def test_two_token_dataset_with_large_gap(self):
        # Two tokens with a wide gap: the single candidate pair is eligible
        # and can be watermarked whenever the modulus fits the boundaries.
        histogram = TokenHistogram.from_counts({"a": 10_000, "b": 100})
        result = generate_watermark(histogram, modulus_cap=31, rng=3)
        assert result.pair_count in (0, 1)
        detection = detect_watermark(result.watermarked_histogram, result.secret) if result.pair_count else None
        if detection is not None:
            assert detection.accepted

    def test_two_token_dataset_with_tiny_gap_selects_nothing(self):
        histogram = TokenHistogram.from_counts({"a": 101, "b": 100})
        result = generate_watermark(histogram, modulus_cap=131, rng=3)
        assert result.pair_count == 0
        assert result.watermarked_histogram.as_dict() == histogram.as_dict()

    def test_all_tied_histogram_is_a_noop(self):
        histogram = TokenHistogram.from_counts({f"t{i}": 500 for i in range(20)})
        result = generate_watermark(histogram, rng=1)
        assert result.pair_count == 0
        assert result.similarity_percent == pytest.approx(100.0)

    def test_single_occurrence_tokens(self):
        # A long tail of hapax tokens plus a skewed head must not crash and
        # must never drive any count negative.
        counts = {f"head{i}": 1000 - 40 * i for i in range(10)}
        counts.update({f"tail{i}": 1 for i in range(50)})
        result = generate_watermark(TokenHistogram.from_counts(counts), modulus_cap=31, rng=5)
        assert min(result.watermarked_histogram.frequencies()) >= 1


class TestUnusualTokens:
    def test_tokens_with_unicode_and_whitespace(self):
        tokens = (
            ["café.example/路径"] * 400
            + ["with space.example"] * 250
            + ["tab\tseparated"] * 120
            + ["ünïcödé"] * 40
        )
        result = generate_watermark(tokens, modulus_cap=13, rng=2)
        assert detect_watermark(result.watermarked_tokens, result.secret).accepted

    def test_secret_roundtrip_with_unicode_pairs(self, tmp_path):
        secret = WatermarkSecret.build(
            [("café.example/路径", "ünïcödé")], secret=12345, modulus_cap=17
        )
        path = tmp_path / "secret.json"
        secret.save(path)
        assert WatermarkSecret.load(path) == secret

    def test_numeric_tokens_detect_consistently(self):
        # Integers and their string forms collapse into one bucket by design;
        # the watermark must survive the round trip through string form.
        tokens = [7] * 900 + ["7"] * 100 + [13] * 420 + [29] * 55
        result = generate_watermark(tokens, modulus_cap=13, rng=4)
        as_strings = [str(token) for token in result.watermarked_tokens]
        assert detect_watermark(as_strings, result.secret).accepted


class TestDetectionEdgeCases:
    def test_detection_on_much_smaller_unscaled_sample_fails_strictly(self, watermarked_bundle):
        result, _ = watermarked_bundle
        shrunk = result.watermarked_histogram.scaled(0.01)
        detection = detect_watermark(shrunk, result.secret, pair_threshold=0)
        assert detection.accepted_fraction <= 1.0  # never exceeds bounds

    def test_threshold_fraction_one_accepts_every_present_pair(self, watermarked_bundle):
        result, original = watermarked_bundle
        detection = detect_watermark(
            original, result.secret, pair_threshold_fraction=1.0, min_accepted_fraction=1.0
        )
        assert detection.accepted_pairs == detection.total_pairs

    def test_min_accepted_fraction_zero_requires_one_pair(self, watermarked_bundle):
        result, _ = watermarked_bundle
        config = DetectionConfig(pair_threshold=0, min_accepted_fraction=0.0)
        assert config.required_pairs(len(result.secret.pairs)) == 1


class TestBucketizerDegenerateInputs:
    def test_constant_values_collapse_to_one_bucket(self):
        bucketizer = Bucketizer(5, strategy="quantile").fit([3.0] * 100)
        labels = bucketizer.transform([3.0, 3.0])
        assert len(set(labels)) == 1

    def test_two_distinct_values(self):
        bucketizer = Bucketizer(4, strategy="width").fit([1.0, 2.0] * 50)
        labels = bucketizer.transform([1.0, 2.0])
        assert len(set(labels)) == 2


class TestTabularEdgeCases:
    def test_empty_table_watermarking_rejected(self):
        from repro.core.multidimensional import TabularWatermarker

        empty = TabularDataset(columns=("age",), rows=[])
        with pytest.raises((GenerationError, DatasetError, Exception)):
            TabularWatermarker(["age"]).watermark(empty)

    def test_table_with_one_distinct_token_rejected(self):
        from repro.core.multidimensional import TabularWatermarker

        table = TabularDataset(columns=("age",), rows=[{"age": 30}] * 50)
        with pytest.raises(GenerationError):
            TabularWatermarker(["age"]).watermark(table)


class TestMultiWatermarkEdgeCases:
    def test_single_round_equals_plain_generation_shape(self, skewed_histogram):
        config = GenerationConfig(budget_percent=2.0, modulus_cap=61)
        multi = MultiWatermarker(config, rng=5).watermark(skewed_histogram, rounds=1)
        assert len(multi.rounds) == 1
        assert multi.final_similarity_percent > 98.0

    def test_rounds_exhausting_token_space_degrade_gracefully(self):
        # A tiny token space with many protected rounds: later rounds may
        # find nothing left to watermark but must not crash.
        histogram = TokenHistogram.from_counts(
            {f"t{i}": 2_000 - 140 * i for i in range(12)}
        )
        config = GenerationConfig(
            budget_percent=2.0, modulus_cap=13, require_modification=True, max_pairs=2
        )
        multi = MultiWatermarker(config, protect_previous_rounds=True, rng=8).watermark(
            histogram, rounds=4
        )
        assert len(multi.rounds) == 4
        assert all(stage.result.pair_count >= 0 for stage in multi.rounds)
