"""Shared fixtures for the FreqyWM test suite.

Fixtures build small, deterministic datasets so each test runs in
milliseconds while still exercising realistic histogram shapes (skewed
frequencies with non-trivial gaps, which is the regime FreqyWM targets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.core.histogram import TokenHistogram
from repro.datasets.synthetic import generate_power_law_histogram, generate_power_law_tokens
from repro.obs import logging as _obs_logging


@pytest.fixture(autouse=True)
def _isolate_obs_logging():
    """Undo ``repro.obs.logging.configure`` effects between tests.

    Any test that reaches the CLI's ``main`` installs the telemetry
    plane's handler and stops propagation to the logging root; left in
    place, that would blind ``caplog`` for every later test.
    """
    yield
    _obs_logging.reset()


@pytest.fixture()
def running_example_histogram() -> TokenHistogram:
    """The paper's Figure 1 running example (URL frequencies)."""
    return TokenHistogram.from_counts(
        {
            "youtube.com": 1098,
            "facebook.com": 980,
            "google.com": 674,
            "instagram.com": 537,
            "bbc.com": 64,
            "cnn.com": 53,
            "elpais.com": 53,
        }
    )


@pytest.fixture(scope="session")
def skewed_histogram() -> TokenHistogram:
    """A mid-skew power-law histogram (α=0.5) at test scale.

    Sampled (noisy) counts, matching how real data behaves: with smooth
    "expected" counts an unrealistically large share of pairs is already
    aligned by chance, which distorts the attack/dispute experiments.
    """
    return generate_power_law_histogram(
        0.5, n_tokens=120, sample_size=60_000, mode="sampled", rng=2024
    )


@pytest.fixture(scope="session")
def skewed_tokens() -> list:
    """A raw token sequence drawn from a skewed power law."""
    return generate_power_law_tokens(0.7, n_tokens=60, sample_size=8_000, rng=11)


@pytest.fixture(scope="session")
def watermarked_bundle(skewed_histogram):
    """One deterministic watermark over the skewed histogram.

    Returns (result, original histogram) and is session-scoped because
    generation over 120 tokens is the most expensive fixture; tests must
    not mutate the result.
    """
    config = GenerationConfig(budget_percent=2.0, modulus_cap=131, strategy="optimal")
    generator = WatermarkGenerator(config, rng=1234)
    result = generator.generate(skewed_histogram)
    return result, skewed_histogram


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for test-local randomness."""
    return np.random.default_rng(20240613)
