"""Batch embedding engine: parity, sharding, caches, lean pickling.

The contract under test is the PR's golden rule: everything
``embed_many`` / ``generate_many`` / ``ShardedEmbeddingPool`` amortise —
pair-modulus hashing, eligibility precomputation, vectorized scan plans,
process sharding — is *value-transparent*. Batched outputs must be
element-wise identical to the sequential ``WatermarkGenerator.generate``
loop, including every RNG-derived tie-break.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch import embed_many
from repro.core.config import GenerationConfig
from repro.core.detector import WatermarkDetector
from repro.core.eligibility import (
    EligibilityContext,
    generate_eligible_pairs,
)
from repro.core.embedding import BatchEmbeddingReport, ShardedEmbeddingPool
from repro.core.generator import WatermarkGenerator
from repro.core.hashing import PairModulusCache, pair_modulus
from repro.core.histogram import TokenHistogram
from repro.datasets.loaders import load_token_file, save_token_file
from repro.datasets.synthetic import generate_power_law_tokens
from repro.exceptions import EligibilityError, GenerationError


def _histogram(seed: int, tokens: int = 40, size: int = 8_000) -> TokenHistogram:
    return TokenHistogram.from_tokens(
        generate_power_law_tokens(0.6, n_tokens=tokens, sample_size=size, rng=seed)
    )


# One shared WatermarkResult equality helper for every parity suite.
from backend_harness import (
    assert_embedding_results_identical as assert_results_identical,
)


class TestGenerateManyParity:
    def test_shared_secret_batch_is_bit_identical(self):
        datasets = [_histogram(seed) for seed in range(8)]
        config = GenerationConfig()
        sequential = [
            WatermarkGenerator(config, rng=7).generate(data, secret_value=0xBEEF)
            for data in datasets
        ]
        batched = WatermarkGenerator(config, rng=7).generate_many(
            datasets, secret_values=[0xBEEF] * len(datasets)
        )
        assert len(batched) == len(sequential)
        for left, right in zip(sequential, batched):
            assert_results_identical(left, right)

    def test_sampled_secrets_with_int_seed_match_sequential(self):
        datasets = [_histogram(seed) for seed in range(4)]
        config = GenerationConfig(strategy="random")
        generator = WatermarkGenerator(config, rng=123)
        sequential = [generator.generate(data) for data in datasets]
        batched = WatermarkGenerator(config, rng=123).generate_many(datasets)
        for left, right in zip(sequential, batched):
            assert_results_identical(left, right)

    def test_candidate_secrets_over_one_histogram(self):
        histogram = _histogram(3)
        secrets = [1000 + index for index in range(6)]
        config = GenerationConfig()
        sequential = [
            WatermarkGenerator(config, rng=1).generate(histogram, secret_value=value)
            for value in secrets
        ]
        batched = WatermarkGenerator(config, rng=1).generate_many(
            [histogram] * len(secrets), secret_values=secrets
        )
        for left, right in zip(sequential, batched):
            assert_results_identical(left, right)

    def test_raw_token_sequences_round_trip(self):
        tokens = generate_power_law_tokens(0.6, n_tokens=30, sample_size=4_000, rng=9)
        config = GenerationConfig()
        sequential = WatermarkGenerator(config, rng=11).generate(
            tokens, secret_value=77
        )
        (batched,) = WatermarkGenerator(config, rng=11).generate_many(
            [tokens], secret_values=[77]
        )
        assert_results_identical(sequential, batched)
        assert batched.watermarked_tokens is not None

    def test_secret_values_length_mismatch_rejected(self):
        with pytest.raises(GenerationError):
            WatermarkGenerator().generate_many([_histogram(1)], secret_values=[1, 2])


class TestEmbedManyFunction:
    def test_report_accessors_and_summary(self):
        datasets = [_histogram(seed) for seed in range(3)]
        report = embed_many(datasets, rng=5, secret_value=42)
        assert isinstance(report, BatchEmbeddingReport)
        assert len(report) == 3
        assert list(iter(report)) == list(report.results)
        assert report[1] is report.results[1]
        assert len(report.secrets) == 3
        assert len(report.watermarked_histograms) == 3
        summary = report.summary()
        assert summary["datasets"] == 3
        assert summary["selected_pairs_total"] == sum(
            result.pair_count for result in report
        )

    def test_every_embedding_verifies(self):
        datasets = [_histogram(seed) for seed in range(3)]
        report = embed_many(datasets, rng=5, secret_value=42)
        for result in report:
            detection = WatermarkDetector(result.secret).detect(
                result.watermarked_histogram
            )
            assert detection.accepted

    def test_empty_batch(self):
        assert len(embed_many([], rng=1)) == 0

    def test_secret_value_and_values_mutually_exclusive(self):
        with pytest.raises(GenerationError):
            embed_many([_histogram(1)], secret_value=1, secret_values=[1])


class TestShardedEmbeddingPool:
    def test_sharded_matches_sequential(self):
        datasets = [_histogram(seed) for seed in range(6)]
        config = GenerationConfig()
        baseline = embed_many(datasets, config, rng=3, secret_value=0xACE)
        with warnings.catch_warnings():
            # Restricted sandboxes fall back in-process with a warning;
            # parity must hold either way.
            warnings.simplefilter("ignore", RuntimeWarning)
            sharded = embed_many(
                datasets, config, rng=3, secret_value=0xACE, workers=2, chunk_size=2
            )
        assert len(sharded) == len(baseline)
        for left, right in zip(baseline, sharded):
            assert_results_identical(left, right)

    def test_rejects_live_generator_source(self):
        with pytest.raises(GenerationError):
            ShardedEmbeddingPool(seed=np.random.default_rng(1), workers=2)

    def test_rejects_invalid_workers_and_chunks(self):
        with pytest.raises(GenerationError):
            ShardedEmbeddingPool(workers=0)
        with pytest.raises(GenerationError):
            ShardedEmbeddingPool(chunk_size=0)

    def test_embed_files_round_trip(self, tmp_path):
        inputs = []
        for index in range(3):
            path = tmp_path / f"data{index}.txt"
            save_token_file(
                generate_power_law_tokens(
                    0.6, n_tokens=25, sample_size=2_000, rng=index
                ),
                path,
            )
            inputs.append(path)
        out_dir = tmp_path / "out"
        secret_dir = tmp_path / "secrets"
        with ShardedEmbeddingPool(GenerationConfig(), seed=4, workers=1) as pool:
            summaries = pool.embed_files(inputs, out_dir, secret_dir)
        assert [summary["input"] for summary in summaries] == [
            str(path) for path in inputs
        ]
        for path, summary in zip(inputs, summaries):
            watermarked = load_token_file(out_dir / path.name)
            from repro.core.secrets import WatermarkSecret

            secret = WatermarkSecret.load(secret_dir / (path.name + ".json"))
            detection = WatermarkDetector(secret).detect(watermarked)
            assert detection.accepted
            assert summary["selected_pairs"] == detection.total_pairs


# Hypothesis sweep: arbitrary dataset lists, element-wise identical to the
# sequential loop (the satellite-task property test).
_token_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=8
)
_counts = st.dictionaries(
    keys=_token_names,
    values=st.integers(min_value=1, max_value=50_000),
    min_size=2,
    max_size=16,
)
_batches = st.lists(_counts, min_size=1, max_size=5)
_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestEmbedManyProperty:
    @_settings
    @given(
        batch=_batches,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        strategy=st.sampled_from(["optimal", "greedy", "random"]),
        shared_secret=st.booleans(),
    )
    def test_embed_many_equals_sequential_generate(
        self, batch, seed, strategy, shared_secret
    ):
        datasets = [TokenHistogram.from_counts(counts) for counts in batch]
        config = GenerationConfig(strategy=strategy, modulus_cap=13)
        secret_values = (
            [0xC0FFEE] * len(datasets)
            if shared_secret
            else [100 + index for index in range(len(datasets))]
        )
        sequential = [
            WatermarkGenerator(config, rng=seed).generate(data, secret_value=value)
            for data, value in zip(datasets, secret_values)
        ]
        batched = WatermarkGenerator(config, rng=seed).generate_many(
            datasets, secret_values=secret_values
        )
        for left, right in zip(sequential, batched):
            assert_results_identical(left, right)


class TestPairModulusCache:
    def test_values_match_direct_derivation(self):
        cache = PairModulusCache(12345, 131)
        for left, right in [("a", "b"), ("b", "a"), ("a", "c"), ("a", "b")]:
            assert cache.modulus(left, right) == pair_modulus(left, right, 12345, 131)
        assert cache.hits == 1  # the repeated ("a", "b")
        assert cache.misses == 3
        assert len(cache) == 3

    def test_matches_and_validation(self):
        cache = PairModulusCache(1, 31)
        assert cache.matches(1, 31)
        assert not cache.matches(2, 31)
        assert not cache.matches(1, 32)
        with pytest.raises(ValueError):
            PairModulusCache(1, 1)

    def test_eligibility_rejects_mismatched_cache(self):
        histogram = _histogram(1)
        with pytest.raises(EligibilityError):
            generate_eligible_pairs(
                histogram, 5, 131, modulus_cache=PairModulusCache(6, 131)
            )


class TestEligibilityReuse:
    def test_context_reuse_is_value_transparent(self):
        histogram = _histogram(2)
        context = EligibilityContext.build(histogram)
        direct = generate_eligible_pairs(histogram, 99, 131)
        via_context = generate_eligible_pairs(histogram, 99, 131, context=context)
        assert direct == via_context

    def test_vectorized_plan_matches_loop(self):
        import backend_harness

        histogram = _histogram(4, tokens=60, size=12_000)
        # Harness: streaming-loop reference vs the vectorized plan scan on
        # every available backend.
        loop = backend_harness.assert_eligibility_parity(
            histogram, secret_value=0xFEED, modulus_cap=131
        )
        assert loop  # non-vacuous case
        # Second scan through a warm plan store: same values again.
        cache = PairModulusCache(0xFEED, 131)
        store = {}
        first = generate_eligible_pairs(
            histogram, 0xFEED, 131, modulus_cache=cache, plan_store=store
        )
        assert first == loop
        assert store  # the plan was built and cached
        assert (
            generate_eligible_pairs(
                histogram, 0xFEED, 131, modulus_cache=cache, plan_store=store
            )
            == loop
        )

    def test_pair_budget_overflow_falls_back_to_loop(self, monkeypatch):
        """Past ``VECTOR_SCAN_MAX_PAIRS`` the scan must fall back to the
        streaming loop — and produce the exact same pair list.

        The production budget is 2M pairs; forcing it to 0 makes every
        vocabulary overflow, so this exercises the same branch a >2M-pair
        candidate set takes without building one.
        """
        from repro.core import eligibility as eligibility_module

        histogram = _histogram(6, tokens=60, size=12_000)
        cache = PairModulusCache(0xFEED, 131)
        store = {}
        vectorized = generate_eligible_pairs(
            histogram, 0xFEED, 131, modulus_cache=cache, plan_store=store
        )
        assert store  # the vectorized plan path ran
        monkeypatch.setattr(eligibility_module, "VECTOR_SCAN_MAX_PAIRS", 0)
        overflow_store = {}
        fallback = generate_eligible_pairs(
            histogram, 0xFEED, 131, modulus_cache=cache, plan_store=overflow_store
        )
        assert not overflow_store  # budget overflow forced the loop path
        assert fallback == vectorized

    def test_require_modification_respected_by_plan(self):
        histogram = _histogram(5)
        cache = PairModulusCache(7, 31)
        store = {}
        vectorized = generate_eligible_pairs(
            histogram,
            7,
            31,
            require_modification=True,
            modulus_cache=cache,
            plan_store=store,
        )
        assert all(pair.remainder != 0 for pair in vectorized)
        assert vectorized == generate_eligible_pairs(
            histogram, 7, 31, require_modification=True
        )


class TestLeanPickle:
    def test_result_pickle_round_trips_and_drops_caches(self):
        result = WatermarkGenerator(GenerationConfig(), rng=2).generate(
            _histogram(6), secret_value=31337
        )
        # Warm every memoised derivation the result transitively holds.
        _ = result.secret.fingerprint()
        _ = result.original_histogram.arrays()
        _ = result.watermarked_histogram.as_dict()
        warm_payload = pickle.dumps(result)
        restored = pickle.loads(warm_payload)
        assert_results_identical(result, restored)
        assert restored.timings == result.timings
        # The memoised fingerprint must not travel: the secret's pickled
        # state carries exactly the dataclass fields.
        assert b"_fingerprint" not in warm_payload
        # Warm caches add nothing to the payload versus a cold result.
        cold = WatermarkGenerator(GenerationConfig(), rng=2).generate(
            _histogram(6), secret_value=31337
        )
        assert len(warm_payload) == len(pickle.dumps(cold))

    def test_restored_secret_recomputes_fingerprint(self):
        result = WatermarkGenerator(GenerationConfig(), rng=2).generate(
            _histogram(6), secret_value=31337
        )
        fingerprint = result.secret.fingerprint()
        restored = pickle.loads(pickle.dumps(result))
        assert restored.secret.fingerprint() == fingerprint


class TestScratchBounds:
    def test_sharded_churn_respects_caps_and_stays_identical(self, monkeypatch):
        """Eviction under maximal churn: every scratch bound holds, results
        stay bit-identical to the sequential loop.

        The production bounds (4-secret LRU, 8-context cap, 4M-pair plan
        budget, 1M-pair modulus epoch reset) are scaled down so a small
        batch drives every eviction path: a fresh secret and a fresh
        vocabulary per dataset retires each derivation set immediately.
        """
        from repro.core import eligibility as eligibility_module
        from repro.core import generator as generator_module
        from repro.core.generator import _BatchScratch

        monkeypatch.setattr(_BatchScratch, "MAX_SECRETS", 2)
        monkeypatch.setattr(_BatchScratch, "MAX_CONTEXTS", 3)
        monkeypatch.setattr(eligibility_module, "PLAN_STORE_PAIR_BUDGET", 2_000)

        created = []

        class SmallCache(PairModulusCache):
            """Modulus cache whose epoch reset fires within one dataset."""

            def __init__(self, secret, z, **kwargs):
                kwargs["max_entries"] = 64
                super().__init__(secret, z, **kwargs)
                created.append(self)

        monkeypatch.setattr(generator_module, "PairModulusCache", SmallCache)

        observed = []
        original_trim = _BatchScratch.trim

        def spying_trim(self):
            original_trim(self)
            observed.append(
                (len(self.moduli), len(self.plans), len(self.contexts))
            )

        monkeypatch.setattr(_BatchScratch, "trim", spying_trim)

        datasets = [
            _histogram(seed, tokens=30, size=5_000) for seed in range(10)
        ]
        secret_values = [0x1000 + seed for seed in range(10)]
        with ShardedEmbeddingPool(GenerationConfig(), workers=1, seed=3) as pool:
            report = pool.embed_many(datasets, secret_values=secret_values)

        sequential = [
            WatermarkGenerator(GenerationConfig(), rng=3).generate(
                data, secret_value=value
            )
            for data, value in zip(datasets, secret_values)
        ]
        for left, right in zip(report, sequential):
            assert_results_identical(left, right)

        assert len(observed) == len(datasets)  # trim ran after every dataset
        assert max(moduli for moduli, _, _ in observed) <= 2
        assert max(plans for _, plans, _ in observed) <= 2
        assert max(contexts for _, _, contexts in observed) <= 3
        # 30 candidate tokens -> 435 pairs per dataset, far past the
        # 64-entry cap: the epoch reset must have fired, transparently.
        assert any(cache.resets > 0 for cache in created)

    def test_fresh_secret_batches_do_not_accumulate_derivations(self):
        from repro.core.generator import _BatchScratch

        datasets = [_histogram(seed) for seed in range(10)]
        generator = WatermarkGenerator(GenerationConfig(), rng=2)
        scratch = _BatchScratch()
        for index, data in enumerate(datasets):
            generator._generate_one(data, 5000 + index, scratch)
            scratch.trim()
        # One fresh secret per dataset: retired derivation sets must be
        # dropped, not retained for the whole batch.
        assert len(scratch.moduli) <= _BatchScratch.MAX_SECRETS
        assert len(scratch.plans) <= _BatchScratch.MAX_SECRETS

    def test_shared_secret_survives_trimming(self):
        datasets = [_histogram(seed) for seed in range(6)]
        generator = WatermarkGenerator(GenerationConfig(), rng=2)
        sequential = [
            WatermarkGenerator(GenerationConfig(), rng=2).generate(
                data, secret_value=77
            )
            for data in datasets
        ]
        batched = generator.generate_many(datasets, secret_values=[77] * 6)
        for left, right in zip(sequential, batched):
            assert_results_identical(left, right)

    def test_shared_secret_cache_survives_interleaved_sampled_secrets(self):
        from repro.core.generator import _BatchScratch

        shared = 0xABCD
        datasets = [_histogram(seed) for seed in range(12)]
        # Shared secret interleaved with fresh per-dataset secrets: the
        # shared entry must stay resident (true LRU), so its modulus
        # cache keeps accumulating hits instead of being rebuilt.
        values = [
            shared if index % 2 == 0 else 90_000 + index
            for index in range(len(datasets))
        ]
        generator = WatermarkGenerator(GenerationConfig(), rng=2)
        scratch = _BatchScratch()
        shared_caches = set()
        for data, value in zip(datasets, values):
            generator._generate_one(data, value, scratch)
            scratch.trim()
            shared_caches.add(id(scratch.moduli[(shared, 131)]))
        assert len(shared_caches) == 1, "shared-secret cache was evicted mid-batch"
        assert len(scratch.contexts) <= _BatchScratch.MAX_CONTEXTS

    def test_plan_store_bounded_by_pair_budget(self, monkeypatch):
        import repro.core.eligibility as eligibility

        # Tiny budget so a handful of small vocabularies overflows it.
        monkeypatch.setattr(eligibility, "PLAN_STORE_PAIR_BUDGET", 2_000)
        store = {}
        cache = PairModulusCache(0xB0B, 131)
        for seed in range(8):
            histogram = _histogram(seed, tokens=30, size=5_000)
            direct = generate_eligible_pairs(histogram, 0xB0B, 131)
            via_store = generate_eligible_pairs(
                histogram, 0xB0B, 131, modulus_cache=cache, plan_store=store
            )
            assert via_store == direct  # eviction never changes values
        from repro.core.eligibility import PairScanPlan  # noqa: F401

        retained = sum(len(plan.moduli) for plan in store.values())
        assert len(store) >= 1
        assert retained <= 2_000 or len(store) == 1

    def test_modulus_cache_resets_past_max_entries(self):
        cache = PairModulusCache(7, 131, max_entries=10)
        values = {}
        for i in range(30):
            values[i] = cache.modulus(f"a{i}", f"b{i}")
        assert len(cache) <= 10
        assert cache.resets >= 1
        # Values after a reset still match the direct derivation.
        for i in range(30):
            assert values[i] == pair_modulus(f"a{i}", f"b{i}", 7, 131)
