"""Unit tests for the sampling attack and its detection counter-measure."""

from __future__ import annotations

import pytest

from repro.attacks.sampling import (
    SamplingAttack,
    evaluate_sampling_attack,
    rescale_suspect,
    sample_token_sequence,
    subsample_histogram,
)
from repro.core.detector import detect_watermark
from repro.exceptions import AttackError


class TestSubsampling:
    def test_histogram_subsample_size(self, skewed_histogram):
        sampled = subsample_histogram(skewed_histogram, 0.25, rng=3)
        expected = round(0.25 * skewed_histogram.total_count())
        assert sampled.total_count() == expected

    def test_counts_never_exceed_original(self, skewed_histogram):
        sampled = subsample_histogram(skewed_histogram, 0.4, rng=3)
        for token in sampled.tokens:
            assert sampled.frequency(token) <= skewed_histogram.frequency(token)

    def test_full_fraction_is_identity(self, skewed_histogram):
        sampled = subsample_histogram(skewed_histogram, 1.0, rng=3)
        assert sampled.as_dict() == skewed_histogram.as_dict()

    def test_invalid_fraction(self, skewed_histogram):
        with pytest.raises(AttackError):
            subsample_histogram(skewed_histogram, 0.0)
        with pytest.raises(AttackError):
            SamplingAttack(1.5)

    def test_token_sequence_sampling(self, skewed_tokens):
        sampled = sample_token_sequence(skewed_tokens, 0.1, rng=5)
        assert len(sampled) == round(0.1 * len(skewed_tokens))
        assert set(sampled) <= set(skewed_tokens)

    def test_attack_parameters(self):
        assert SamplingAttack(0.2).parameters() == {"fraction": 0.2}


class TestRescaling:
    def test_rescale_restores_magnitude(self, skewed_histogram):
        sampled = subsample_histogram(skewed_histogram, 0.2, rng=3)
        rescaled = rescale_suspect(sampled, skewed_histogram.total_count())
        ratio = rescaled.total_count() / skewed_histogram.total_count()
        assert 0.9 < ratio < 1.1

    def test_rescale_preserves_rank_of_top_token(self, skewed_histogram):
        sampled = subsample_histogram(skewed_histogram, 0.3, rng=3)
        rescaled = rescale_suspect(sampled, skewed_histogram.total_count())
        assert rescaled.tokens[0] == skewed_histogram.tokens[0]


class TestDetectionUnderSampling:
    def test_moderate_sample_detected_with_relaxed_threshold(self, watermarked_bundle):
        result, _ = watermarked_bundle
        watermarked = result.watermarked_histogram
        sampled = subsample_histogram(watermarked, 0.5, rng=11)
        rescaled = rescale_suspect(sampled, watermarked.total_count())
        relaxed = detect_watermark(rescaled, result.secret, pair_threshold=10)
        strict = detect_watermark(rescaled, result.secret, pair_threshold=0)
        assert relaxed.accepted_pairs >= strict.accepted_pairs
        assert relaxed.accepted_fraction > 0.5

    def test_sweep_structure_and_monotonicity(self, watermarked_bundle):
        result, _ = watermarked_bundle
        points = evaluate_sampling_attack(
            result.watermarked_histogram,
            result.secret,
            fractions=(0.2, 0.8),
            thresholds=(0, 10),
            repetitions=2,
            rng=5,
        )
        assert len(points) == 4
        by_key = {(p.fraction, p.pair_threshold): p for p in points}
        # For a fixed fraction, a larger threshold never verifies fewer pairs.
        for fraction in (0.2, 0.8):
            assert (
                by_key[(fraction, 10)].accepted_fraction
                >= by_key[(fraction, 0)].accepted_fraction
            )
        for point in points:
            assert point.total_pairs == result.pair_count
            assert 0.0 <= point.accepted_fraction <= 1.0

    def test_tiny_sample_degrades_detection(self, watermarked_bundle):
        result, _ = watermarked_bundle
        watermarked = result.watermarked_histogram
        tiny = subsample_histogram(watermarked, 0.002, rng=11)
        rescaled = rescale_suspect(tiny, watermarked.total_count())
        tiny_detection = detect_watermark(rescaled, result.secret, pair_threshold=2)
        full_detection = detect_watermark(watermarked, result.secret, pair_threshold=2)
        assert tiny_detection.accepted_pairs <= full_detection.accepted_pairs
