"""Detection service layer: cache, wire format, coalescing, transports."""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector, detector_fingerprint
from repro.core.batch import detect_many
from repro.core.generator import generate_watermark
from repro.core.histogram import TokenHistogram
from repro.datasets.synthetic import generate_power_law_tokens
from repro.exceptions import DetectionError, ServiceError
from repro.service import (
    DetectionService,
    DetectorCache,
    DetectRequest,
    DetectResponse,
    ServiceConfig,
    SyncDetectionService,
    decode_request,
    decode_response,
    encode_line,
    serve_stdio,
)


@pytest.fixture(scope="module")
def watermark():
    tokens = generate_power_law_tokens(0.7, n_tokens=60, sample_size=8_000, rng=5)
    return generate_watermark(tokens, budget_percent=2.0, modulus_cap=31, rng=7)


@pytest.fixture(scope="module")
def other_watermark():
    tokens = generate_power_law_tokens(0.6, n_tokens=50, sample_size=6_000, rng=11)
    return generate_watermark(tokens, budget_percent=2.0, modulus_cap=23, rng=13)


@pytest.fixture(scope="module")
def decoy():
    return TokenHistogram.from_tokens([f"decoy-{i % 9}" for i in range(4_000)])


def _verdict(result):
    return (
        result.accepted,
        result.accepted_pairs,
        result.required_pairs,
        result.total_pairs,
    )


class TestFingerprints:
    def test_fingerprint_distinguishes_secret_and_config(self, watermark, other_watermark):
        base = detector_fingerprint(watermark.secret)
        assert base == detector_fingerprint(watermark.secret, DetectionConfig())
        assert base != detector_fingerprint(other_watermark.secret)
        assert base != detector_fingerprint(
            watermark.secret, DetectionConfig(pair_threshold=1)
        )

    def test_detector_property_memoises(self, watermark):
        detector = WatermarkDetector(watermark.secret)
        assert detector.fingerprint == detector_fingerprint(watermark.secret)
        assert detector.fingerprint is detector.fingerprint  # cached str

    def test_detect_many_reuses_prebuilt_detector(self, watermark, decoy):
        detector = WatermarkDetector(watermark.secret)
        reused = detect_many(
            [watermark.watermarked_histogram, decoy], detector=detector
        )
        fresh = detect_many([watermark.watermarked_histogram, decoy], watermark.secret)
        assert [_verdict(r) for r in reused] == [_verdict(r) for r in fresh]

    def test_detect_many_rejects_mismatched_detector(self, watermark, other_watermark):
        detector = WatermarkDetector(other_watermark.secret)
        with pytest.raises(DetectionError):
            detect_many(
                [watermark.watermarked_histogram], watermark.secret, detector=detector
            )

    def test_detect_many_rejects_mismatched_config(self, watermark):
        detector = WatermarkDetector(watermark.secret)  # strict t=0 thresholds
        with pytest.raises(DetectionError):
            detect_many(
                [watermark.watermarked_histogram],
                config=DetectionConfig(pair_threshold=5),
                detector=detector,
            )
        # An equal (even if separately constructed) config is accepted.
        report = detect_many(
            [watermark.watermarked_histogram],
            config=DetectionConfig(),
            detector=detector,
        )
        assert report[0].accepted

    def test_detect_many_requires_secret_or_detector(self, decoy):
        with pytest.raises(DetectionError):
            detect_many([decoy])


class TestDetectorCache:
    def test_hit_miss_and_reuse(self, watermark):
        cache = DetectorCache(capacity=2)
        first, hit1 = cache.lookup(watermark.secret)
        second, hit2 = cache.lookup(watermark.secret)
        assert (hit1, hit2) == (False, True)
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_distinct_configs_are_distinct_entries(self, watermark):
        cache = DetectorCache(capacity=4)
        loose = DetectionConfig(pair_threshold=2)
        a = cache.get(watermark.secret)
        b = cache.get(watermark.secret, loose)
        assert a is not b
        assert len(cache) == 2

    def test_lru_eviction(self, watermark, other_watermark):
        cache = DetectorCache(capacity=2)
        a = cache.get(watermark.secret)
        cache.get(other_watermark.secret)
        cache.get(watermark.secret)  # refresh a
        cache.get(watermark.secret, DetectionConfig(pair_threshold=1))  # evicts other
        assert cache.stats().evictions == 1
        again, hit = cache.lookup(watermark.secret)
        assert hit and again is a
        _, other_hit = cache.lookup(other_watermark.secret)
        assert not other_hit  # was the LRU victim

    def test_invalid_capacity(self):
        with pytest.raises(ServiceError):
            DetectorCache(capacity=0)


class TestWireFormat:
    def test_request_roundtrip(self, watermark):
        request = DetectRequest(
            request_id="r-1",
            counts={"a": 3, "b": 1},
            secret=watermark.secret.to_dict(),
            config={"pair_threshold": 1},
        )
        clone = decode_request(encode_line(request))
        assert clone == request
        assert clone.inline_secret() == watermark.secret
        assert clone.detection_config() == DetectionConfig(pair_threshold=1)

    def test_response_roundtrip(self, watermark):
        detector = WatermarkDetector(watermark.secret)
        result = detector.detect(watermark.watermarked_histogram)
        response = DetectResponse.from_result(
            "r-2", result, batch_size=5, cache_hit=True
        )
        clone = decode_response(encode_line(response))
        assert clone == response
        assert clone.accepted_fraction == result.accepted_fraction

    def test_request_validation(self):
        with pytest.raises(ServiceError):
            DetectRequest(request_id="x")  # neither tokens nor counts
        with pytest.raises(ServiceError):
            DetectRequest(request_id="x", tokens=("a",), counts={"a": 1},
                          secret_fingerprint="f")
        with pytest.raises(ServiceError):
            DetectRequest(request_id="x", tokens=("a",))  # no secret reference
        with pytest.raises(ServiceError):
            DetectRequest(
                request_id="x",
                tokens=("a",),
                secret_fingerprint="f",
                config={"bogus_knob": 1},
            )
        with pytest.raises(ServiceError):
            decode_request("this is not json")
        with pytest.raises(ServiceError):
            decode_request('{"tokens": ["a"]}')  # missing id
        # Float counts would be silently truncated by int(): rejected.
        with pytest.raises(ServiceError):
            decode_request(
                '{"id": "x", "counts": {"tok": 5.9}, "secret_fingerprint": "f"}'
            )
        with pytest.raises(ServiceError):
            decode_request(
                '{"id": "x", "counts": {"tok": true}, "secret_fingerprint": "f"}'
            )


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay": -0.1},
            {"cache_capacity": 0},
            {"shard_workers": 0},
            {"shard_min_batch": 1},
        ],
    )
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)


class TestCoalescing:
    def test_concurrent_requests_share_batches(self, watermark, decoy):
        async def run():
            async with DetectionService(ServiceConfig(max_delay=0.01)) as service:
                suspects = [watermark.watermarked_histogram, decoy] * 15
                results = await asyncio.gather(
                    *(service.detect(data, watermark.secret) for data in suspects)
                )
                return results, service.stats, service.cache_stats()

        results, stats, cache_stats = asyncio.run(run())
        detector = WatermarkDetector(watermark.secret)
        for data, result in zip(
            [watermark.watermarked_histogram, decoy] * 15, results
        ):
            assert _verdict(result) == _verdict(detector.detect(data))
        assert stats.requests == 30
        assert stats.batches < 30  # coalescing actually happened
        assert stats.largest_batch > 1
        assert cache_stats.misses == 1  # one detector construction total

    def test_max_batch_bounds_window(self, watermark):
        async def run():
            config = ServiceConfig(max_batch=4, max_delay=0.05)
            async with DetectionService(config) as service:
                await asyncio.gather(
                    *(
                        service.detect(watermark.watermarked_histogram, watermark.secret)
                        for _ in range(10)
                    )
                )
                return service.stats.largest_batch

        assert asyncio.run(run()) <= 4

    def test_groups_by_secret_within_window(self, watermark, other_watermark):
        async def run():
            async with DetectionService(ServiceConfig(max_delay=0.02)) as service:
                first = service.detect(
                    watermark.watermarked_histogram, watermark.secret
                )
                second = service.detect(
                    other_watermark.watermarked_histogram, other_watermark.secret
                )
                results = await asyncio.gather(first, second)
                return results, service.stats

        results, stats = asyncio.run(run())
        assert results[0].accepted and results[1].accepted
        assert results[0].total_pairs == len(watermark.secret.pairs)
        assert results[1].total_pairs == len(other_watermark.secret.pairs)
        # One window, two per-detector groups -> two vectorized passes.
        assert stats.batches >= 2

    def test_submit_not_running_raises(self, watermark):
        async def run():
            service = DetectionService()
            with pytest.raises(ServiceError):
                await service.detect(["a"], watermark.secret)

        asyncio.run(run())

    def test_requires_exactly_one_secret_form(self, watermark):
        async def run():
            async with DetectionService() as service:
                with pytest.raises(ServiceError):
                    await service.detect(["a"])
                with pytest.raises(ServiceError):
                    await service.detect(
                        ["a"], watermark.secret, secret_fingerprint="also"
                    )

        asyncio.run(run())

    def test_shard_pools_are_lru_bounded(self, watermark, other_watermark):
        config = ServiceConfig(
            cache_capacity=1,
            shard_workers=2,
            shard_min_batch=2,
            max_delay=0.05,
        )

        async def run():
            async with DetectionService(config) as service:
                await asyncio.gather(
                    *(
                        service.detect(watermark.watermarked_histogram, watermark.secret)
                        for _ in range(3)
                    )
                )
                first_pools = len(service._pools)
                await asyncio.gather(
                    *(
                        service.detect(
                            other_watermark.watermarked_histogram, other_watermark.secret
                        )
                        for _ in range(3)
                    )
                )
                return first_pools, len(service._pools), service.stats.sharded_batches

        first_pools, final_pools, sharded = asyncio.run(run())
        assert sharded >= 2
        assert first_pools == 1
        assert final_pools == 1  # the first secret's pool was evicted and closed

    def test_unknown_fingerprint_is_service_error(self):
        async def run():
            async with DetectionService() as service:
                with pytest.raises(ServiceError):
                    await service.detect(["a"], secret_fingerprint="nope")

        asyncio.run(run())


class TestRegistryAndWire:
    def test_registered_secret_answers_wire_requests(self, watermark, decoy):
        async def run():
            async with DetectionService() as service:
                fingerprint = service.register_secret(watermark.secret)
                accepted = await service.submit(
                    DetectRequest(
                        request_id="wm",
                        counts=watermark.watermarked_histogram.as_dict(),
                        secret_fingerprint=fingerprint,
                    )
                )
                rejected = await service.submit(
                    DetectRequest(
                        request_id="decoy",
                        counts=decoy.as_dict(),
                        secret_fingerprint=fingerprint,
                    )
                )
                return accepted, rejected

        accepted, rejected = asyncio.run(run())
        assert accepted.ok and accepted.accepted and accepted.cache_hit
        assert rejected.ok and not rejected.accepted
        detector = WatermarkDetector(watermark.secret)
        direct = detector.detect(watermark.watermarked_histogram)
        assert accepted.accepted_pairs == direct.accepted_pairs
        assert accepted.total_pairs == direct.total_pairs

    def test_registry_default_config_applies(self, watermark):
        loose = DetectionConfig(pair_threshold=3, min_accepted_fraction=0.1)
        async def run():
            async with DetectionService() as service:
                fingerprint = service.register_secret(watermark.secret, loose)
                response = await service.submit(
                    DetectRequest(
                        request_id="r",
                        counts=watermark.watermarked_histogram.as_dict(),
                        secret_fingerprint=fingerprint,
                    )
                )
                return response

        response = asyncio.run(run())
        direct = WatermarkDetector(watermark.secret, loose).detect(
            watermark.watermarked_histogram
        )
        assert response.required_pairs == direct.required_pairs

    def test_wire_failure_is_a_failure_response(self, watermark):
        async def run():
            async with DetectionService() as service:
                return await service.submit(
                    DetectRequest(
                        request_id="bad",
                        tokens=("a", "b"),
                        secret_fingerprint="unregistered",
                    )
                )

        response = asyncio.run(run())
        assert not response.ok
        assert "unregistered" in (response.error or "")

    def test_unexpected_detect_error_becomes_failure_response(
        self, watermark, monkeypatch
    ):
        """The wire contract: no exception may leave a request unanswered."""
        monkeypatch.setattr(
            WatermarkDetector,
            "detect_many",
            lambda self, *a, **k: (_ for _ in ()).throw(RuntimeError("worker died")),
        )

        async def run():
            async with DetectionService() as service:
                return await service.submit(
                    DetectRequest(
                        request_id="boom",
                        tokens=("a", "b"),
                        secret=watermark.secret.to_dict(),
                    )
                )

        response = asyncio.run(run())
        assert not response.ok
        assert "RuntimeError" in (response.error or "")
        assert "worker died" in (response.error or "")


class TestSyncFacade:
    def test_detect_and_detect_all_match_direct(self, watermark, decoy):
        detector = WatermarkDetector(watermark.secret)
        with SyncDetectionService() as service:
            single = service.detect(watermark.watermarked_histogram, watermark.secret)
            burst = service.detect_all(
                [watermark.watermarked_histogram, decoy] * 5, watermark.secret
            )
            stats = service.stats
        assert _verdict(single) == _verdict(
            detector.detect(watermark.watermarked_histogram)
        )
        for data, result in zip([watermark.watermarked_histogram, decoy] * 5, burst):
            assert _verdict(result) == _verdict(detector.detect(data))
        assert stats.requests == 11
        assert stats.largest_batch > 1  # the burst coalesced

    def test_start_and_close_are_idempotent(self, watermark):
        service = SyncDetectionService()
        service.start()
        service.start()
        fingerprint = service.register_secret(watermark.secret)
        result = service.detect(
            watermark.watermarked_histogram, secret_fingerprint=fingerprint
        )
        assert result.accepted
        service.close()
        service.close()


class TestStdioTransport:
    def test_serve_stdio_roundtrip_out_of_order_safe(self, watermark, decoy):
        requests = [
            DetectRequest(
                request_id=f"req-{index}",
                counts=data.as_dict(),
                secret=watermark.secret.to_dict(),
            )
            for index, data in enumerate(
                [watermark.watermarked_histogram, decoy, watermark.watermarked_histogram]
            )
        ]
        in_stream = io.StringIO(
            "".join(encode_line(request) + "\n" for request in requests)
            + "\nnot-json\n"  # blank + malformed lines must not kill the server
        )
        out_stream = io.StringIO()

        async def run():
            async with DetectionService(ServiceConfig(max_delay=0.01)) as service:
                return await serve_stdio(service, in_stream, out_stream)

        served = asyncio.run(run())
        assert served == 4  # 3 requests + 1 malformed line
        responses = {
            response.request_id: response
            for response in map(
                decode_response, out_stream.getvalue().strip().splitlines()
            )
        }
        assert len(responses) == 4
        assert responses["req-0"].accepted and responses["req-2"].accepted
        assert not responses["req-1"].accepted
        assert not responses["?"].ok  # the malformed line's failure response
        assert responses["req-0"].batch_size >= 2  # pipelined lines coalesced


class TestEmbedVerb:
    """The embed wire verb: generation requests through the same service."""

    def _counts(self):
        return {f"tok{i:03d}": 700 - 5 * i for i in range(50)}

    def test_embed_request_validation(self):
        from repro.service import EmbedRequest

        with pytest.raises(ServiceError):
            EmbedRequest(request_id="")  # no id
        with pytest.raises(ServiceError):
            EmbedRequest(request_id="x")  # neither tokens nor counts
        with pytest.raises(ServiceError):
            EmbedRequest(request_id="x", tokens=("a",), counts={"a": 1})
        with pytest.raises(ServiceError):
            EmbedRequest(request_id="x", counts={"a": 1}, return_tokens=True)
        with pytest.raises(ServiceError):
            EmbedRequest(
                request_id="x", counts={"a": 1}, config={"no_such_knob": 1}
            )

    def test_embed_codec_round_trip(self):
        from repro.service import EmbedRequest

        request = EmbedRequest(
            request_id="e-1",
            counts=self._counts(),
            config={"budget_percent": 1.5, "strategy": "greedy"},
            seed=9,
            secret_value=123456789,
        )
        decoded = decode_request(encode_line(request))
        assert decoded == request

    def test_embed_then_detect_round_trip(self):
        from repro.service import EmbedRequest

        with SyncDetectionService() as service:
            response = service.submit(
                EmbedRequest(request_id="e-2", counts=self._counts(), seed=3)
            )
            assert response.ok, response.error
            secret = response.watermark_secret()
            assert response.selected_pairs == len(secret.pairs) > 0
            verdict = service.detect(
                TokenHistogram.from_counts(response.counts), secret
            )
            assert verdict.accepted
            assert service.stats.embeds == 1

    def test_embed_is_reproducible_with_seed(self):
        from repro.service import EmbedRequest

        with SyncDetectionService() as service:
            first = service.submit(
                EmbedRequest(request_id="a", counts=self._counts(), seed=21)
            )
            second = service.submit(
                EmbedRequest(request_id="b", counts=self._counts(), seed=21)
            )
        assert first.ok and second.ok
        assert first.counts == second.counts
        assert first.secret == second.secret

    def test_embed_with_tokens_returns_edited_sequence(self):
        from repro.service import EmbedRequest

        tokens = tuple(
            generate_power_law_tokens(0.7, n_tokens=40, sample_size=3_000, rng=2)
        )
        with SyncDetectionService() as service:
            response = service.submit(
                EmbedRequest(
                    request_id="t-1", tokens=tokens, seed=5, return_tokens=True
                )
            )
        assert response.ok, response.error
        assert response.tokens is not None
        edited = TokenHistogram.from_tokens(list(response.tokens))
        assert edited.as_dict() == response.counts

    def test_embed_failure_is_embed_failure_response(self):
        from repro.service import EmbedRequest, EmbedResponse

        with SyncDetectionService() as service:
            response = service.submit(
                EmbedRequest(request_id="bad", counts={"only-one-token": 5}, seed=1)
            )
        assert isinstance(response, EmbedResponse)
        assert not response.ok
        assert "two distinct tokens" in (response.error or "")

    def test_mixed_burst_through_stdio_transport(self, watermark):
        from repro.service import EmbedRequest

        embed = EmbedRequest(request_id="embed-1", counts=self._counts(), seed=4)
        detect = DetectRequest(
            request_id="detect-1",
            counts=watermark.watermarked_histogram.as_dict(),
            secret=watermark.secret.to_dict(),
        )
        in_stream = io.StringIO(
            encode_line(embed) + "\n" + encode_line(detect) + "\n"
        )
        out_stream = io.StringIO()

        async def run():
            async with DetectionService(ServiceConfig(max_delay=0.01)) as service:
                return await serve_stdio(service, in_stream, out_stream)

        served = asyncio.run(run())
        assert served == 2
        responses = {
            response.request_id: response
            for response in map(
                decode_response, out_stream.getvalue().strip().splitlines()
            )
        }
        assert responses["detect-1"].ok and responses["detect-1"].accepted
        embed_response = responses["embed-1"]
        assert embed_response.ok
        verdict = WatermarkDetector(embed_response.watermark_secret()).detect(
            TokenHistogram.from_counts(embed_response.counts)
        )
        assert verdict.accepted
