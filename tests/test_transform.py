"""Unit tests for the dataset transformation (token add/remove) stage."""

from __future__ import annotations

import pytest

from repro.core.histogram import TokenHistogram
from repro.core.transform import (
    apply_deltas_to_tokens,
    transform_dataset,
    verify_transformation,
)
from repro.exceptions import GenerationError


class TestApplyDeltas:
    def test_removals_and_additions_change_counts(self, rng):
        tokens = ["a"] * 30 + ["b"] * 20 + ["c"] * 10
        edited = apply_deltas_to_tokens(tokens, {"a": -5, "c": +3}, rng=rng)
        histogram = TokenHistogram.from_tokens(edited)
        assert histogram.frequency("a") == 25
        assert histogram.frequency("b") == 20
        assert histogram.frequency("c") == 13
        assert len(edited) == len(tokens) - 5 + 3

    def test_no_deltas_is_identity_of_counts(self, rng):
        tokens = ["x", "y", "x"]
        edited = apply_deltas_to_tokens(tokens, {}, rng=rng)
        assert sorted(edited) == sorted(tokens)

    def test_removing_too_many_raises(self, rng):
        with pytest.raises(GenerationError):
            apply_deltas_to_tokens(["a"] * 3, {"a": -4}, rng=rng)

    def test_insertions_are_spread_not_appended(self):
        # With many insertions into a long sequence, at least one must land
        # away from the tail (probability of failure is negligible).
        tokens = ["a"] * 200
        edited = apply_deltas_to_tokens(tokens, {"b": 20}, rng=3)
        tail = edited[-20:]
        assert any(token != "b" for token in tail)

    def test_new_token_can_be_introduced(self, rng):
        edited = apply_deltas_to_tokens(["a", "a"], {"z": 2}, rng=rng)
        assert TokenHistogram.from_tokens(edited).frequency("z") == 2


class TestTransformDataset:
    def test_transformed_tokens_match_target_histogram(self, skewed_tokens, rng):
        original = TokenHistogram.from_tokens(skewed_tokens)
        top, low = original.tokens[0], original.tokens[-1]
        target = original.with_updates({top: +4, low: -1})
        edited = transform_dataset(skewed_tokens, original, target, rng=rng)
        assert verify_transformation(edited, target)

    def test_verify_transformation_detects_mismatch(self):
        original = TokenHistogram.from_tokens(["a", "a", "b"])
        assert not verify_transformation(["a", "b"], original)

    def test_deterministic_given_seed(self, skewed_tokens):
        original = TokenHistogram.from_tokens(skewed_tokens)
        target = original.with_updates({original.tokens[0]: +2})
        first = transform_dataset(skewed_tokens, original, target, rng=77)
        second = transform_dataset(skewed_tokens, original, target, rng=77)
        assert first == second
