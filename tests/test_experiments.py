"""End-to-end tests for the experiment orchestration engine.

Pins the subsystem's three contracts:

* **resume** — an immediately repeated run performs *zero* task
  executions (everything is served from the content-addressed cache),
  and deleting one artifact re-executes exactly that task;
* **worker parity** — ``workers=N`` produces artifacts and reports
  bit-identical to a serial run (task RNG streams are keyed by task
  fingerprint, never by schedule);
* **reporting** — the rendered Markdown/JSON is deterministic and
  carries the paper-mapped sections.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.experiments import (
    CacheError,
    ExperimentSpec,
    RunCache,
    build_plan,
    build_report,
    load_artifacts,
    render_markdown,
    run_experiment,
    validate_plan,
    write_report,
)
from repro.experiments.plan import Task, task_fingerprint

SPEC_DIR = Path(__file__).resolve().parent.parent / "experiments" / "specs"


def _tiny_spec(**overrides) -> ExperimentSpec:
    payload = {
        "name": "tiny",
        "seed": 11,
        "datasets": [
            {
                "name": "pl",
                "kind": "power-law",
                "alpha": 0.5,
                "tokens": 50,
                "samples": 20_000,
            }
        ],
        "generation": {"budget_percent": 2.0, "modulus_cap": 19},
        "secrets_per_dataset": 1,
        "attacks": [{"kind": "sampling", "strengths": [0.5], "repetitions": 2}],
        "thresholds": [0, 2],
        "analyses": ["robustness", "fpr_curve", "distortion", "baselines"],
        "baselines": ["wm-rvs"],
        "fpr_trials": 200,
    }
    payload.update(overrides)
    return ExperimentSpec.from_dict(payload)


@pytest.fixture(scope="module")
def tiny_run(tmp_path_factory):
    """One executed tiny run, shared by the read-only assertions."""
    run_dir = tmp_path_factory.mktemp("experiment") / "run"
    spec = _tiny_spec()
    outcome = run_experiment(spec, run_dir, workers=1)
    return spec, run_dir, outcome


class TestPlan:
    def test_plan_covers_every_kind_and_validates(self):
        plan = build_plan(_tiny_spec())
        validate_plan(plan)
        counts = plan.counts()
        assert counts["dataset"] == 1
        assert counts["embed"] == 1
        assert counts["attack"] == 1
        assert counts["detect"] == 2  # no-attack row + the sampling cell
        assert counts["baseline"] == 1
        # robustness + baselines summaries, fpr + distortion per secret.
        assert counts["analysis"] == 4

    def test_levels_respect_dependencies(self):
        plan = build_plan(_tiny_spec())
        position = {}
        for index, level in enumerate(plan.levels()):
            for task in level:
                position[task.task_id] = index
        for task in plan:
            for dep in task.deps:
                assert position[dep] < position[task.task_id]

    def test_fingerprints_are_content_addressed(self):
        base = build_plan(_tiny_spec()).by_id()
        reseeded = build_plan(_tiny_spec(seed=12)).by_id()
        assert base.keys() == reseeded.keys()
        for task_id in base:
            assert base[task_id].fingerprint != reseeded[task_id].fingerprint

    def test_editing_the_grid_invalidates_only_the_subtree(self):
        base = build_plan(_tiny_spec()).by_id()
        edited = build_plan(
            _tiny_spec(attacks=[{"kind": "sampling", "strengths": [0.9], "repetitions": 2}])
        ).by_id()
        # Upstream of the edit: identical fingerprints, cache reusable.
        assert base["dataset:pl"].fingerprint == edited["dataset:pl"].fingerprint
        assert base["embed:pl"].fingerprint == edited["embed:pl"].fingerprint
        # The edited attack cell and its detect row changed.
        assert (
            base["attack:pl:s0:sampling.0:0.5"].fingerprint
            != edited["attack:pl:s0:sampling.0:0.9"].fingerprint
        )

    def test_same_cell_in_two_attack_entries_plans_cleanly(self):
        """Two attack entries sharing kind+strength (differing only in
        repetitions) must get distinct task ids, not a planner crash."""
        plan = build_plan(
            _tiny_spec(
                attacks=[
                    {"kind": "sampling", "strengths": [0.5], "repetitions": 1},
                    {"kind": "sampling", "strengths": [0.5], "repetitions": 3},
                ]
            )
        )
        validate_plan(plan)
        attack_tasks = plan.of_kind("attack")
        assert len(attack_tasks) == 2
        assert len({task.task_id for task in attack_tasks}) == 2
        assert len({task.fingerprint for task in attack_tasks}) == 2

    def test_validate_plan_rejects_stale_fingerprints(self):
        plan = build_plan(_tiny_spec())
        forged = plan.tasks[:-1] + (
            Task(
                task_id=plan.tasks[-1].task_id,
                kind=plan.tasks[-1].kind,
                params=plan.tasks[-1].params,
                deps=plan.tasks[-1].deps,
                fingerprint="0" * 64,
            ),
        )
        with pytest.raises(ConfigurationError):
            validate_plan(
                type(plan)(
                    spec_fingerprint=plan.spec_fingerprint,
                    seed=plan.seed,
                    tasks=forged,
                )
            )

    def test_task_fingerprint_depends_on_dependencies(self):
        base = task_fingerprint("detect", {"x": 1}, ("a" * 64,), 0)
        assert base != task_fingerprint("detect", {"x": 1}, ("b" * 64,), 0)
        assert base != task_fingerprint("detect", {"x": 2}, ("a" * 64,), 0)
        assert base != task_fingerprint("embed", {"x": 1}, ("a" * 64,), 0)


class TestCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path / "run")
        task = build_plan(_tiny_spec()).tasks[0]
        cache.store(task, {"value": 1}, seconds=0.5)
        assert cache.has(task.fingerprint)
        record = cache.load(task.fingerprint)
        assert record["task_id"] == task.task_id
        assert record["result"] == {"value": 1}
        assert cache.load_result(task.fingerprint) == {"value": 1}

    def test_missing_and_corrupt_artifacts_raise(self, tmp_path):
        cache = RunCache(tmp_path / "run")
        with pytest.raises(CacheError):
            cache.load("f" * 64)
        cache.artifact_dir.mkdir(parents=True)
        bad = cache.artifact_dir / ("e" * 64 + ".json")
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(CacheError):
            cache.load("e" * 64)

    def test_read_only_operations_create_no_directories(self, tmp_path):
        """A mistyped run_dir must not leave stray directories behind."""
        missing = tmp_path / "typo-run"
        cache = RunCache(missing)
        assert not cache.has("f" * 64)
        assert list(cache.fingerprints()) == []
        with pytest.raises(CacheError):
            build_report(missing)
        assert not missing.exists()

    def test_fingerprint_mismatch_detected(self, tmp_path):
        cache = RunCache(tmp_path / "run")
        task = build_plan(_tiny_spec()).tasks[0]
        cache.store(task, {"value": 1})
        # A renamed artifact (wrong key for its content) must not be served.
        moved = cache.artifact_dir / ("d" * 64 + ".json")
        (cache.artifact_dir / f"{task.fingerprint}.json").rename(moved)
        with pytest.raises(CacheError):
            cache.load("d" * 64)

    def test_report_on_non_run_directory_raises(self, tmp_path):
        with pytest.raises(CacheError):
            build_report(tmp_path)


class TestExecutor:
    def test_first_run_executes_everything(self, tiny_run):
        _spec, _run_dir, outcome = tiny_run
        assert outcome.cached_total == 0
        assert outcome.executed["embed"] == 1
        assert outcome.executed["detect"] == 2

    def test_repeat_run_is_pure_cache(self, tiny_run):
        spec, run_dir, outcome = tiny_run
        again = run_experiment(spec, run_dir, workers=1)
        # The acceptance contract: zero embed/detect (indeed zero any)
        # task executions on an immediately repeated run.
        assert again.executed == {}
        assert again.executed_total == 0
        assert again.cached_total == outcome.executed_total

    def test_resume_reexecutes_only_the_missing_task(self, tiny_run):
        spec, run_dir, _outcome = tiny_run
        cache = RunCache(run_dir)
        manifest = cache.read_manifest()
        detect_entries = [
            entry for entry in manifest["tasks"] if entry["kind"] == "detect"
        ]
        victim = detect_entries[0]
        (cache.artifact_dir / f"{victim['fingerprint']}.json").unlink()
        resumed = run_experiment(spec, run_dir, workers=1)
        assert resumed.executed == {"detect": 1}

    def test_run_log_written(self, tiny_run):
        spec, run_dir, _outcome = tiny_run
        run_experiment(spec, run_dir, workers=1)
        log = RunCache(run_dir).read_run_log()
        assert log is not None
        assert log["executed_total"] == 0
        assert log["spec_fingerprint"] == spec.fingerprint()

    def test_invalid_worker_count_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            run_experiment(_tiny_spec(), tmp_path / "run", workers=0)


class TestWorkerParity:
    def test_sharded_run_is_bit_identical_to_serial(self, tiny_run, tmp_path):
        """--workers N parity: artifacts and reports match byte for byte."""
        spec, serial_dir, _outcome = tiny_run
        sharded_dir = tmp_path / "sharded"
        outcome = run_experiment(spec, sharded_dir, workers=3)
        assert outcome.executed_total > 0
        serial_artifacts = sorted(
            path.name for path in (Path(serial_dir) / "artifacts").iterdir()
        )
        sharded_artifacts = sorted(
            path.name for path in (sharded_dir / "artifacts").iterdir()
        )
        assert serial_artifacts == sharded_artifacts
        for name in serial_artifacts:
            serial_record = json.loads(
                (Path(serial_dir) / "artifacts" / name).read_text(encoding="utf-8")
            )
            sharded_record = json.loads(
                (sharded_dir / "artifacts" / name).read_text(encoding="utf-8")
            )
            # Results (and params/ids) are identical; only wall-clock
            # `seconds` may differ between schedules.
            assert serial_record["result"] == sharded_record["result"]
            assert serial_record["task_id"] == sharded_record["task_id"]
        serial_json, serial_md = write_report(serial_dir)
        sharded_json, sharded_md = write_report(sharded_dir)
        assert serial_json.read_bytes() == sharded_json.read_bytes()
        assert serial_md.read_bytes() == sharded_md.read_bytes()


class TestReport:
    def test_report_sections_present(self, tiny_run):
        _spec, run_dir, _outcome = tiny_run
        report = build_report(run_dir)
        assert report["experiment"] == "tiny"
        assert report["watermarks"], "embed summaries must be reported"
        assert {row["attack"] for row in report["robustness"]} == {"none", "sampling"}
        assert "pl / secret 0" in report["fpr_curve"]
        methods = {row["method"] for row in report["baseline_comparison"]}
        assert methods == {"freqywm", "wm-rvs"}

    def test_fpr_rows_are_consistent(self, tiny_run):
        _spec, run_dir, _outcome = tiny_run
        report = build_report(run_dir)
        for rows in report["fpr_curve"].values():
            for row in rows:
                assert 0.0 <= row["exact_probability"] <= 1.0
                assert row["exact_probability"] <= row["markov_bound"] + 1e-12
                assert 0.0 <= row["empirical_rate"] <= 1.0

    def test_markdown_rendering(self, tiny_run):
        _spec, run_dir, _outcome = tiny_run
        markdown = render_markdown(build_report(run_dir))
        assert "# Experiment report: tiny" in markdown
        assert "## Robustness vs attack strength" in markdown
        assert "## False-positive curve" in markdown
        assert "## Baseline comparison" in markdown
        assert "| dataset |" in markdown

    def test_write_report_is_idempotent(self, tiny_run):
        _spec, run_dir, _outcome = tiny_run
        first_json, first_md = write_report(run_dir)
        before = (first_json.read_bytes(), first_md.read_bytes())
        second_json, second_md = write_report(run_dir)
        assert (second_json.read_bytes(), second_md.read_bytes()) == before

    def test_load_artifacts_keyed_by_task_id(self, tiny_run):
        _spec, run_dir, _outcome = tiny_run
        artifacts = load_artifacts(run_dir)
        assert "embed:pl" in artifacts
        assert artifacts["embed:pl"]["kind"] == "embed"


class TestEdgePaths:
    """Uniform (no-embed) datasets, destroy attacks, the WM-OBT baseline."""

    @pytest.fixture(scope="class")
    def edge_run(self, tmp_path_factory):
        spec = ExperimentSpec.from_dict(
            {
                "name": "edge",
                "seed": 5,
                "datasets": [
                    {"name": "flat", "kind": "uniform", "tokens": 20, "samples": 1000},
                    {
                        "name": "pl",
                        "kind": "power-law",
                        "alpha": 0.6,
                        "tokens": 40,
                        "samples": 8000,
                    },
                ],
                "generation": {"budget_percent": 2.0, "modulus_cap": 7},
                "attacks": [
                    {"kind": "boundary", "strengths": [1.0], "repetitions": 1},
                    {"kind": "percentage", "strengths": [1.0], "repetitions": 1},
                ],
                "thresholds": [0],
                "analyses": ["robustness", "fpr_curve", "distortion", "baselines"],
                "baselines": ["wm-obt"],
                "fpr_trials": 50,
            }
        )
        run_dir = tmp_path_factory.mktemp("experiment-edge") / "run"
        run_experiment(spec, run_dir, workers=1)
        return build_report(run_dir)

    def test_uniform_dataset_is_a_negative_control(self, edge_run):
        """FreqyWM cannot embed in a flat histogram: zero pairs, never
        detected — the degenerate regime the paper calls out."""
        flat_rows = [row for row in edge_run["robustness"] if row["dataset"] == "flat"]
        assert flat_rows, "the uniform dataset must still produce detect rows"
        assert all(row["total_pairs"] == 0 for row in flat_rows)
        assert all(not row["detected"] for row in flat_rows)
        # The FPR analysis degrades gracefully to a pair-less row.
        assert edge_run["fpr_curve"]["flat / secret 0"] == [
            {"pairs": 0, "threshold": 0}
        ]

    def test_destroy_attack_kinds_produce_rows(self, edge_run):
        attacks = {row["attack"] for row in edge_run["robustness"]}
        assert {"none", "boundary", "percentage"} <= attacks

    def test_wm_obt_baseline_compared(self, edge_run):
        methods = {row["method"] for row in edge_run["baseline_comparison"]}
        assert methods == {"freqywm", "wm-obt"}


class TestBundledSmokeSpec:
    def test_bundled_smoke_spec_runs_and_caches(self, tmp_path):
        """The CI experiment-smoke contract, exercised at test scale."""
        spec = ExperimentSpec.load(SPEC_DIR / "smoke.json")
        run_dir = tmp_path / "smoke-run"
        first = run_experiment(spec, run_dir, workers=2)
        assert first.executed_total > 0
        second = run_experiment(spec, run_dir, workers=2)
        assert second.executed_total == 0
        json_path, md_path = write_report(run_dir)
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["experiment"] == "smoke"
        assert md_path.read_text(encoding="utf-8").startswith(
            "# Experiment report: smoke"
        )


class TestCli:
    def test_experiment_run_and_report(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        _tiny_spec().save(spec_path)
        run_dir = tmp_path / "run"
        exit_code = main(
            [
                "--json",
                "experiment",
                "run",
                str(spec_path),
                "--out",
                str(run_dir),
                "--workers",
                "2",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed_total"] > 0
        assert (run_dir / "report.md").exists()

        # Immediate rerun: everything cached.
        exit_code = main(
            ["--json", "experiment", "run", str(spec_path), "--out", str(run_dir)]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed_total"] == 0
        assert payload["executed"] == {}

        exit_code = main(["experiment", "report", str(run_dir)])
        assert exit_code == 0
        assert "# Experiment report: tiny" in capsys.readouterr().out

    def test_experiment_report_on_missing_run_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(["experiment", "report", str(tmp_path)])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err
