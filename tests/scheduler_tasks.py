"""Task functions shared by the scheduler tests and spawned workers.

Kept out of the test modules so a ``freqywm worker`` subprocess can load
the same registrations with ``--import scheduler_tasks`` (the tests put
this directory on the worker's ``PYTHONPATH``). Every name is prefixed
``schedtest.`` to stay clear of the built-in task registry.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from contextlib import contextmanager

from repro.exceptions import DetectionError
from repro.exec.scheduler import register_initializer, register_task_function


def echo(_state, payload):
    """Return the payload unchanged."""
    return payload


def sleepy_echo(_state, payload):
    """Sleep ``payload[0]`` seconds, then return ``payload[1]``."""
    delay, value = payload
    time.sleep(delay)
    return value


def die(_state, _payload):
    """Kill the executing worker process outright (crash simulation)."""
    os.kill(os.getpid(), signal.SIGKILL)


def die_once(_state, payload):
    """Crash on the first call (sentinel file absent), succeed on retry."""
    sentinel = str(payload)
    if os.path.exists(sentinel):
        return "survived"
    with open(sentinel, "w"):
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def fail(_state, payload):
    """Raise a typed library error with the payload as its message."""
    raise DetectionError(str(payload))


def with_state(state, payload):
    """Return the worker-local state alongside the payload."""
    return (state, payload)


def make_state(tag):
    """Initializer: a string stamped with the building process's pid."""
    return f"state:{tag}:{os.getpid()}"


register_task_function("schedtest.echo", echo)
register_task_function("schedtest.sleepy", sleepy_echo)
register_task_function("schedtest.die", die)
register_task_function("schedtest.die_once", die_once)
register_task_function("schedtest.fail", fail)
register_task_function("schedtest.with_state", with_state)
register_initializer("schedtest.state", make_state)


@contextmanager
def spawn_worker(socket_path, extra_env=None):
    """Run ``freqywm worker --socket socket_path`` until the block exits.

    Waits for the ``listening on ...`` readiness line on stderr before
    yielding, and terminates the process afterwards. The worker imports
    this module, so the ``schedtest.*`` registrations above are served.
    ``extra_env`` adds/overrides environment variables for the worker
    (the mixed-fleet tests lower ``FREQYWM_WIRE_CEILING`` through it).
    """
    tests_dir = os.path.dirname(os.path.abspath(__file__))
    src_dir = os.path.join(os.path.dirname(tests_dir), "src")
    env = dict(os.environ)
    if extra_env:
        env.update(extra_env)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir, tests_dir] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--socket",
            str(socket_path),
            "--import",
            "scheduler_tasks",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = process.stderr.readline()
        assert "listening on" in line, f"worker failed to start: {line!r}"
        yield process
    finally:
        process.terminate()
        process.wait(timeout=10)
