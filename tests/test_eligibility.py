"""Unit tests for eligible-pair generation."""

from __future__ import annotations

import math

import pytest

from repro.core.eligibility import (
    EligiblePair,
    eligible_pair_index,
    generate_eligible_pairs,
    iter_candidate_pairs,
)
from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenPair
from repro.datasets.synthetic import uniform_histogram
from repro.exceptions import EligibilityError

SECRET = 987654321
Z = 131


class TestCandidateEnumeration:
    def test_all_unordered_pairs_enumerated(self, running_example_histogram):
        pairs = list(iter_candidate_pairs(running_example_histogram))
        n = len(running_example_histogram)
        assert len(pairs) == n * (n - 1) // 2

    def test_first_member_has_higher_or_equal_frequency(self, running_example_histogram):
        for first, second in iter_candidate_pairs(running_example_histogram):
            assert running_example_histogram.frequency(first) >= running_example_histogram.frequency(second)

    def test_max_candidates_caps_scan(self, skewed_histogram):
        limited = list(iter_candidate_pairs(skewed_histogram, max_candidates=10))
        assert len(limited) == 10 * 9 // 2


class TestEligibilityRule:
    def test_eligible_pairs_respect_boundary_rule(self, running_example_histogram):
        eligible = generate_eligible_pairs(running_example_histogram, SECRET, Z)
        bounds = running_example_histogram.boundaries()
        for item in eligible:
            needed = math.ceil(item.modulus / 2)
            for token in (item.pair.first, item.pair.second):
                assert bounds[token].upper >= needed
                assert bounds[token].lower >= needed
            assert item.modulus >= 2

    def test_modulus_matches_hash_construction(self, running_example_histogram):
        eligible = generate_eligible_pairs(running_example_histogram, SECRET, Z)
        for item in eligible:
            assert item.modulus == pair_modulus(item.pair.first, item.pair.second, SECRET, Z)

    def test_remainder_and_difference_consistent(self, running_example_histogram):
        eligible = generate_eligible_pairs(running_example_histogram, SECRET, Z)
        for item in eligible:
            difference = running_example_histogram.frequency(
                item.pair.first
            ) - running_example_histogram.frequency(item.pair.second)
            assert item.frequency_difference == difference
            assert item.remainder == difference % item.modulus

    def test_uniform_histogram_has_no_eligible_pairs(self):
        histogram = uniform_histogram(n_tokens=50, count_per_token=100)
        assert generate_eligible_pairs(histogram, SECRET, Z) == []

    def test_single_token_histogram(self):
        histogram = TokenHistogram.from_counts({"only": 10})
        assert generate_eligible_pairs(histogram, SECRET, Z) == []

    def test_excluded_tokens_never_eligible(self, skewed_histogram):
        top_token = skewed_histogram.tokens[0]
        eligible = generate_eligible_pairs(
            skewed_histogram, SECRET, Z, excluded_tokens=[top_token]
        )
        assert all(not item.pair.contains(top_token) for item in eligible)

    def test_rejects_invalid_modulus_cap(self, skewed_histogram):
        with pytest.raises(EligibilityError):
            generate_eligible_pairs(skewed_histogram, SECRET, 1)

    def test_deterministic_order(self, skewed_histogram):
        first = generate_eligible_pairs(skewed_histogram, SECRET, Z)
        second = generate_eligible_pairs(skewed_histogram, SECRET, Z)
        assert first == second

    def test_more_skew_more_eligible_pairs(self):
        from repro.datasets.synthetic import generate_power_law_histogram

        flat = generate_power_law_histogram(0.05, n_tokens=100, sample_size=50_000)
        skewed = generate_power_law_histogram(0.7, n_tokens=100, sample_size=50_000)
        assert len(generate_eligible_pairs(skewed, SECRET, Z)) > len(
            generate_eligible_pairs(flat, SECRET, Z)
        )

    def test_smaller_modulus_cap_more_eligible_pairs(self, skewed_histogram):
        small = generate_eligible_pairs(skewed_histogram, SECRET, 10)
        large = generate_eligible_pairs(skewed_histogram, SECRET, 1031)
        assert len(small) >= len(large)


class TestCostAndIndex:
    def test_cost_below_half_modulus(self):
        item = EligiblePair(
            pair=TokenPair("a", "b"), modulus=100, remainder=30, frequency_difference=130
        )
        assert item.cost == 30

    def test_cost_above_half_modulus_uses_growth(self):
        item = EligiblePair(
            pair=TokenPair("a", "b"), modulus=100, remainder=80, frequency_difference=180
        )
        assert item.cost == 20

    def test_cost_zero_when_aligned(self):
        item = EligiblePair(
            pair=TokenPair("a", "b"), modulus=50, remainder=0, frequency_difference=100
        )
        assert item.cost == 0

    def test_index_lookup(self, running_example_histogram):
        eligible = generate_eligible_pairs(running_example_histogram, SECRET, Z)
        index = eligible_pair_index(eligible)
        for item in eligible:
            assert index[item.pair] is item
