"""Unit tests for token canonicalisation and pair handling."""

from __future__ import annotations

import pytest

from repro.core.tokens import (
    MULTI_ATTRIBUTE_SEPARATOR,
    TokenPair,
    as_token_pair,
    canonical_token,
    compose_token,
    decompose_token,
    unique_tokens,
)


class TestCanonicalToken:
    def test_string_passthrough(self):
        assert canonical_token("youtube.com") == "youtube.com"

    def test_bytes_decoded(self):
        assert canonical_token(b"abc") == "abc"

    def test_integer(self):
        assert canonical_token(42) == "42"

    def test_integral_float_collapses_to_int(self):
        assert canonical_token(42.0) == "42"

    def test_non_integral_float(self):
        assert canonical_token(3.5) == "3.5"

    def test_tuple_composition_is_injective(self):
        assert canonical_token(("a", "bc")) != canonical_token(("ab", "c"))

    def test_list_same_as_tuple(self):
        assert canonical_token(["a", "b"]) == canonical_token(("a", "b"))


class TestComposeDecompose:
    def test_roundtrip(self):
        token = compose_token(("37", "Private"))
        assert decompose_token(token) == ("37", "Private")

    def test_separator_not_printable(self):
        assert MULTI_ATTRIBUTE_SEPARATOR not in "37Private"

    def test_single_attribute(self):
        assert decompose_token(compose_token(("x",))) == ("x",)


class TestTokenPair:
    def test_rejects_identical_tokens(self):
        with pytest.raises(ValueError):
            TokenPair("a", "a")

    def test_ordered_puts_higher_frequency_first(self):
        pair = TokenPair.ordered("low", "high", 10, 500)
        assert pair.first == "high"
        assert pair.second == "low"

    def test_ordered_tie_breaks_lexicographically(self):
        pair = TokenPair.ordered("beta", "alpha", 10, 10)
        assert (pair.first, pair.second) == ("alpha", "beta")
        # And it is deterministic regardless of argument order.
        assert TokenPair.ordered("alpha", "beta", 10, 10) == pair

    def test_contains_and_other(self):
        pair = TokenPair("a", "b")
        assert pair.contains("a") and pair.contains("b")
        assert pair.other("a") == "b"
        assert pair.other("b") == "a"
        with pytest.raises(KeyError):
            pair.other("c")

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {TokenPair("a", "b"): 1}
        assert mapping[TokenPair("a", "b")] == 1

    def test_as_tuple(self):
        assert TokenPair("a", "b").as_tuple() == ("a", "b")


class TestHelpers:
    def test_unique_tokens_preserves_first_seen_order(self):
        assert unique_tokens(["b", "a", "b", "c", "a"]) == ("b", "a", "c")

    def test_as_token_pair_from_tuple(self):
        pair = as_token_pair(("x", "y"))
        assert isinstance(pair, TokenPair)
        assert pair.as_tuple() == ("x", "y")

    def test_as_token_pair_passthrough(self):
        pair = TokenPair("x", "y")
        assert as_token_pair(pair) is pair
