"""Unit tests for the keyed hash construction behind ``s_ij``."""

from __future__ import annotations

import pytest

from repro.core.hashing import (
    DEFAULT_SECURITY_BITS,
    digest_to_int,
    generate_secret,
    keyed_fingerprint,
    pair_modulus,
    sha256_hash,
)


class TestSha256:
    def test_known_vector(self):
        digest = sha256_hash(b"abc")
        assert digest.hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_digest_to_int_is_big_endian(self):
        assert digest_to_int(b"\x01\x00") == 256


class TestPairModulus:
    def test_deterministic(self):
        a = pair_modulus("youtube.com", "instagram.com", secret=12345, z=131)
        b = pair_modulus("youtube.com", "instagram.com", secret=12345, z=131)
        assert a == b

    def test_range(self):
        for z in (2, 17, 131, 1031):
            value = pair_modulus("a", "b", secret=99, z=z)
            assert 0 <= value < z

    def test_order_sensitive(self):
        forward = pair_modulus("a", "b", secret=7, z=10_000)
        backward = pair_modulus("b", "a", secret=7, z=10_000)
        assert forward != backward

    def test_secret_sensitive(self):
        assert pair_modulus("a", "b", secret=1, z=10_000) != pair_modulus(
            "a", "b", secret=2, z=10_000
        )

    def test_rejects_small_z(self):
        with pytest.raises(ValueError):
            pair_modulus("a", "b", secret=1, z=1)

    def test_concatenation_is_unambiguous(self):
        # "ab" || "c" must not collide with "a" || "bc".
        assert pair_modulus("ab", "c", secret=5, z=1 << 60) != pair_modulus(
            "a", "bc", secret=5, z=1 << 60
        )


class TestSecrets:
    def test_generate_secret_entropy_bits(self):
        secret = generate_secret(64, rng=3)
        assert 0 <= secret < (1 << 64)

    def test_generate_secret_reproducible_with_seed(self):
        assert generate_secret(128, rng=42) == generate_secret(128, rng=42)

    def test_generate_secret_default_bits(self):
        secret = generate_secret()
        assert secret < (1 << DEFAULT_SECURITY_BITS)

    def test_generate_secret_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            generate_secret(0)

    def test_os_random_secrets_differ(self):
        assert generate_secret(128) != generate_secret(128)


class TestFingerprint:
    def test_depends_on_key_and_fields(self):
        base = keyed_fingerprint(1, "a", "b")
        assert base != keyed_fingerprint(2, "a", "b")
        assert base != keyed_fingerprint(1, "a", "c")
        assert base == keyed_fingerprint(1, "a", "b")

    def test_hex_string(self):
        fingerprint = keyed_fingerprint(9, "x")
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # must parse as hex
