"""The unified telemetry plane: spans, metrics, logging, profiling.

Covers the ``repro.obs`` package end to end — feature gating, span
recording and cross-process stitching (local pool and real ``freqywm
worker`` subprocesses), the metrics registry's field-for-field parity
with the legacy stats objects, both exposition formats, the ``stats``
wire verb, structured logging, the slow-task profiler, the trace
report renderer, and the two CI gate tools
(``tools/check_telemetry.py`` and the tail-aware benchmark helpers).
"""

from __future__ import annotations

import asyncio
import gc
import io
import json
import logging as pylogging
import os
import sys
from pathlib import Path

import pytest

import scheduler_tasks
from repro.exceptions import ConfigurationError, ReproError, ServiceError
from repro.exec.policy import ExecutionPolicy
from repro.exec.remote import RemoteScheduler
from repro.exec.scheduler import (
    LocalScheduler,
    SchedulerStats,
    TaskSpec,
    run_task,
)
from repro.experiments import load_spec, run_experiment
from repro.experiments.executor import TELEMETRY_RELPATH
from repro.obs import logging as obs_logging
from repro.obs import trace as obs_trace
from repro.obs.logging import (
    configure as configure_logging,
    get_logger,
    log_record,
    parse_log_env,
)
from repro.obs.metrics import (
    MetricsRegistry,
    registry as metrics_registry,
)
from repro.obs.profile import (
    PROFILE_THRESHOLD_ENV,
    maybe_profile,
    profile_threshold,
    top_frames,
)
from repro.obs.report import (
    SPANS_RELPATH,
    aggregate,
    build_tree,
    load_spans,
    orphan_spans,
    render_report,
)
from repro.obs.trace import (
    TELEMETRY_FEATURES,
    configure_telemetry,
    current_context,
    metrics_active,
    parse_telemetry,
    span,
    spans_active,
    tracer,
)
from repro.service.service import DetectionService, ServiceStats
from repro.service.wire import (
    StatsRequest,
    StatsResponse,
    TaskRequest,
    TaskResult,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import check_telemetry  # noqa: E402
from bench_utils import percentile  # noqa: E402


@pytest.fixture(autouse=True)
def _restore_obs_state():
    """Telemetry/logging state is process-global; leave it as found (off)."""
    yield
    configure_telemetry(None)
    tracer().reset()
    obs_logging.reset()


def _echo_specs(payloads):
    return [
        TaskSpec(
            fingerprint=f"echo-{index}",
            function="schedtest.echo",
            payload=payload,
        )
        for index, payload in enumerate(payloads)
    ]


# --------------------------------------------------------------------------- #
# Feature gating
# --------------------------------------------------------------------------- #


class TestTelemetryGating:
    @pytest.mark.parametrize("value", [None, "", "  ", "off", "OFF"])
    def test_none_empty_and_off_disable_everything(self, value):
        assert parse_telemetry(value) == frozenset()

    def test_all_enables_every_feature(self):
        assert parse_telemetry("all") == frozenset(TELEMETRY_FEATURES)

    def test_comma_list_with_whitespace_and_case(self):
        assert parse_telemetry(" Spans , METRICS ") == {"spans", "metrics"}

    def test_unknown_feature_is_rejected_loudly(self):
        with pytest.raises(ConfigurationError, match="spams"):
            parse_telemetry("spans,spams")

    def test_configure_flips_the_active_predicates(self):
        configure_telemetry("spans")
        assert spans_active() and not metrics_active()
        configure_telemetry("metrics")
        assert metrics_active() and not spans_active()
        configure_telemetry(None)
        assert not spans_active() and not metrics_active()

    def test_configure_accepts_an_iterable_of_names(self):
        assert configure_telemetry(["spans", "profile"]) == {"spans", "profile"}

    def test_execution_policy_validates_telemetry_at_construction(self):
        assert ExecutionPolicy(telemetry="spans,metrics").telemetry == "spans,metrics"
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(telemetry="spanz")


# --------------------------------------------------------------------------- #
# Span recording
# --------------------------------------------------------------------------- #


class TestSpans:
    def test_disabled_span_records_nothing_and_has_no_context(self):
        configure_telemetry(None)
        with span("noop", attributes={"ignored": 1}) as inert:
            inert.set_attribute("also", "ignored")
            assert inert.context is None
        assert tracer().buffered == 0

    def test_nested_spans_share_a_trace_and_parent_correctly(self):
        configure_telemetry("spans")
        with span("root") as root:
            with span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        records = tracer().drain()
        # The child finishes (and is buffered) before the root.
        assert [record["name"] for record in records] == ["child", "root"]
        child_record, root_record = records
        assert root_record["parent"] is None
        assert child_record["parent"] == root_record["span"]
        for record in records:
            for key in check_telemetry.SPAN_KEYS:
                assert key in record
            assert record["status"] == "ok"
            assert record["pid"] == os.getpid()
            assert record["duration"] >= 0

    def test_current_context_tracks_the_active_span(self):
        configure_telemetry("spans")
        assert current_context() is None
        with span("outer") as outer:
            assert current_context() == outer.context
        assert current_context() is None

    def test_exception_marks_the_span_error_and_propagates(self):
        configure_telemetry("spans")
        with pytest.raises(ValueError, match="boom"):
            with span("doomed"):
                raise ValueError("boom")
        (record,) = tracer().drain()
        assert record["status"] == "error"
        assert record["attrs"]["error_type"] == "ValueError"

    def test_explicit_parent_forces_recording_while_disabled(self):
        # The worker-process contract: the dispatching client asked for
        # this trace, so the span records even with telemetry off here.
        configure_telemetry(None)
        parent = ("f" * 32, "a" * 16)
        with span("task:remote", parent=parent):
            pass
        (record,) = tracer().drain()
        assert record["trace"] == "f" * 32
        assert record["parent"] == "a" * 16

    def test_ring_buffer_drops_oldest_and_counts_losses(self, monkeypatch):
        configure_telemetry("spans")
        monkeypatch.setattr(obs_trace, "SPAN_BUFFER_CAP", 3)
        for index in range(5):
            with span(f"burst-{index}"):
                pass
        assert tracer().buffered == 3
        assert tracer().dropped == 2
        names = [record["name"] for record in tracer().drain()]
        assert names == ["burst-2", "burst-3", "burst-4"]

    def test_sink_streams_each_span_as_one_json_line(self, tmp_path):
        configure_telemetry("spans")
        sink = tmp_path / "telemetry" / "spans.jsonl"
        tracer().set_sink(sink)
        with span("a"):
            pass
        with span("b"):
            pass
        lines = sink.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_attaching_a_sink_flushes_already_buffered_spans(self, tmp_path):
        configure_telemetry("spans")
        with span("early"):
            pass
        sink = tmp_path / "spans.jsonl"
        tracer().set_sink(sink)
        assert json.loads(sink.read_text(encoding="utf-8"))["name"] == "early"

    def test_drain_empties_and_ingest_filters_non_dicts(self):
        configure_telemetry("spans")
        with span("shipped"):
            pass
        shipped = tracer().drain()
        assert tracer().buffered == 0
        tracer().ingest(shipped + ["junk", 42, None])
        assert tracer().buffered == 1


# --------------------------------------------------------------------------- #
# Metrics primitives
# --------------------------------------------------------------------------- #


class TestMetricsPrimitives:
    def test_counter_accumulates_and_rejects_decrements(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.depth")
        gauge.set(4)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_are_cumulative_with_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)
        assert histogram.cumulative() == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 10.0
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_empty_histogram_quantile_is_zero(self):
        histogram = MetricsRegistry().histogram("test.empty")
        assert histogram.quantile(0.95) == 0.0

    def test_histogram_buckets_must_ascend(self):
        with pytest.raises(ConfigurationError, match="ascending"):
            MetricsRegistry().histogram("test.bad", buckets=(1.0, 0.5))

    def test_metric_names_are_validated(self):
        with pytest.raises(ConfigurationError, match="must match"):
            MetricsRegistry().counter("bad name!")

    def test_a_name_never_changes_kind(self):
        registry = MetricsRegistry()
        registry.counter("test.thing")
        with pytest.raises(ConfigurationError, match="different kind"):
            registry.gauge("test.thing")

    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("test.once") is registry.counter("test.once")


# --------------------------------------------------------------------------- #
# Legacy-stats views (the absorb-without-rewriting contract)
# --------------------------------------------------------------------------- #


class _FakeStats:
    """A stand-in legacy stats object with an ``as_dict`` exposition."""

    def __init__(self, tasks, mode="linear", active=True):
        self.tasks = tasks
        self.mode = mode
        self.active = active

    def as_dict(self):
        return {"tasks": self.tasks, "mode": self.mode, "active": self.active}


class TestMetricsViews:
    def test_single_live_object_reports_fields_verbatim(self):
        registry = MetricsRegistry()
        stats = _FakeStats(tasks=7)
        registry.register_view("fake", stats)
        views = registry.snapshot()["views"]
        assert views["fake"] == {"tasks": 7, "mode": "linear", "active": True}

    def test_multiple_objects_sum_numbers_and_drop_the_rest(self):
        registry = MetricsRegistry()
        first, second = _FakeStats(tasks=3), _FakeStats(tasks=4, mode="indexed")
        registry.register_view("fake", first)
        registry.register_view("fake", second)
        # Numeric fields summed; strings and bools have no meaningful sum.
        assert registry.snapshot()["views"]["fake"] == {"tasks": 7}

    def test_dead_references_are_pruned_at_snapshot_time(self):
        registry = MetricsRegistry()
        stats = _FakeStats(tasks=1)
        registry.register_view("fleeting", stats)
        del stats
        gc.collect()
        assert "fleeting" not in registry.snapshot()["views"]

    def test_scheduler_stats_parity_field_for_field(self):
        registry = MetricsRegistry()
        stats = SchedulerStats(
            tasks=12, bytes_sent=4096, bytes_deduped=1024,
            blobs_sent=3, blobs_deduped=1, shm_segments=2,
        )
        registry.register_view("scheduler", stats)
        assert registry.snapshot()["views"]["scheduler"] == stats.as_dict()

    def test_service_stats_parity_field_for_field(self):
        registry = MetricsRegistry()
        stats = ServiceStats()
        stats.requests = 30
        stats.batches = 7
        stats.coalesced_requests = 23
        stats.largest_batch = 9
        registry.register_view("service", stats)
        snapshot = registry.snapshot()["views"]["service"]
        assert snapshot == stats.as_dict()
        # The computed field rides along with the raw counters.
        assert snapshot["mean_batch_size"] == stats.as_dict()["mean_batch_size"]

    def test_live_scheduler_registers_the_singleton_view(self):
        with LocalScheduler(workers=1) as scheduler:
            scheduler.run(_echo_specs(["x"]))
            views = metrics_registry().snapshot()["views"]
            assert "scheduler" in views
            assert views["scheduler"].get("tasks", 0) >= 1


# --------------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------------- #


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("wire.lines", "lines moved")
        counter.inc(3)
        registry.gauge("pool.workers").set(2)
        histogram = registry.histogram("task.seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        registry.register_view("fake", self._stats)
        return registry

    def setup_method(self):
        # Held on the instance so the weak view survives until render.
        self._stats = _FakeStats(tasks=2)

    def test_rendering_is_valid_exposition_format(self):
        text = self._registry().render_prometheus()
        assert check_telemetry.check_prometheus(text) == []

    def test_rendering_covers_every_metric_kind(self):
        text = self._registry().render_prometheus()
        assert "# TYPE freqywm_wire_lines_total counter" in text
        assert "freqywm_wire_lines_total 3" in text
        assert "freqywm_pool_workers 2" in text
        assert 'freqywm_task_seconds_bucket{le="+Inf"} 2' in text
        assert "freqywm_task_seconds_count 2" in text
        # View fields become gauges; non-numeric fields are skipped.
        assert "freqywm_fake_tasks 2" in text
        assert "freqywm_fake_mode" not in text
        assert text.endswith("\n")

    def test_checker_rejects_malformed_expositions(self):
        undeclared = "freqywm_orphan_metric 1\n"
        assert check_telemetry.check_prometheus(undeclared)
        unprefixed = "# TYPE rogue gauge\nrogue 1\n"
        assert check_telemetry.check_prometheus(unprefixed)
        no_newline = "# TYPE freqywm_x gauge\nfreqywm_x 1"
        assert check_telemetry.check_prometheus(no_newline)
        truncated_histogram = (
            "# TYPE freqywm_h histogram\n"
            'freqywm_h_bucket{le="1"} 1\n'
            "freqywm_h_sum 1\nfreqywm_h_count 1\n"
        )
        assert check_telemetry.check_prometheus(truncated_histogram)
        assert check_telemetry.check_prometheus("") == ["exposition: empty exposition"]


# --------------------------------------------------------------------------- #
# Wire protocol: additive telemetry fields and the stats verb
# --------------------------------------------------------------------------- #


class TestWireTelemetry:
    def test_task_request_trace_round_trips(self):
        request = TaskRequest(
            request_id="t1", function="schedtest.echo", trace=("a" * 32, "b" * 16)
        )
        rebuilt = TaskRequest.from_dict(request.to_dict())
        assert rebuilt.trace == ("a" * 32, "b" * 16)

    def test_task_request_without_trace_stays_traceless(self):
        request = TaskRequest(request_id="t2", function="schedtest.echo")
        payload = request.to_dict()
        assert "trace" not in payload
        assert TaskRequest.from_dict(payload).trace is None

    def test_malformed_trace_is_rejected(self):
        payload = TaskRequest(request_id="t3", function="f").to_dict()
        payload["trace"] = "not-a-pair"
        with pytest.raises(ServiceError, match="trace"):
            TaskRequest.from_dict(payload)

    def test_task_result_spans_round_trip_on_success_and_failure(self):
        shipped = ({"trace": "t", "span": "s", "parent": "p", "name": "task:x"},)
        success = TaskResult(request_id="r1", ok=True, result=None, spans=shipped)
        assert TaskResult.from_dict(success.to_dict()).spans == shipped
        failure = TaskResult.failure("r2", "kaput")
        payload = failure.to_dict()
        payload["spans"] = list(shipped)
        assert TaskResult.from_dict(payload).spans == shipped

    def test_stats_request_round_trips_and_validates_id(self):
        request = StatsRequest(request_id="s1")
        assert StatsRequest.from_dict(request.to_dict()).request_id == "s1"
        with pytest.raises(ServiceError):
            StatsRequest(request_id="")

    def test_stats_response_round_trips_both_outcomes(self):
        success = StatsResponse(
            request_id="s2",
            metrics={"counters": {}},
            prometheus="# TYPE freqywm_x gauge\nfreqywm_x 1\n",
        )
        rebuilt = StatsResponse.from_dict(success.to_dict())
        assert rebuilt.ok and rebuilt.metrics == {"counters": {}}
        assert rebuilt.prometheus.endswith("\n")
        failure = StatsResponse.from_dict(
            StatsResponse.failure("s3", "overloaded").to_dict()
        )
        assert not failure.ok and failure.error == "overloaded"

    def test_service_answers_the_stats_verb_with_both_expositions(self):
        async def run():
            async with DetectionService() as service:
                return await service.submit(StatsRequest(request_id="stats:1"))

        response = asyncio.run(run())
        assert response.ok
        assert set(response.metrics) >= {"counters", "gauges", "histograms", "views"}
        assert "service" in response.metrics["views"]
        assert check_telemetry.check_prometheus(response.prometheus) == []


# --------------------------------------------------------------------------- #
# Cross-process stitching
# --------------------------------------------------------------------------- #


class TestLocalPoolStitching:
    def test_pool_task_spans_stitch_into_one_trace(self):
        configure_telemetry("spans")
        with LocalScheduler(workers=2) as scheduler:
            assert scheduler.run(_echo_specs(["a", "b", "c", "d"])) == [
                "a", "b", "c", "d",
            ]
        spans = tracer().drain()
        names = [record["name"] for record in spans]
        assert names.count("scheduler.run") == 1
        assert names.count("task:schedtest.echo") == 4
        assert len({record["trace"] for record in spans}) == 1
        assert orphan_spans(spans) == []

    def test_crash_and_retry_leaves_no_orphan_spans(self, tmp_path):
        configure_telemetry("spans")
        sentinel = tmp_path / "crashed-once"
        specs = [
            TaskSpec(
                fingerprint="die-once",
                function="schedtest.die_once",
                payload=str(sentinel),
            )
        ] + _echo_specs(["a", "b"])
        with LocalScheduler(workers=2, crash_grace=0.1) as scheduler:
            assert scheduler.run(specs) == ["survived", "a", "b"]
        spans = tracer().drain()
        # The killed first attempt's span dies with its worker; the
        # retry's span (and everything else) still stitches cleanly.
        assert orphan_spans(spans) == []
        assert len({record["trace"] for record in spans}) == 1
        names = [record["name"] for record in spans]
        assert "task:schedtest.die_once" in names

    def test_untraced_dispatch_records_nothing(self):
        configure_telemetry(None)
        result = run_task(
            TaskSpec(fingerprint="plain", function="schedtest.echo", payload="x")
        )
        assert result == "x"
        assert tracer().buffered == 0


class TestRemoteStitching:
    @pytest.fixture()
    def two_workers(self, tmp_path):
        sock_a = tmp_path / "worker-a.sock"
        sock_b = tmp_path / "worker-b.sock"
        with scheduler_tasks.spawn_worker(sock_a):
            with scheduler_tasks.spawn_worker(sock_b):
                yield (f"unix:{sock_a}", f"unix:{sock_b}")

    def test_spans_from_two_workers_stitch_into_one_tree(self, two_workers):
        configure_telemetry("spans")
        with RemoteScheduler(two_workers) as scheduler:
            assert scheduler.workers == 2
            results = scheduler.run(_echo_specs(list(range(6))))
        assert results == list(range(6))
        spans = tracer().drain()
        assert len({record["trace"] for record in spans}) == 1
        assert orphan_spans(spans) == []
        task_spans = [
            record for record in spans if record["name"] == "task:schedtest.echo"
        ]
        assert len(task_spans) == 6
        # Task spans were recorded inside the worker processes (which
        # never enabled telemetry themselves), not in this client.
        worker_pids = {record["pid"] for record in task_spans}
        assert os.getpid() not in worker_pids
        roots = [record for record in spans if record["parent"] is None]
        assert [record["name"] for record in roots] == ["scheduler.run"]
        assert roots[0]["pid"] == os.getpid()


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #


class TestLogging:
    def test_parse_log_env_defaults_and_forms(self):
        assert parse_log_env(None) == (pylogging.WARNING, "plain")
        assert parse_log_env("debug") == (pylogging.DEBUG, "plain")
        assert parse_log_env("INFO:JSON") == (pylogging.INFO, "json")
        with pytest.raises(ConfigurationError, match="level"):
            parse_log_env("loud")
        with pytest.raises(ConfigurationError, match="format"):
            parse_log_env("info:xml")

    def test_json_mode_emits_one_object_per_record(self):
        stream = io.StringIO()
        configure_logging(
            level=pylogging.INFO, format_name="json", stream=stream, force=True
        )
        log_record(
            get_logger("exec.worker"), pylogging.INFO, "worker shutdown", served=3
        )
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "worker shutdown"
        assert record["level"] == "info"
        assert record["logger"] == "repro.exec.worker"
        assert record["served"] == 3

    def test_plain_mode_appends_sorted_key_value_fields(self):
        stream = io.StringIO()
        configure_logging(
            level=pylogging.INFO, format_name="plain", stream=stream, force=True
        )
        log_record(get_logger("core"), pylogging.INFO, "fallback", b=2, a=1)
        assert stream.getvalue().strip().endswith("fallback a=1 b=2")

    def test_configure_is_idempotent_without_force(self):
        configure_logging(force=True)
        configure_logging()
        root = pylogging.getLogger(obs_logging.ROOT_LOGGER)
        tagged = [
            handler
            for handler in root.handlers
            if getattr(handler, "_repro_obs", False)
        ]
        assert len(tagged) == 1

    def test_get_logger_accepts_bare_and_dunder_names(self):
        assert get_logger("exec.scheduler") is get_logger("repro.exec.scheduler")

    def test_records_below_the_level_are_skipped(self):
        stream = io.StringIO()
        configure_logging(
            level=pylogging.WARNING, format_name="plain", stream=stream, force=True
        )
        log_record(get_logger("quiet"), pylogging.INFO, "unseen")
        assert stream.getvalue() == ""


# --------------------------------------------------------------------------- #
# Slow-task profiling
# --------------------------------------------------------------------------- #


class _RecordingSpan:
    """Captures ``set_attribute`` calls for profiler assertions."""

    def __init__(self):
        self.attrs = {}

    def set_attribute(self, name, value):
        self.attrs[name] = value


class TestProfiling:
    def test_disabled_profiling_touches_nothing(self):
        recording = _RecordingSpan()
        with maybe_profile(recording, enabled=False):
            sum(range(100))
        assert recording.attrs == {}

    def test_slow_block_gets_frames_attached(self):
        recording = _RecordingSpan()
        with maybe_profile(recording, enabled=True, threshold=0.0):
            sum(range(1000))
        frames = recording.attrs["profile"]
        assert frames and all(
            set(frame) == {"site", "calls", "total", "cumulative"}
            for frame in frames
        )
        assert recording.attrs["profile_elapsed"] >= 0

    def test_fast_block_below_threshold_is_discarded(self):
        recording = _RecordingSpan()
        with maybe_profile(recording, enabled=True, threshold=60.0):
            sum(range(100))
        assert recording.attrs == {}

    def test_raising_block_still_reports_when_slow(self):
        recording = _RecordingSpan()
        with pytest.raises(RuntimeError):
            with maybe_profile(recording, enabled=True, threshold=0.0):
                raise RuntimeError("mid-profile")
        assert "profile" in recording.attrs

    def test_threshold_env_parsing(self, monkeypatch):
        monkeypatch.setenv(PROFILE_THRESHOLD_ENV, "0.5")
        assert profile_threshold() == 0.5
        monkeypatch.setenv(PROFILE_THRESHOLD_ENV, "-3")
        assert profile_threshold() == 0.0
        monkeypatch.setenv(PROFILE_THRESHOLD_ENV, "soon")
        assert profile_threshold() == pytest.approx(0.25)

    def test_top_frames_sorts_by_cumulative_time(self):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        sorted(range(1000))
        profiler.disable()
        frames = top_frames(profiler, limit=3)
        assert len(frames) <= 3
        cumulatives = [frame["cumulative"] for frame in frames]
        assert cumulatives == sorted(cumulatives, reverse=True)


# --------------------------------------------------------------------------- #
# Trace reports
# --------------------------------------------------------------------------- #


def _span_record(span_id, parent, name, start=0.0, duration=0.1, status="ok"):
    return {
        "trace": "trace-1",
        "span": span_id,
        "parent": parent,
        "name": name,
        "start": start,
        "duration": duration,
        "status": status,
        "pid": 1,
    }


class TestReport:
    def test_build_tree_parents_and_orders_children_by_start(self):
        spans = [
            _span_record("b", "a", "second", start=2.0),
            _span_record("c", "a", "first", start=1.0),
            _span_record("a", None, "root", start=0.0),
        ]
        (roots,) = build_tree(spans).values()
        (root,) = roots
        assert root.name == "root"
        assert [child.name for child in root.children] == ["first", "second"]

    def test_orphans_are_spans_whose_parent_never_arrived(self):
        spans = [
            _span_record("a", None, "root"),
            _span_record("b", "missing", "lost"),
        ]
        (orphan,) = orphan_spans(spans)
        assert orphan["name"] == "lost"

    def test_aggregate_totals_means_and_errors(self):
        spans = [
            _span_record("a", None, "task", duration=1.0),
            _span_record("b", None, "task", duration=3.0, status="error"),
            _span_record("c", None, "setup", duration=0.5),
        ]
        first, second = aggregate(spans)
        assert first["name"] == "task"
        assert first["count"] == 2
        assert first["total"] == 4.0
        assert first["mean"] == 2.0
        assert first["max"] == 3.0
        assert first["errors"] == 1
        assert second["name"] == "setup"

    def test_render_report_shows_table_tree_and_error_marks(self):
        spans = [
            _span_record("a", None, "root", duration=1.0),
            _span_record("b", "a", "child", start=0.5, status="error"),
        ]
        text = render_report(spans)
        assert "2 spans, 1 trace(s), 0 orphan(s)" in text
        assert "trace trace-1" in text
        assert "  root" in text and "    child" in text
        assert "[ERROR]" in text

    def test_render_report_suppresses_the_tree_beyond_the_limit(self):
        spans = [
            _span_record(f"s{index}", None, f"span-{index}") for index in range(5)
        ]
        text = render_report(spans, limit=3)
        assert "trace trace-1" not in text
        assert render_report([]) == "no spans recorded\n"

    def test_load_spans_resolves_run_directories(self, tmp_path):
        stream = tmp_path / SPANS_RELPATH
        stream.parent.mkdir(parents=True)
        stream.write_text(
            json.dumps(_span_record("a", None, "root")) + "\n\n", encoding="utf-8"
        )
        assert [record["name"] for record in load_spans(str(tmp_path))] == ["root"]

    def test_load_spans_rejects_missing_and_malformed_streams(self, tmp_path):
        with pytest.raises(ReproError, match="no span stream"):
            load_spans(str(tmp_path / "absent"))
        broken = tmp_path / "broken.jsonl"
        broken.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ReproError, match=":2:"):
            load_spans(str(broken))


# --------------------------------------------------------------------------- #
# End-to-end run artifacts and the CI checker
# --------------------------------------------------------------------------- #


class TestRunTelemetryArtifacts:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One smoke-spec run with spans+metrics on, shared by the class."""
        run_dir = tmp_path_factory.mktemp("telemetry-run") / "run"
        spec = load_spec("experiments/specs/smoke.json")
        policy = ExecutionPolicy(workers=2, telemetry="spans,metrics")
        try:
            result = run_experiment(spec, run_dir, policy=policy)
        finally:
            configure_telemetry(None)
            tracer().reset()
        return run_dir, result

    def test_run_writes_both_telemetry_artifacts(self, traced_run):
        run_dir, result = traced_run
        assert result.executed_total > 0
        assert (run_dir / TELEMETRY_RELPATH).exists()
        assert (run_dir / SPANS_RELPATH).exists()
        assert "shm_segments" in result.summary()

    def test_artifacts_pass_the_ci_checker(self, traced_run):
        run_dir, _result = traced_run
        assert check_telemetry.check_telemetry_json(run_dir) == []
        assert check_telemetry.check_spans(run_dir) == []

    def test_span_stream_is_one_tree_rooted_at_experiment_run(self, traced_run):
        run_dir, _result = traced_run
        spans = load_spans(str(run_dir))
        traces = build_tree(spans)
        assert len(traces) == 1
        (roots,) = traces.values()
        assert [root.name for root in roots] == ["experiment.run"]
        names = {record["name"] for record in spans}
        assert "experiment.level" in names
        assert "scheduler.run" in names
        assert "task:experiment.task" in names

    def test_telemetry_json_carries_features_metrics_and_run(self, traced_run):
        run_dir, result = traced_run
        payload = json.loads(
            (run_dir / TELEMETRY_RELPATH).read_text(encoding="utf-8")
        )
        assert payload["features"] == ["metrics", "spans"]
        assert payload["run"]["executed_total"] == result.executed_total
        assert "scheduler" in payload["metrics"]["views"]
        assert payload["spans"]["path"] == SPANS_RELPATH

    def test_trace_report_cli_renders_the_phase_breakdown(self, traced_run, capsys):
        from repro.cli import main as cli_main

        run_dir, _result = traced_run
        assert cli_main(["trace", "report", str(run_dir)]) == 0
        output = capsys.readouterr().out
        assert "experiment.run" in output
        assert "trace " in output

    def test_checker_fails_on_missing_and_broken_artifacts(self, tmp_path):
        assert check_telemetry.check_telemetry_json(tmp_path)
        assert check_telemetry.check_spans(tmp_path)
        (tmp_path / "telemetry.json").write_text("{}", encoding="utf-8")
        failures = check_telemetry.check_telemetry_json(tmp_path)
        assert any("features" in failure for failure in failures)
        stream = tmp_path / SPANS_RELPATH
        stream.parent.mkdir(parents=True)
        stream.write_text(
            json.dumps(_span_record("a", "gone", "task:x")) + "\n", encoding="utf-8"
        )
        failures = check_telemetry.check_spans(tmp_path)
        assert any("orphan" in failure for failure in failures)
        assert any("experiment.run" in failure for failure in failures)


# --------------------------------------------------------------------------- #
# Tail-aware benchmark helpers
# --------------------------------------------------------------------------- #


class TestPercentile:
    def test_nearest_rank_returns_observed_values(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 0.95) == 5.0
        assert percentile(values, 1.0) == 5.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([2.5], 0.5) == 2.5
        assert percentile([2.5], 0.95) == 2.5

    def test_invalid_inputs_are_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], 1.5)
