"""Unit tests for the WM-OBT and WM-RVS baselines and the partitioning layer."""

from __future__ import annotations

import pytest

from repro.analysis.distortion import distortion_report
from repro.baselines.genetic import GeneticConfig
from repro.baselines.partitioning import partition_histogram, partition_index
from repro.baselines.wm_obt import WmObtConfig, WmObtWatermarker
from repro.baselines.wm_rvs import WmRvsConfig, WmRvsWatermarker
from repro.datasets.synthetic import generate_power_law_histogram
from repro.exceptions import BaselineError


@pytest.fixture(scope="module")
def baseline_histogram():
    return generate_power_law_histogram(0.5, n_tokens=100, sample_size=50_000)


class TestPartitioning:
    def test_every_token_lands_in_exactly_one_partition(self, baseline_histogram):
        partitions = partition_histogram(baseline_histogram.as_dict(), key=1, n_partitions=10)
        tokens = [token for partition in partitions for token in partition.tokens]
        assert sorted(tokens) == sorted(baseline_histogram.tokens)
        assert len(partitions) == 10

    def test_partition_assignment_is_keyed(self):
        index_a = partition_index("token-x", key=1, n_partitions=20)
        index_b = partition_index("token-x", key=2, n_partitions=20)
        assert 0 <= index_a < 20 and 0 <= index_b < 20
        # Different keys generally shuffle the assignment (not guaranteed for
        # a single token, but stable per key).
        assert partition_index("token-x", key=1, n_partitions=20) == index_a

    def test_invalid_partition_count(self):
        with pytest.raises(BaselineError):
            partition_histogram({"a": 1}, key=1, n_partitions=0)


class TestWmObt:
    @pytest.fixture(scope="class")
    def embedding(self, baseline_histogram):
        config = WmObtConfig(
            n_partitions=8,
            genetic=GeneticConfig(population_size=20, generations=15),
        )
        watermarker = WmObtWatermarker(config, rng=13)
        return watermarker, watermarker.embed(baseline_histogram.as_dict())

    def test_counts_remain_positive_integers(self, embedding):
        _watermarker, result = embedding
        assert all(
            isinstance(count, int) and count >= 1
            for count in result.watermarked_counts.values()
        )

    def test_distortion_is_heavy_compared_to_freqywm(self, embedding, baseline_histogram):
        _watermarker, result = embedding
        report = distortion_report(
            baseline_histogram.as_dict(), result.watermarked_counts, method="wm-obt"
        )
        # WM-OBT scrambles the histogram badly: the paper reports 54% cosine
        # similarity and ~998/1000 rank changes. At test scale we only assert
        # the qualitative behaviour: visible distortion and broken ranking.
        assert report.distortion_percent > 1.0
        assert not report.ranking_preserved
        assert report.rank_changes > len(baseline_histogram) // 4

    def test_bits_recoverable_from_watermarked_data(self, embedding):
        watermarker, result = embedding
        assert watermarker.bit_recovery_rate(result.watermarked_counts, result) >= 0.6

    def test_config_validation(self):
        with pytest.raises(BaselineError):
            WmObtConfig(watermark_bits=())
        with pytest.raises(BaselineError):
            WmObtConfig(watermark_bits=(2,))
        with pytest.raises(BaselineError):
            WmObtConfig(change_bounds=(1.0, 0.5))
        with pytest.raises(BaselineError):
            WmObtConfig(condition=1.5)


class TestWmRvs:
    @pytest.fixture(scope="class")
    def embedding(self, baseline_histogram):
        watermarker = WmRvsWatermarker(WmRvsConfig())
        return watermarker, watermarker.embed(baseline_histogram.as_dict())

    def test_counts_remain_positive_integers(self, embedding):
        _watermarker, result = embedding
        assert all(
            isinstance(count, int) and count >= 1
            for count in result.watermarked_counts.values()
        )

    def test_detection_rate_high_on_watermarked_data(self, embedding):
        watermarker, result = embedding
        assert watermarker.detect(result.watermarked_counts) > 0.95

    def test_reversibility(self, embedding, baseline_histogram):
        watermarker, result = embedding
        restored = watermarker.reverse(result)
        assert restored == baseline_histogram.as_dict()

    def test_changes_many_ranks_but_less_distortion_than_obt(
        self, embedding, baseline_histogram
    ):
        _watermarker, result = embedding
        report = distortion_report(
            baseline_histogram.as_dict(), result.watermarked_counts, method="wm-rvs"
        )
        # The paper: 96% similarity (i.e. noticeable but smaller than WM-OBT)
        # and 987/1000 rank changes.
        assert 0.0 < report.distortion_percent < 50.0
        assert report.rank_changes > len(baseline_histogram) // 4

    def test_config_validation(self):
        with pytest.raises(BaselineError):
            WmRvsConfig(watermark_bits=())
        with pytest.raises(BaselineError):
            WmRvsConfig(max_digit_position=-1)
