"""The registry verbs on the service wire: codec, versioning, execution.

Three layers, matching ``docs/service.md``:

* **Codec** — ``register`` / ``revoke`` / ``attribute`` requests and
  responses survive :func:`encode_line` → :func:`decode_request` /
  :func:`decode_response` round trips, and malformed payloads are
  rejected with :class:`ServiceError` (never a crash mid-pipeline).
* **Versioning** — every encoded line carries ``v`` =
  :data:`PROTOCOL_VERSION`; peers accept any version up to their own
  (absent means 1, the pre-registry wire) and reject newer or malformed
  versions.
* **Execution** — :class:`SyncDetectionService` answers the vault verbs
  against its lazily created in-memory registry or an injected
  persistent :class:`SecretVault`, and counts them in its stats.
"""

from __future__ import annotations

import json

import pytest

from repro.dispute import SecretVault
from repro.exceptions import ServiceError
from repro.service import (
    PROTOCOL_VERSION,
    AttributeRequest,
    AttributeResponse,
    DetectRequest,
    RegisterRequest,
    RegisterResponse,
    RevokeRequest,
    RevokeResponse,
    SyncDetectionService,
    decode_request,
    decode_response,
    encode_line,
)

# --------------------------------------------------------------------------- #
# Codec round trips
# --------------------------------------------------------------------------- #


def test_register_request_round_trip(watermarked_bundle):
    result, _ = watermarked_bundle
    request = RegisterRequest(
        request_id="reg-1",
        buyer_id="buyer-a",
        secret=result.secret.to_dict(),
        metadata={"tier": "premium"},
    )
    line = encode_line(request)
    decoded = decode_request(line)
    assert isinstance(decoded, RegisterRequest)
    assert decoded == request
    assert decoded.watermark_secret() == result.secret


def test_revoke_and_attribute_request_round_trip(skewed_histogram):
    revoke = RevokeRequest(request_id="rev-1", buyer_id="buyer-a", metadata={"reason": "leak"})
    assert decode_request(encode_line(revoke)) == revoke

    attribute = AttributeRequest(
        request_id="att-1",
        counts=skewed_histogram.as_dict(),
        config={"min_accepted_fraction": 1.0},
    )
    decoded = decode_request(encode_line(attribute))
    assert isinstance(decoded, AttributeRequest)
    assert decoded == attribute
    assert decoded.detection_config().min_accepted_fraction == 1.0


def test_registry_response_round_trips():
    register = RegisterResponse(
        request_id="reg-1", ok=True, buyer_id="buyer-a", fingerprint="f" * 64, vault_size=3
    )
    assert decode_response(encode_line(register)) == register

    revoke = RevokeResponse(
        request_id="rev-1", ok=True, buyer_id="buyer-a", fingerprint="f" * 64, vault_size=2
    )
    assert decode_response(encode_line(revoke)) == revoke

    attribute = AttributeResponse(
        request_id="att-1",
        ok=True,
        matches=(("buyer-a", 1.0), ("buyer-b", 0.5)),
        mode="index",
        candidates=2,
        active_secrets=100,
    )
    assert decode_response(encode_line(attribute)) == attribute


@pytest.mark.parametrize(
    "response_type", [RegisterResponse, RevokeResponse, AttributeResponse]
)
def test_failure_envelope_round_trips(response_type):
    failure = response_type.failure("req-9", "buyer 'x' already has a registered watermark")
    decoded = decode_response(encode_line(failure))
    assert isinstance(decoded, response_type)
    assert decoded.ok is False
    assert decoded.error == failure.error


def test_malformed_registry_payloads_are_rejected():
    with pytest.raises(ServiceError, match="buyer_id"):
        decode_request(json.dumps({"op": "register", "id": "r", "secret": {}}))
    with pytest.raises(ServiceError, match="secret"):
        decode_request(json.dumps({"op": "register", "id": "r", "buyer_id": "b"}))
    with pytest.raises(ServiceError, match="metadata"):
        decode_request(
            json.dumps({"op": "revoke", "id": "r", "buyer_id": "b", "metadata": []})
        )
    with pytest.raises(ServiceError, match="exactly one"):
        AttributeRequest(request_id="a", tokens=("x",), counts={"x": 1})
    with pytest.raises(ServiceError, match="unknown request op"):
        decode_request(json.dumps({"op": "frobnicate", "id": "r"}))


# --------------------------------------------------------------------------- #
# Protocol versioning
# --------------------------------------------------------------------------- #


def test_encoded_lines_carry_the_protocol_version():
    line = encode_line(RevokeRequest(request_id="rev-1", buyer_id="b"))
    assert json.loads(line)["v"] == PROTOCOL_VERSION == 4


def test_older_and_absent_versions_are_accepted():
    payload = {"id": "d-1", "counts": {"x": 1}, "secret_fingerprint": "f" * 64}
    decoded = decode_request(json.dumps(payload))  # absent v == version 1
    assert isinstance(decoded, DetectRequest)
    assert decode_request(json.dumps(dict(payload, v=1))) == decoded
    assert decode_request(json.dumps(dict(payload, v=PROTOCOL_VERSION))) == decoded


def test_newer_versions_are_rejected():
    payload = {"id": "d-1", "counts": {"x": 1}, "secret_fingerprint": "f" * 64}
    with pytest.raises(ServiceError, match="only understands versions up to"):
        decode_request(json.dumps(dict(payload, v=PROTOCOL_VERSION + 1)))
    with pytest.raises(ServiceError, match="only understands versions up to"):
        decode_response(json.dumps({"id": "d-1", "ok": True, "v": 99}))


@pytest.mark.parametrize("version", [0, -1, True, "2", 1.5])
def test_malformed_versions_are_rejected(version):
    payload = {"id": "d-1", "counts": {"x": 1}, "secret_fingerprint": "f" * 64}
    with pytest.raises(ServiceError, match="positive integer"):
        decode_request(json.dumps(dict(payload, v=version)))


# --------------------------------------------------------------------------- #
# Service execution
# --------------------------------------------------------------------------- #


def test_sync_service_vault_verbs(watermarked_bundle):
    """register → attribute → revoke against the lazy in-memory registry."""
    result, _ = watermarked_bundle
    leaked = result.watermarked_histogram.as_dict()
    with SyncDetectionService() as service:
        registered = service.submit(
            RegisterRequest(
                request_id="reg-1",
                buyer_id="buyer-a",
                secret=result.secret.to_dict(),
                metadata={"tier": "standard"},
            )
        )
        assert registered.ok, registered.error
        assert registered.buyer_id == "buyer-a"
        assert registered.fingerprint == result.secret.fingerprint()
        assert registered.vault_size == 1

        duplicate = service.submit(
            RegisterRequest(
                request_id="reg-2", buyer_id="buyer-a", secret=result.secret.to_dict()
            )
        )
        assert isinstance(duplicate, RegisterResponse)
        assert duplicate.ok is False
        assert "already" in (duplicate.error or "")

        verdict = service.submit(AttributeRequest(request_id="att-1", counts=leaked))
        assert verdict.ok, verdict.error
        assert "buyer-a" in {buyer for buyer, _ in verdict.matches}
        assert verdict.mode == "group-test"
        assert verdict.active_secrets == 1

        revoked = service.submit(RevokeRequest(request_id="rev-1", buyer_id="buyer-a"))
        assert revoked.ok, revoked.error
        assert revoked.vault_size == 0

        after = service.submit(AttributeRequest(request_id="att-2", counts=leaked))
        assert after.ok and after.matches == ()

        assert service.stats.registrations == 1
        assert service.stats.revocations == 1
        assert service.stats.attributions == 2
        snapshot = service.stats.as_dict()
        assert snapshot["registrations"] == 1
        assert snapshot["revocations"] == 1
        assert snapshot["attributions"] == 2


def test_unknown_buyer_revocation_is_a_failure_response(watermarked_bundle):
    _result, _ = watermarked_bundle
    with SyncDetectionService() as service:
        response = service.submit(RevokeRequest(request_id="rev-x", buyer_id="nobody"))
        assert isinstance(response, RevokeResponse)
        assert response.ok is False
        assert "nobody" in (response.error or "")
        assert service.stats.revocations == 0


def test_persistent_vault_survives_a_service_restart(tmp_path, watermarked_bundle):
    """Registrations made through one service attribute after a restart."""
    result, _ = watermarked_bundle
    leaked = result.watermarked_histogram.as_dict()
    with SyncDetectionService(registry=SecretVault(tmp_path)) as service:
        registered = service.submit(
            RegisterRequest(
                request_id="reg-1",
                buyer_id="buyer-persisted",
                secret=result.secret.to_dict(),
            )
        )
        assert registered.ok, registered.error

    with SyncDetectionService(registry=SecretVault(tmp_path)) as service:
        verdict = service.submit(AttributeRequest(request_id="att-1", counts=leaked))
        assert verdict.ok, verdict.error
        assert [buyer for buyer, _ in verdict.matches] == ["buyer-persisted"]
