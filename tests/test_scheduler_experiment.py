"""Cross-scheduler parity for the experiment executor.

The acceptance bar for the pluggable scheduler: the smoke spec produces
**byte-identical** ``report.json`` / ``report.md`` whether it runs
in-process, on a :class:`LocalScheduler` worker pool, or fanned out to
two spawned ``freqywm worker`` processes — and a rerun against a warm
cache executes nothing, regardless of backend.
"""

from __future__ import annotations

import pytest

import scheduler_tasks
from repro.exec.policy import ExecutionPolicy
from repro.experiments import load_spec, run_experiment, write_report


@pytest.fixture(scope="module")
def smoke_spec():
    return load_spec("experiments/specs/smoke.json")


def _report_bytes(spec, run_dir, policy):
    result = run_experiment(spec, run_dir, policy=policy)
    json_path, md_path = write_report(run_dir)
    return result, json_path.read_bytes(), md_path.read_bytes()


class TestCrossSchedulerParity:
    def test_reports_are_byte_identical_across_all_three_backends(
        self, smoke_spec, tmp_path
    ):
        serial, serial_json, serial_md = _report_bytes(
            smoke_spec, tmp_path / "serial", ExecutionPolicy(workers=1)
        )
        local, local_json, local_md = _report_bytes(
            smoke_spec, tmp_path / "local", ExecutionPolicy(workers=2)
        )
        assert serial.executed_total == local.executed_total > 0
        assert local_json == serial_json
        assert local_md == serial_md

        sock_a = tmp_path / "wa.sock"
        sock_b = tmp_path / "wb.sock"
        with scheduler_tasks.spawn_worker(sock_a), scheduler_tasks.spawn_worker(
            sock_b
        ):
            policy = ExecutionPolicy(
                scheduler="remote",
                addresses=(f"unix:{sock_a}", f"unix:{sock_b}"),
            )
            remote, remote_json, remote_md = _report_bytes(
                smoke_spec, tmp_path / "remote", policy
            )
        assert remote.workers == 2
        assert remote.executed_total == serial.executed_total
        assert remote_json == serial_json
        assert remote_md == serial_md

    def test_cached_rerun_executes_nothing_on_every_backend(
        self, smoke_spec, tmp_path
    ):
        run_dir = tmp_path / "warm"
        first = run_experiment(smoke_spec, run_dir, policy=ExecutionPolicy(workers=2))
        assert first.executed_total > 0

        rerun_local = run_experiment(
            smoke_spec, run_dir, policy=ExecutionPolicy(workers=2)
        )
        assert rerun_local.executed_total == 0
        assert rerun_local.cached_total == first.executed_total

        sock = tmp_path / "w.sock"
        with scheduler_tasks.spawn_worker(sock):
            rerun_remote = run_experiment(
                smoke_spec,
                run_dir,
                policy=ExecutionPolicy(
                    scheduler="remote", addresses=(f"unix:{sock}",)
                ),
            )
        assert rerun_remote.executed_total == 0
        assert rerun_remote.cached_total == first.executed_total
