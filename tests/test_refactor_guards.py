"""Structural guards for the cached-detector refactor.

The multi-layer refactor moved every upper layer (attacks, dispute,
multi-watermarking) off ad-hoc ``WatermarkDetector(...)`` construction
and onto the shared :class:`~repro.core.cache.DetectorCache` / batched
primitives. These guards keep it that way: constructing a detector
inside a loop (or comprehension) in those layers is the regression the
PR eliminated, so the test suite fails if one reappears.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

_SRC = Path(repro.__file__).resolve().parent

#: Modules that must never construct a WatermarkDetector inside a loop.
GUARDED_MODULES = sorted(
    [
        *(_SRC / "attacks").glob("*.py"),
        *(_SRC / "dispute").glob("*.py"),
        _SRC / "core" / "multiwatermark.py",
    ]
)

_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _is_detector_construction(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    function = node.func
    if isinstance(function, ast.Name):
        return function.id == "WatermarkDetector"
    if isinstance(function, ast.Attribute):
        return function.attr == "WatermarkDetector"
    return False


def _loop_constructions(tree: ast.AST) -> list:
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, _LOOP_NODES):
            for child in ast.walk(node):
                if _is_detector_construction(child):
                    offenders.append(child.lineno)
    return offenders


class TestNoDetectorConstructionInLoops:
    def test_guarded_modules_exist(self):
        # The guard must actually cover the refactored layers.
        names = {path.name for path in GUARDED_MODULES}
        assert {"guess.py", "rewatermark.py", "judge.py", "registry.py"} <= names
        assert "multiwatermark.py" in names

    def test_no_watermark_detector_constructed_inside_loops(self):
        failures = {}
        for path in GUARDED_MODULES:
            tree = ast.parse(path.read_text(encoding="utf-8"))
            offenders = _loop_constructions(tree)
            if offenders:
                failures[str(path.relative_to(_SRC))] = offenders
        assert not failures, (
            "WatermarkDetector constructed inside a loop/comprehension — use "
            f"DetectorCache or a batched primitive instead: {failures}"
        )
