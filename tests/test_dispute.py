"""Unit tests for the judge protocol and the watermark registry."""

from __future__ import annotations

import json

import pytest

from repro.attacks.rewatermark import RewatermarkAttack
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.generator import WatermarkGenerator
from repro.dispute.judge import Judge, OwnershipClaim, Verdict
from repro.dispute.registry import WatermarkRegistry
from repro.exceptions import DisputeError


@pytest.fixture(scope="module")
def dispute_setup(skewed_histogram):
    """Owner watermark + re-watermarking attacker over the same data."""
    config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
    owner_result = WatermarkGenerator(config, rng=21).generate(skewed_histogram)
    attack = RewatermarkAttack(config, rng=22)
    outcome = attack.run(owner_result.watermarked_histogram, owner_result.secret)
    return owner_result, outcome


class TestJudge:
    def test_judge_identifies_real_owner(self, dispute_setup):
        owner_result, outcome = dispute_setup
        registry = WatermarkRegistry()
        registry.register("owner", owner_result.secret, dataset="v1")
        registry.register("pirate", outcome.attacker_result.secret, dataset="v1-pirated")
        claims = [
            OwnershipClaim(
                claimant="owner",
                secret=owner_result.secret,
                claimed_data=owner_result.watermarked_histogram,
            ),
            OwnershipClaim(
                claimant="pirate",
                secret=outcome.attacker_result.secret,
                claimed_data=outcome.attacker_result.watermarked_histogram,
            ),
        ]
        verdict = Judge(DetectionConfig(pair_threshold=1), registry=registry).arbitrate(claims)
        assert verdict.resolved
        assert verdict.winner == "owner"
        # The owner's watermark is detectable in the pirate's derived copy.
        assert verdict.detections["owner"]["pirate"].accepted

    def test_judge_unresolved_for_unrelated_claims(self, skewed_histogram, dispute_setup):
        owner_result, _ = dispute_setup
        # Two parties claiming completely unrelated datasets: neither secret
        # verifies on the other's data, so nobody verifies universally.
        other = WatermarkGenerator(
            GenerationConfig(budget_percent=2.0, modulus_cap=131), rng=99
        ).generate(skewed_histogram)
        claims = [
            OwnershipClaim("alice", owner_result.secret, owner_result.watermarked_histogram),
            OwnershipClaim("bob", other.secret, other.watermarked_histogram),
        ]
        verdict = Judge(DetectionConfig(pair_threshold=0)).arbitrate(claims)
        assert verdict.winner is None or verdict.winner in {"alice", "bob"}
        assert isinstance(verdict, Verdict)

    def test_judge_requires_two_claims(self, dispute_setup):
        owner_result, _ = dispute_setup
        claim = OwnershipClaim(
            "owner", owner_result.secret, owner_result.watermarked_histogram
        )
        with pytest.raises(DisputeError):
            Judge().arbitrate([claim])

    def test_judge_requires_distinct_names(self, dispute_setup):
        owner_result, outcome = dispute_setup
        claims = [
            OwnershipClaim("x", owner_result.secret, owner_result.watermarked_histogram),
            OwnershipClaim(
                "x",
                outcome.attacker_result.secret,
                outcome.attacker_result.watermarked_histogram,
            ),
        ]
        with pytest.raises(DisputeError):
            Judge().arbitrate(claims)

    def test_judge_rejects_invalid_margin(self):
        with pytest.raises(DisputeError):
            Judge(margin=1.5)
        with pytest.raises(DisputeError):
            Judge(margin=-0.1)

    def test_registry_tiebreak_prefers_earliest_registration(self, dispute_setup):
        # Register the pirate first to confirm the tie-break really follows
        # registration order rather than claimant naming or claim order.
        owner_result, outcome = dispute_setup
        registry = WatermarkRegistry()
        registry.register("pirate", outcome.attacker_result.secret)
        registry.register("owner", owner_result.secret)
        claims = [
            OwnershipClaim("owner", owner_result.secret, owner_result.watermarked_histogram),
            OwnershipClaim(
                "pirate",
                outcome.attacker_result.secret,
                outcome.attacker_result.watermarked_histogram,
            ),
        ]
        verdict = Judge(DetectionConfig(pair_threshold=1), registry=registry).arbitrate(claims)
        # Whoever the universal/margin rules leave ambiguous, the registry
        # order decides; with the pirate registered first it can win, which
        # is exactly why owners must register before distributing copies.
        assert verdict.winner in {"owner", "pirate", None}
        if verdict.winner is None:
            assert "margin" in verdict.reason or "verify" in verdict.reason

    def test_claim_from_tokens(self, dispute_setup, skewed_tokens):
        owner_result, _ = dispute_setup
        claim = OwnershipClaim.from_tokens("owner", owner_result.secret, skewed_tokens)
        assert claim.claimed_data.total_count() == len(skewed_tokens)


class TestRegistry:
    @pytest.fixture()
    def per_buyer_watermarks(self, skewed_histogram):
        """Three buyer-specific watermarks of the same original dataset."""
        config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
        results = {}
        for index, buyer in enumerate(("buyer-a", "buyer-b", "buyer-c")):
            generator = WatermarkGenerator(config, rng=100 + index)
            results[buyer] = generator.generate(skewed_histogram)
        return results

    def test_register_and_chain_verification(self, per_buyer_watermarks):
        registry = WatermarkRegistry()
        for buyer, result in per_buyer_watermarks.items():
            registry.register(buyer, result.secret, dataset="clickstream-v1")
        assert len(registry) == 3
        assert registry.verify_chain()
        assert registry.entries[1].previous_hash == registry.entries[0].entry_hash

    def test_duplicate_buyer_rejected(self, per_buyer_watermarks):
        registry = WatermarkRegistry()
        buyer, result = next(iter(per_buyer_watermarks.items()))
        registry.register(buyer, result.secret)
        with pytest.raises(DisputeError):
            registry.register(buyer, result.secret)

    def test_leak_attribution_identifies_the_right_buyer(self, per_buyer_watermarks):
        registry = WatermarkRegistry()
        for buyer, result in per_buyer_watermarks.items():
            registry.register(buyer, result.secret)
        leaked = per_buyer_watermarks["buyer-b"].watermarked_histogram
        matches = registry.attribute_leak(leaked, detection=DetectionConfig(pair_threshold=0))
        assert matches, "the leaked copy must match at least its own buyer"
        assert matches[0][0] == "buyer-b"

    def test_attribution_matches_per_secret_detect_loop(self, per_buyer_watermarks):
        """Verdict parity: the stacked detect_many_secrets pass must rank
        exactly like the per-buyer detector loop it replaced."""
        from repro.core.detector import WatermarkDetector

        registry = WatermarkRegistry()
        for buyer, result in per_buyer_watermarks.items():
            registry.register(buyer, result.secret)
        for detection in (
            DetectionConfig(pair_threshold=0),
            DetectionConfig(pair_threshold=1),
            DetectionConfig(pair_threshold=4, min_accepted_fraction=0.3),
        ):
            for leaked_buyer, leaked_result in per_buyer_watermarks.items():
                leaked = leaked_result.watermarked_histogram
                expected = []
                for buyer, result in per_buyer_watermarks.items():
                    verdict = WatermarkDetector(result.secret, detection).detect(leaked)
                    if verdict.accepted:
                        expected.append((buyer, verdict.accepted_fraction))
                expected.sort(key=lambda item: (-item[1], item[0]))
                assert (
                    registry.attribute_leak(leaked, detection=detection) == expected
                ), f"parity broken for leak of {leaked_buyer} at {detection}"

    def test_empty_registry_attributes_nothing(self, per_buyer_watermarks):
        registry = WatermarkRegistry()
        leaked = per_buyer_watermarks["buyer-b"].watermarked_histogram
        assert registry.attribute_leak(leaked) == []

    def test_secret_vault_lookup(self, per_buyer_watermarks):
        registry = WatermarkRegistry()
        buyer, result = next(iter(per_buyer_watermarks.items()))
        registry.register(buyer, result.secret)
        assert registry.secret_for(buyer) == result.secret
        with pytest.raises(DisputeError):
            registry.secret_for("nobody")

    def test_public_ledger_export_and_tamper_detection(self, per_buyer_watermarks, tmp_path):
        registry = WatermarkRegistry()
        for buyer, result in per_buyer_watermarks.items():
            registry.register(buyer, result.secret)
        path = tmp_path / "ledger.json"
        registry.save_public_ledger(path)
        exported = json.loads(path.read_text(encoding="utf-8"))
        assert WatermarkRegistry.verify_exported_ledger(exported)
        # Tampering with any field breaks the chain.
        exported[1]["buyer_id"] = "mallory"
        assert not WatermarkRegistry.verify_exported_ledger(exported)
        # Secrets never appear in the public ledger.
        assert "secret" not in json.dumps(exported)


class TestDetectorCaching:
    """The dispute layer constructs each detector once, not per screen."""

    @pytest.fixture()
    def per_buyer_watermarks(self, skewed_histogram):
        config = GenerationConfig(budget_percent=2.0, modulus_cap=131)
        return {
            buyer: WatermarkGenerator(config, rng=100 + index).generate(
                skewed_histogram
            )
            for index, buyer in enumerate(("buyer-a", "buyer-b", "buyer-c"))
        }

    def test_attribution_constructs_each_detector_once(self, per_buyer_watermarks):
        registry = WatermarkRegistry()
        for buyer, result in per_buyer_watermarks.items():
            registry.register(buyer, result.secret)
        detection = DetectionConfig(pair_threshold=0)
        leaked = per_buyer_watermarks["buyer-b"].watermarked_histogram
        first = registry.attribute_leak(leaked, detection=detection)
        stats = registry.detector_cache_stats()
        buyers = len(per_buyer_watermarks)
        # First screen: one construction (miss) per registered buyer.
        assert stats.misses == buyers
        assert stats.hits == 0
        # Second screen (another leaked copy, same thresholds): pure hits.
        other = per_buyer_watermarks["buyer-a"].watermarked_histogram
        second = registry.attribute_leak(other, detection=detection)
        stats = registry.detector_cache_stats()
        assert stats.misses == buyers
        assert stats.hits == buyers
        assert stats.evictions == 0  # the registry cache is unbounded
        # Caching never changes verdicts.
        assert first == registry.attribute_leak(leaked, detection=detection)
        assert second == registry.attribute_leak(other, detection=detection)

    def test_judge_reuses_claimant_detectors_across_arbitrations(self, dispute_setup):
        owner_result, outcome = dispute_setup
        judge = Judge(DetectionConfig(pair_threshold=0))
        claims = [
            OwnershipClaim("owner", owner_result.secret, outcome.attacker_result.watermarked_histogram),
            OwnershipClaim("pirate", outcome.attacker_result.secret, outcome.attacker_result.watermarked_histogram),
        ]
        first = judge.arbitrate(claims)
        stats = judge.detector_cache.stats()
        assert stats.misses == 2 and stats.hits == 0
        second = judge.arbitrate(claims)
        stats = judge.detector_cache.stats()
        assert stats.misses == 2 and stats.hits == 2
        assert first.winner == second.winner and first.reason == second.reason
