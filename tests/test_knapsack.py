"""Unit tests for the budget-constrained (equally valued knapsack) selection."""

from __future__ import annotations

import pytest

from repro.core.eligibility import generate_eligible_pairs
from repro.core.knapsack import (
    knapsack_capacity_report,
    select_within_budget,
)
from repro.core.similarity import similarity_percent
from repro.exceptions import MatchingError

SECRET = 31337
Z = 131


def _disjoint(eligible):
    used, kept = set(), []
    for item in eligible:
        if item.pair.first in used or item.pair.second in used:
            continue
        used.update(item.pair.as_tuple())
        kept.append(item)
    return kept


class TestBudgetEnforcement:
    def test_selection_respects_budget(self, skewed_histogram):
        candidates = _disjoint(generate_eligible_pairs(skewed_histogram, SECRET, Z))
        budget = 0.5
        selection = select_within_budget(skewed_histogram, candidates, budget)
        assert selection.similarity_percent >= 100.0 - budget - 1e-9

    def test_final_similarity_matches_applied_adjustments(self, skewed_histogram):
        candidates = _disjoint(generate_eligible_pairs(skewed_histogram, SECRET, Z))
        selection = select_within_budget(skewed_histogram, candidates, 2.0)
        working = skewed_histogram
        for adjustment in selection.adjustments:
            working = working.with_updates(adjustment.as_deltas())
        assert selection.similarity_percent == pytest.approx(
            similarity_percent(skewed_histogram.as_dict(), working.as_dict()), abs=1e-9
        )

    def test_zero_budget_selects_only_free_pairs(self, skewed_histogram):
        candidates = _disjoint(generate_eligible_pairs(skewed_histogram, SECRET, Z))
        selection = select_within_budget(skewed_histogram, candidates, 0.0)
        assert all(adjustment.cost == 0 for adjustment in selection.adjustments)
        assert selection.similarity_percent == pytest.approx(100.0)

    def test_larger_budget_never_selects_fewer_pairs(self, skewed_histogram):
        candidates = _disjoint(generate_eligible_pairs(skewed_histogram, SECRET, Z))
        small = select_within_budget(skewed_histogram, candidates, 0.01)
        large = select_within_budget(skewed_histogram, candidates, 5.0)
        assert len(large.selected) >= len(small.selected)

    def test_invalid_budget_rejected(self, skewed_histogram):
        with pytest.raises(MatchingError):
            select_within_budget(skewed_histogram, [], -1.0)
        with pytest.raises(MatchingError):
            select_within_budget(skewed_histogram, [], 101.0)

    def test_empty_candidates(self, skewed_histogram):
        selection = select_within_budget(skewed_histogram, [], 2.0)
        assert selection.selected == ()
        assert selection.similarity_percent == 100.0


class TestBookkeeping:
    def test_selected_plus_rejected_covers_candidates_with_cost(self, skewed_histogram):
        candidates = _disjoint(generate_eligible_pairs(skewed_histogram, SECRET, Z))
        selection = select_within_budget(skewed_histogram, candidates, 0.05)
        assert len(selection.selected) + len(selection.rejected) == len(candidates)

    def test_capacity_report_fields(self, skewed_histogram):
        candidates = _disjoint(generate_eligible_pairs(skewed_histogram, SECRET, Z))
        selection = select_within_budget(skewed_histogram, candidates, 2.0)
        report = knapsack_capacity_report(selection, 2.0)
        assert report["selected_pairs"] == len(selection.selected)
        assert report["budget_percent"] == 2.0
        assert report["budget_used_percent"] == pytest.approx(
            100.0 - selection.similarity_percent
        )
        assert report["total_cost"] == sum(a.cost for a in selection.adjustments)
