"""Unit tests for the shared utility helpers."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import derive_rng, ensure_rng, random_bigint, sample_without_replacement
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    require,
    require_in_range,
    require_non_empty,
    require_positive,
    require_type,
)


class TestRng:
    def test_ensure_rng_from_seed_is_deterministic(self):
        assert ensure_rng(5).integers(0, 1000) == ensure_rng(5).integers(0, 1000)

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_derive_rng_label_independence(self):
        a = derive_rng(7, "module-a").integers(0, 10_000)
        b = derive_rng(7, "module-b").integers(0, 10_000)
        a_again = derive_rng(7, "module-a").integers(0, 10_000)
        assert a == a_again
        assert a != b  # different labels give independent streams

    def test_random_bigint_range_and_determinism(self):
        value = random_bigint(3, 128)
        assert 0 <= value < (1 << 128)
        assert value == random_bigint(3, 128)

    def test_random_bigint_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            random_bigint(3, 0)

    def test_sample_without_replacement(self):
        sample = sample_without_replacement(5, 100, 10)
        assert len(set(sample.tolist())) == 10
        with pytest.raises(ValueError):
            sample_without_replacement(5, 3, 10)


class TestTiming:
    def test_stopwatch_accumulates(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("stage"):
            time.sleep(0.01)
        with stopwatch.measure("stage"):
            time.sleep(0.01)
        assert stopwatch.elapsed("stage") >= 0.02
        assert stopwatch.elapsed("missing") == 0.0
        assert "stage" in stopwatch.as_dict()

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError):
            require(False, "boom")

    def test_require_positive(self):
        require_positive("x", 1)
        require_positive("x", 0, strict=False)
        with pytest.raises(ConfigurationError):
            require_positive("x", 0)
        with pytest.raises(ConfigurationError):
            require_positive("x", -1, strict=False)

    def test_require_in_range(self):
        require_in_range("x", 5, 0, 10)
        with pytest.raises(ConfigurationError):
            require_in_range("x", 11, 0, 10)
        with pytest.raises(ConfigurationError):
            require_in_range("x", 0, 0, 10, inclusive=False)

    def test_require_non_empty(self):
        require_non_empty("items", [1])
        with pytest.raises(ConfigurationError):
            require_non_empty("items", [])

    def test_require_type(self):
        require_type("x", 3, int)
        with pytest.raises(ConfigurationError):
            require_type("x", "3", int)
