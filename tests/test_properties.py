"""Property-based tests (hypothesis) for the core FreqyWM invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.false_positive import (
    markov_bound,
    poisson_binomial_pmf,
    poisson_binomial_survival,
)
from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.modification import plan_adjustment
from repro.core.similarity import (
    histogram_similarity,
    ranking_preserved,
    similarity_percent,
)
from repro.core.tokens import TokenPair, canonical_token, compose_token, decompose_token

# Strategy: small token-count histograms with distinct counts spread enough
# to be interesting but cheap to process.
_counts = st.dictionaries(
    keys=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=12),
    values=st.integers(min_value=1, max_value=100_000),
    min_size=2,
    max_size=30,
)

_settings = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestModificationProperties:
    @_settings
    @given(
        first=st.integers(min_value=0, max_value=1_000_000),
        gap=st.integers(min_value=0, max_value=1_000_000),
        modulus=st.integers(min_value=2, max_value=5_000),
    )
    def test_adjustment_always_aligns_and_is_bounded(self, first, gap, modulus):
        frequency_first = first + gap
        frequency_second = first
        adjustment = plan_adjustment(
            frequency_first, frequency_second, modulus, TokenPair("a", "b")
        )
        new_difference = (frequency_first + adjustment.delta_first) - (
            frequency_second + adjustment.delta_second
        )
        assert new_difference % modulus == 0
        assert abs(adjustment.delta_first) <= math.ceil(modulus / 2)
        assert abs(adjustment.delta_second) <= math.ceil(modulus / 2)
        assert adjustment.cost <= modulus


class TestHashProperties:
    @_settings
    @given(
        token_i=st.text(min_size=1, max_size=20),
        token_j=st.text(min_size=1, max_size=20),
        secret=st.integers(min_value=0, max_value=(1 << 128) - 1),
        z=st.integers(min_value=2, max_value=100_000),
    )
    def test_pair_modulus_in_range_and_deterministic(self, token_i, token_j, secret, z):
        value = pair_modulus(token_i, token_j, secret, z)
        assert 0 <= value < z
        assert value == pair_modulus(token_i, token_j, secret, z)


class TestHistogramProperties:
    @_settings
    @given(counts=_counts)
    def test_histogram_sorted_and_total_preserved(self, counts):
        histogram = TokenHistogram.from_counts(counts)
        frequencies = histogram.frequencies()
        assert list(frequencies) == sorted(frequencies, reverse=True)
        assert histogram.total_count() == sum(counts.values())

    @_settings
    @given(counts=_counts)
    def test_boundaries_never_negative_and_infinite_only_at_top(self, counts):
        histogram = TokenHistogram.from_counts(counts)
        boundaries = histogram.boundaries()
        top = histogram.tokens[0]
        for token, bounds in boundaries.items():
            assert bounds.lower >= 0
            if token == top:
                assert math.isinf(bounds.upper)
            else:
                assert bounds.upper >= 0 and not math.isinf(bounds.upper)

    @_settings
    @given(counts=_counts)
    def test_self_similarity_is_perfect(self, counts):
        assert similarity_percent(counts, counts) >= 100.0 - 1e-9
        assert ranking_preserved(counts, counts)

    @_settings
    @given(counts=_counts, other=_counts)
    def test_similarity_symmetric_and_bounded(self, counts, other):
        forward = histogram_similarity(counts, other)
        backward = histogram_similarity(other, counts)
        assert 0.0 <= forward <= 1.0
        assert abs(forward - backward) < 1e-9


class TestTokenProperties:
    @_settings
    @given(
        values=st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\x1f"), min_size=0, max_size=10
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_compose_decompose_roundtrip(self, values):
        token = compose_token(tuple(values))
        assert decompose_token(token) == tuple(values)

    @_settings
    @given(value=st.one_of(st.text(max_size=20), st.integers(), st.booleans()))
    def test_canonical_token_is_idempotent(self, value):
        canonical = canonical_token(value)
        assert canonical_token(canonical) == canonical


class TestFalsePositiveProperties:
    @_settings
    @given(
        probabilities=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=40
        ),
        k=st.integers(min_value=0, max_value=45),
    )
    def test_markov_bound_dominates_exact_survival(self, probabilities, k):
        exact = poisson_binomial_survival(probabilities, k)
        bound = markov_bound(probabilities, k)
        assert exact <= bound + 1e-9
        assert 0.0 <= exact <= 1.0

    @_settings
    @given(
        probabilities=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=40
        )
    )
    def test_pmf_is_a_distribution(self, probabilities):
        pmf = poisson_binomial_pmf(probabilities)
        assert len(pmf) == len(probabilities) + 1
        assert abs(float(pmf.sum()) - 1.0) < 1e-9
