"""Differential test harness for the pluggable compute backends.

One harness, three layers of truth:

* the **reference dict implementations** (:mod:`repro.core.reference` and
  the per-pair arithmetic in :func:`repro.core.modification.plan_adjustment`)
  are the executable specification;
* the **NumPy backend** is the production default;
* **every other importable backend** (CuPy on GPU machines, plus the
  :class:`MirrorBackend` this module registers so the cross-backend
  machinery is always exercised with at least two backends) must agree
  with both, bit for bit — verdicts, evidence vectors, embedding deltas.

The ``assert_*`` helpers below run one (dataset, secret, config) case
through all three layers and raise on any divergence. They are used by
``tests/test_backend_parity.py`` (hypothesis-driven sweeps) and reused by
the pre-existing parity suites (``test_engine_parity.py``,
``test_batch_secrets.py``, ``test_embedding.py``) so the repo has a single
parity implementation instead of three ad-hoc ones.

This module is importable (no ``test_`` prefix) and must stay free of
test functions; pytest's rootdir-on-``sys.path`` behaviour makes it
reachable as ``import backend_harness`` from any test module.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.batch import detect_many, detect_many_secrets
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import DetectionResult, WatermarkDetector
from repro.core.eligibility import generate_eligible_pairs
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.hashing import PairModulusCache
from repro.core.histogram import TokenHistogram
from repro.core.knapsack import select_within_budget
from repro.core.matching import vertex_disjoint
from repro.core.modification import plan_adjustment
from repro.core.reference import detect_reference
from repro.core.secrets import WatermarkSecret
from repro.core.sharding import ShardedDetectionPool
from repro.exceptions import HistogramError

#: Default secret / modulus cap shared with the engine-parity suite.
HARNESS_SECRET = 0xFEEDFACE
HARNESS_Z = 61


class MirrorBackend(NumpyBackend):
    """A second registered backend: NumPy arithmetic under another name.

    Registering it gives every machine — including CPU-only CI — at least
    two live backends, so the parts of the system that must keep backends
    apart (fingerprint keys, :class:`DetectorCache` residency, the
    ``FREQYWM_BACKEND`` switch, per-backend device-buffer memos) are
    genuinely exercised instead of trivially passing with a single entry.
    """

    name = "mirror"


register_backend(MirrorBackend.name, MirrorBackend)


def parity_backend_names() -> Tuple[str, ...]:
    """Every backend the harness can run on this machine (numpy first)."""
    return available_backends()


def parity_backends() -> List[ArrayBackend]:
    """Live instances of every available backend."""
    return [get_backend(name) for name in parity_backend_names()]


@contextmanager
def use_backend(name: str):
    """Select ``name`` through the ``FREQYWM_BACKEND`` environment switch.

    This is the end-to-end selection path: code inside the block that
    resolves a default backend (detectors, eligibility scans, histogram
    updates, the FPR simulation) runs on ``name`` without any explicit
    argument threading.
    """
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = name
    try:
        yield get_backend(name)
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous


# --------------------------------------------------------------------------- #
# Case construction
# --------------------------------------------------------------------------- #


def build_watermarked_case(
    counts,
    *,
    secret_value: int = HARNESS_SECRET,
    modulus_cap: int = HARNESS_Z,
    budget: float = 2.0,
) -> Optional[Tuple[TokenHistogram, WatermarkSecret]]:
    """Build ``(histogram, secret)`` for a counts mapping, or ``None``.

    Follows the generation pipeline's shape (eligibility -> vertex-disjoint
    matching -> budgeted selection) and commits the selected pairs into a
    :class:`WatermarkSecret`. Returns ``None`` when the counts admit no
    watermark (no eligible pairs / empty selection), which hypothesis
    callers treat as a vacuous draw.
    """
    histogram = TokenHistogram.from_counts(counts)
    candidates = vertex_disjoint(
        generate_eligible_pairs(histogram, secret_value, modulus_cap)
    )
    if not candidates:
        return None
    selection = select_within_budget(histogram, candidates, budget)
    if not selection.selected:
        return None
    secret = WatermarkSecret.build(
        [item.pair for item in selection.selected], secret_value, modulus_cap
    )
    return histogram, secret


def perturbed(histogram: TokenHistogram, deltas) -> TokenHistogram:
    """Apply a (possibly destructive) delta mapping, tolerating rejects."""
    try:
        return histogram.with_updates(dict(deltas))
    except HistogramError:
        return histogram


# --------------------------------------------------------------------------- #
# Parity assertions
# --------------------------------------------------------------------------- #


def _assert_results_match(
    ours: DetectionResult, reference: DetectionResult, *, where: str
) -> None:
    assert ours.accepted == reference.accepted, where
    assert ours.accepted_pairs == reference.accepted_pairs, where
    assert ours.required_pairs == reference.required_pairs, where
    assert ours.total_pairs == reference.total_pairs, where


def assert_detection_parity(
    suspect,
    secret: WatermarkSecret,
    config: Optional[DetectionConfig] = None,
    *,
    backends: Optional[Iterable[ArrayBackend]] = None,
) -> DetectionResult:
    """Reference vs every backend for one suspect: verdicts AND evidence.

    Runs the reference dict loop once, then for each backend checks the
    single-dataset detector pass (including the full per-pair evidence
    tuple) and the one-row batch pass. Returns the reference result so
    callers can make additional assertions on it.
    """
    reference = detect_reference(suspect, secret, config)
    for backend in backends if backends is not None else parity_backends():
        detector = WatermarkDetector(secret, config, backend=backend)
        single = detector.detect(suspect)
        where = f"single-detect diverged on backend {backend.name!r}"
        _assert_results_match(single, reference, where=where)
        assert single.evidence == reference.evidence, where
        batched = detector.detect_many([suspect], collect_evidence=True)
        where = f"batched detect diverged on backend {backend.name!r}"
        _assert_results_match(batched[0], reference, where=where)
        assert batched[0].evidence == reference.evidence, where
    return reference


def assert_batch_parity(
    suspects: Sequence,
    secret: WatermarkSecret,
    config: Optional[DetectionConfig] = None,
    *,
    chunk_size: Optional[int] = None,
    backends: Optional[Iterable[ArrayBackend]] = None,
) -> List[DetectionResult]:
    """Reference vs every backend for a whole batch, in input order.

    Covers the matrix ``detect_many`` pass and, when ``chunk_size`` is
    given, the chunked dispatch path of :class:`ShardedDetectionPool`
    running in-process — the same chunk boundaries the sharded workers
    see, without spawning processes.
    """
    references = [detect_reference(suspect, secret, config) for suspect in suspects]
    for backend in backends if backends is not None else parity_backends():
        detector = WatermarkDetector(secret, config, backend=backend)
        report = detect_many(suspects, detector=detector)
        assert len(report) == len(references)
        for index, reference in enumerate(references):
            _assert_results_match(
                report[index],
                reference,
                where=f"detect_many[{index}] diverged on backend {backend.name!r}",
            )
        if chunk_size is not None:
            pool = ShardedDetectionPool(
                secret,
                config,
                workers=1,
                chunk_size=chunk_size,
                local_detector=detector,
            )
            try:
                chunked = pool.detect_many(suspects)
            finally:
                pool.close()
            for index, reference in enumerate(references):
                _assert_results_match(
                    chunked[index],
                    reference,
                    where=(
                        f"chunked detect_many[{index}] (chunk_size={chunk_size}) "
                        f"diverged on backend {backend.name!r}"
                    ),
                )
    return references


def assert_many_secrets_parity(
    data,
    secrets: Sequence[WatermarkSecret],
    config: Optional[DetectionConfig] = None,
    *,
    backends: Optional[Iterable[ArrayBackend]] = None,
) -> List[DetectionResult]:
    """Reference vs every backend for the stacked many-secrets pass.

    Each secret's reference verdict comes from the dict loop; every
    backend must reproduce it through both the uncached
    :func:`detect_many_secrets` path and the detector-cache path
    (whose cache keys embed the backend).
    """
    references = [detect_reference(data, secret, config) for secret in secrets]
    for backend in backends if backends is not None else parity_backends():
        for cache in (None, DetectorCache(capacity=None)):
            results = detect_many_secrets(
                data,
                secrets,
                config,
                collect_evidence=True,
                detector_cache=cache,
                backend=backend,
            )
            assert len(results) == len(references)
            path = "cached" if cache is not None else "uncached"
            for index, reference in enumerate(references):
                where = (
                    f"detect_many_secrets[{index}] ({path}) diverged on "
                    f"backend {backend.name!r}"
                )
                _assert_results_match(results[index], reference, where=where)
                assert results[index].evidence == reference.evidence, where
    return references


def assert_embedding_results_identical(
    left: WatermarkResult, right: WatermarkResult, *, where: str = "embedding"
) -> None:
    """Field-by-field ``WatermarkResult`` equality (timings excluded)."""
    assert left.original_histogram == right.original_histogram, where
    assert left.watermarked_histogram == right.watermarked_histogram, where
    assert left.watermarked_tokens == right.watermarked_tokens, where
    assert left.secret == right.secret, where
    assert left.selection == right.selection, where
    assert left.adjustments == right.adjustments, where
    assert left.eligible_pairs == right.eligible_pairs, where


def assert_embedding_parity(
    counts,
    *,
    secret_value: int = HARNESS_SECRET,
    config: Optional[GenerationConfig] = None,
    rng_seed: int = 1234,
    backend_names: Optional[Sequence[str]] = None,
) -> Optional[WatermarkResult]:
    """Embedding deltas: reference per-pair arithmetic vs every backend.

    Runs the full ``WM_Generate`` pipeline once per backend (selected via
    the ``FREQYWM_BACKEND`` switch, so the eligibility scan, the delta
    planning and the histogram scatter all route through that backend) and
    asserts:

    * all backends produce bit-identical :class:`WatermarkResult`\\ s;
    * every planned adjustment equals the reference
      :func:`plan_adjustment` arithmetic evaluated per pair;
    * the watermarked histogram equals the original with the reference
      deltas applied.

    Returns the first backend's result (``None`` when the counts admit no
    watermark).
    """
    histogram = TokenHistogram.from_counts(counts)
    names = list(backend_names) if backend_names is not None else list(
        parity_backend_names()
    )
    results: List[WatermarkResult] = []
    for name in names:
        with use_backend(name):
            fresh = TokenHistogram.from_counts(counts)  # cold array caches
            generator = WatermarkGenerator(config, rng=rng_seed)
            try:
                results.append(
                    generator.generate(fresh, secret_value=secret_value)
                )
            except Exception:
                # Unembeddable inputs must be unembeddable on every
                # backend; re-raise only if another backend succeeded.
                if results:
                    raise AssertionError(
                        f"backend {name!r} rejected counts other backends embedded"
                    )
                return None
    baseline = results[0]
    for name, result in zip(names[1:], results[1:]):
        assert_embedding_results_identical(
            baseline, result, where=f"embedding diverged on backend {name!r}"
        )
    # Reference check: per-pair dict arithmetic reproduces the deltas.
    reference_deltas: dict = {}
    for item, adjustment in zip(baseline.selection.selected, baseline.adjustments):
        expected = plan_adjustment(
            histogram.frequency(item.pair.first),
            histogram.frequency(item.pair.second),
            item.modulus,
            item.pair,
        )
        assert adjustment == expected, (
            f"adjustment for {item.pair} diverged from plan_adjustment reference"
        )
        for token, delta in expected.as_deltas().items():
            reference_deltas[token] = reference_deltas.get(token, 0) + delta
    assert baseline.watermarked_histogram == histogram.with_updates(
        reference_deltas
    ), "watermarked histogram diverged from reference delta application"
    return baseline


def assert_eligibility_parity(
    histogram: TokenHistogram,
    *,
    secret_value: int = HARNESS_SECRET,
    modulus_cap: int = HARNESS_Z,
    require_modification: bool = False,
    backends: Optional[Iterable[ArrayBackend]] = None,
) -> list:
    """Streaming-loop eligibility vs the vectorized plan on every backend.

    The loop fallback (no plan store) is the reference; the
    :class:`PairScanPlan` path must reproduce the exact ordered
    :class:`EligiblePair` list on every backend.
    """
    reference = generate_eligible_pairs(
        histogram,
        secret_value,
        modulus_cap,
        require_modification=require_modification,
    )
    for backend in backends if backends is not None else parity_backends():
        plan_store: dict = {}
        vectorized = generate_eligible_pairs(
            histogram,
            secret_value,
            modulus_cap,
            require_modification=require_modification,
            modulus_cache=PairModulusCache(secret_value, modulus_cap),
            plan_store=plan_store,
            backend=backend,
        )
        if len(histogram) >= 2:
            assert plan_store, "vectorized eligibility path was not taken"
        assert vectorized == reference, (
            f"eligibility scan diverged on backend {backend.name!r}"
        )
    return reference


def reference_false_positive_rate(
    moduli: Sequence[int], threshold: int, k: int, *, trials: int, seed
) -> float:
    """The seed Monte-Carlo loop: one 1-D draw and Python count per trial.

    Byte-for-byte the pre-backend implementation of
    :func:`repro.analysis.false_positive.empirical_false_positive_rate`;
    kept here as the harness's anchor for RNG-stream parity of the
    batched kernel path.
    """
    generator = np.random.default_rng(seed)
    moduli_array = np.asarray(moduli, dtype=int)
    hits = 0
    for _ in range(trials):
        remainders = generator.integers(0, moduli_array)
        accepted = int(np.sum(remainders <= threshold))
        if accepted >= k:
            hits += 1
    return hits / trials
