"""Docs-site integrity: the link checker works and the shipped docs pass."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_links import broken_links, iter_links  # noqa: E402


class TestLinkChecker:
    def test_detects_broken_and_accepts_valid(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n", encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](other.md) [anchor](other.md#sec) [ext](https://x.test/a)\n"
            "[frag](#here) [missing](gone.md)\n"
            "```\n[inside a fence](never.md)\n```\n",
            encoding="utf-8",
        )
        assert [target for _line, target in broken_links(page)] == ["gone.md"]

    def test_iter_links_reports_line_numbers(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("first\n[a](x.md)\n\n[b](y.md)\n", encoding="utf-8")
        assert iter_links(page) == [(2, "x.md"), (4, "y.md")]


class TestShippedDocs:
    def test_readme_and_docs_have_no_broken_internal_links(self):
        pages = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
        assert len(pages) >= 4  # README + architecture, cli, paper_mapping
        failures = {
            str(page.relative_to(REPO_ROOT)): broken_links(page)
            for page in pages
            if broken_links(page)
        }
        assert not failures, f"broken internal doc links: {failures}"
