"""Unit tests for the watermark secret list (L_sc) and its serialisation."""

from __future__ import annotations

import pytest

from repro.core.secrets import WatermarkSecret, max_modulus_cap
from repro.core.tokens import TokenPair
from repro.exceptions import ConfigurationError


@pytest.fixture()
def secret() -> WatermarkSecret:
    return WatermarkSecret.build(
        [("youtube.com", "instagram.com"), ("facebook.com", "bbc.com")],
        secret=123456789,
        modulus_cap=131,
        owner="acme",
    )


class TestConstruction:
    def test_pairs_are_token_pairs(self, secret):
        assert all(isinstance(pair, TokenPair) for pair in secret.pairs)
        assert len(secret) == 2

    def test_rejects_small_modulus_cap(self):
        with pytest.raises(ConfigurationError):
            WatermarkSecret.build([("a", "b")], secret=1, modulus_cap=1)

    def test_rejects_negative_secret(self):
        with pytest.raises(ConfigurationError):
            WatermarkSecret.build([("a", "b")], secret=-1, modulus_cap=10)

    def test_metadata_attached(self, secret):
        assert secret.metadata["owner"] == "acme"

    def test_with_metadata_merges(self, secret):
        extended = secret.with_metadata(buyer="b-1")
        assert extended.metadata["owner"] == "acme"
        assert extended.metadata["buyer"] == "b-1"
        assert "buyer" not in secret.metadata


class TestModuli:
    def test_pair_moduli_in_range(self, secret):
        for modulus in secret.pair_moduli().values():
            assert 0 <= modulus < 131

    def test_pair_moduli_deterministic(self, secret):
        assert secret.pair_moduli() == secret.pair_moduli()


class TestFingerprint:
    def test_fingerprint_changes_with_secret(self, secret):
        other = WatermarkSecret.build(
            [pair.as_tuple() for pair in secret.pairs], secret=987654321, modulus_cap=131
        )
        assert secret.fingerprint() != other.fingerprint()

    def test_fingerprint_changes_with_pairs(self, secret):
        other = WatermarkSecret.build(
            [("youtube.com", "instagram.com")], secret=secret.secret, modulus_cap=131
        )
        assert secret.fingerprint() != other.fingerprint()

    def test_fingerprint_stable(self, secret):
        assert secret.fingerprint() == secret.fingerprint()


class TestSerialisation:
    def test_json_roundtrip(self, secret):
        restored = WatermarkSecret.from_json(secret.to_json())
        assert restored.pairs == secret.pairs
        assert restored.secret == secret.secret
        assert restored.modulus_cap == secret.modulus_cap
        assert restored.metadata == secret.metadata

    def test_file_roundtrip(self, secret, tmp_path):
        path = tmp_path / "secret.json"
        secret.save(path)
        assert WatermarkSecret.load(path) == secret

    def test_large_secret_survives_roundtrip(self):
        secret = WatermarkSecret.build([("a", "b")], secret=(1 << 256) - 1, modulus_cap=17)
        assert WatermarkSecret.from_json(secret.to_json()).secret == (1 << 256) - 1

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            WatermarkSecret.from_dict({"pairs": [["a", "b"]]})


class TestModulusCapBound:
    def test_bound_is_frequency_spread(self):
        assert max_modulus_cap([1098, 980, 674, 537, 64, 53, 53]) == 1098 - 53

    def test_degenerate_histograms(self):
        assert max_modulus_cap([10]) == 2
        assert max_modulus_cap([5, 5, 5]) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            max_modulus_cap([])
