"""Unit tests for the distortion analysis and reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.distortion import (
    compare_methods,
    distortion_report,
    moment_preservation,
)
from repro.analysis.reporting import format_series, format_table, print_table


class TestDistortionReport:
    def test_identity_has_zero_distortion(self):
        counts = {"a": 100, "b": 50, "c": 10}
        report = distortion_report(counts, counts, method="identity")
        assert report.similarity_percent == pytest.approx(100.0)
        assert report.distortion_percent == pytest.approx(0.0)
        assert report.rank_changes == 0
        assert report.ranking_preserved
        assert report.total_absolute_change == 0
        assert report.tokens_changed == 0

    def test_report_on_watermarked_histogram(self, watermarked_bundle):
        result, original = watermarked_bundle
        report = distortion_report(
            original.as_dict(), result.watermarked_histogram.as_dict(), method="freqywm"
        )
        assert report.ranking_preserved
        assert report.distortion_percent < 2.0
        assert report.total_absolute_change == result.total_changes
        assert report.tokens_changed <= 2 * result.pair_count

    def test_rank_destroying_change_detected(self):
        original = {"a": 100, "b": 90, "c": 10}
        scrambled = {"a": 10, "b": 90, "c": 100}
        report = distortion_report(original, scrambled, method="scrambled")
        assert not report.ranking_preserved
        assert report.rank_changes == 2
        assert report.max_absolute_change == 90

    def test_as_dict_round_trip(self):
        report = distortion_report({"a": 5}, {"a": 6}, method="x")
        payload = report.as_dict()
        assert payload["method"] == "x"
        assert payload["total_absolute_change"] == 1

    def test_compare_methods(self, watermarked_bundle):
        result, original = watermarked_bundle
        reports = compare_methods(
            original.as_dict(),
            {
                "freqywm": result.watermarked_histogram.as_dict(),
                "identity": original.as_dict(),
            },
        )
        assert set(reports) == {"freqywm", "identity"}
        assert reports["identity"].distortion_percent == pytest.approx(0.0)

    def test_moment_preservation(self):
        original = {"a": 10, "b": 20, "c": 30}
        shifted = {"a": 20, "b": 30, "c": 40}
        moments = moment_preservation(original, shifted)
        assert moments["mean_shift"] == pytest.approx(10.0)
        assert moments["std_shift"] == pytest.approx(0.0, abs=1e-9)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [
            {"alpha": 0.5, "optimal": 139, "greedy": 110},
            {"alpha": 0.7, "optimal": 150, "greedy": 120},
        ]
        text = format_table(rows, title="Figure 2a")
        lines = text.splitlines()
        assert lines[0] == "Figure 2a"
        assert "alpha" in lines[1] and "optimal" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series(
            "z", ["optimal", "greedy"], {10: (5, 4), 131: (3, 2)}, title="Figure 2b"
        )
        assert "Figure 2b" in text
        assert "131" in text

    def test_print_table_smoke(self, capsys):
        print_table([{"x": 1}])
        assert "x" in capsys.readouterr().out

    def test_booleans_render_as_yes_no(self):
        text = format_table([{"ok": True, "bad": False}])
        assert "yes" in text and "no" in text
