"""Unit tests for the frequency-modification (embedding arithmetic) stage."""

from __future__ import annotations

import pytest

from repro.core.eligibility import generate_eligible_pairs
from repro.core.histogram import TokenHistogram
from repro.core.modification import (
    PairAdjustment,
    apply_adjustments,
    combined_deltas,
    plan_adjustment,
    plan_adjustments,
    total_cost,
    verify_alignment,
)
from repro.core.similarity import ranking_preserved
from repro.core.tokens import TokenPair
from repro.exceptions import GenerationError


class TestPaperRunningExample:
    def test_youtube_instagram_example(self):
        """Figure 1: 1098/537 under modulus 129 becomes 1075/559."""
        pair = TokenPair("youtube.com", "instagram.com")
        adjustment = plan_adjustment(1098, 537, 129, pair)
        assert adjustment.delta_first == -23
        assert adjustment.delta_second == +22
        assert (1098 + adjustment.delta_first - (537 + adjustment.delta_second)) % 129 == 0


class TestAdjustmentArithmetic:
    def test_zero_remainder_means_no_change(self):
        adjustment = plan_adjustment(200, 100, 50, TokenPair("a", "b"))
        assert adjustment.delta_first == 0
        assert adjustment.delta_second == 0
        assert adjustment.cost == 0

    def test_small_remainder_shrinks_difference(self):
        # difference 103, modulus 50 -> remainder 3 (<= 25): shrink by 3.
        adjustment = plan_adjustment(203, 100, 50, TokenPair("a", "b"))
        assert adjustment.delta_first == -2
        assert adjustment.delta_second == +1
        assert (203 - 2 - (100 + 1)) % 50 == 0

    def test_large_remainder_grows_difference(self):
        # difference 148, modulus 50 -> remainder 48 (> 25): grow by 2.
        adjustment = plan_adjustment(248, 100, 50, TokenPair("a", "b"))
        assert adjustment.delta_first == +1
        assert adjustment.delta_second == -1
        assert (248 + 1 - (100 - 1)) % 50 == 0

    def test_changes_bounded_by_half_modulus(self):
        for difference in range(0, 300, 7):
            adjustment = plan_adjustment(1000 + difference, 1000, 97, TokenPair("a", "b"))
            assert abs(adjustment.delta_first) <= (97 + 1) // 2
            assert abs(adjustment.delta_second) <= (97 + 1) // 2

    def test_alignment_holds_for_many_inputs(self):
        for first in range(500, 560):
            for modulus in (7, 13, 64, 129):
                adjustment = plan_adjustment(first, 123, modulus, TokenPair("a", "b"))
                aligned = (first + adjustment.delta_first) - (123 + adjustment.delta_second)
                assert aligned % modulus == 0

    def test_rejects_wrong_order(self):
        with pytest.raises(GenerationError):
            plan_adjustment(10, 20, 5, TokenPair("a", "b"))

    def test_rejects_bad_modulus(self):
        with pytest.raises(GenerationError):
            plan_adjustment(20, 10, 1, TokenPair("a", "b"))

    def test_cost_is_sum_of_absolute_deltas(self):
        adjustment = PairAdjustment(TokenPair("a", "b"), 50, -3, 2)
        assert adjustment.cost == 5
        assert adjustment.as_deltas() == {"a": -3, "b": 2}


class TestBatchApplication:
    def test_plan_apply_and_verify(self, running_example_histogram):
        eligible = generate_eligible_pairs(running_example_histogram, 11111, 131)
        # Keep a vertex-disjoint prefix so the batch mimics a matching.
        used, selected = set(), []
        for item in eligible:
            if item.pair.first in used or item.pair.second in used:
                continue
            used.update(item.pair.as_tuple())
            selected.append(item)
        adjustments = plan_adjustments(running_example_histogram, selected)
        assert verify_alignment(running_example_histogram, adjustments)
        watermarked = apply_adjustments(running_example_histogram, adjustments)
        assert ranking_preserved(
            running_example_histogram.as_dict(), watermarked.as_dict()
        )
        assert total_cost(adjustments) == sum(item.cost for item in selected)

    def test_combined_deltas_sums_overlaps(self):
        adjustments = [
            PairAdjustment(TokenPair("a", "b"), 10, -1, 1),
            PairAdjustment(TokenPair("a", "c"), 10, -2, 2),
        ]
        deltas = combined_deltas(adjustments)
        assert deltas == {"a": -3, "b": 1, "c": 2}

    def test_verify_alignment_detects_broken_pairs(self):
        histogram = TokenHistogram.from_counts({"a": 101, "b": 50, "c": 10})
        # An adjustment that does NOT align the pair under its modulus.
        bogus = [PairAdjustment(TokenPair("a", "b"), 7, 0, 0)]
        assert verify_alignment(histogram, bogus) is ((101 - 50) % 7 == 0)
