"""Unit tests for the token histogram and its ranking boundaries."""

from __future__ import annotations

import math

import pytest

from repro.core.histogram import TokenHistogram, pairwise_rank_gaps
from repro.exceptions import HistogramError


class TestConstruction:
    def test_from_tokens_counts_occurrences(self):
        histogram = TokenHistogram.from_tokens(["a", "b", "a", "c", "a", "b"])
        assert histogram.frequency("a") == 3
        assert histogram.frequency("b") == 2
        assert histogram.frequency("c") == 1

    def test_from_counts(self):
        histogram = TokenHistogram.from_counts({"x": 5, "y": 2})
        assert histogram.frequency("x") == 5

    def test_empty_dataset_rejected(self):
        with pytest.raises(HistogramError):
            TokenHistogram.from_tokens([])

    def test_zero_counts_dropped(self):
        histogram = TokenHistogram.from_counts({"x": 5, "y": 0})
        assert "y" not in histogram
        assert len(histogram) == 1

    def test_all_zero_counts_rejected(self):
        with pytest.raises(HistogramError):
            TokenHistogram.from_counts({"x": 0})

    def test_negative_count_rejected(self):
        with pytest.raises(HistogramError):
            TokenHistogram.from_counts({"x": -1})

    def test_non_integer_count_rejected(self):
        with pytest.raises(HistogramError):
            TokenHistogram.from_counts({"x": 1.5})

    def test_integral_float_count_accepted(self):
        histogram = TokenHistogram.from_counts({"x": 3.0})
        assert histogram.frequency("x") == 3

    def test_non_string_tokens_canonicalised(self):
        histogram = TokenHistogram.from_tokens([1, 1, 2])
        assert histogram.frequency("1") == 2


class TestOrderingAndAccess:
    def test_tokens_sorted_by_descending_frequency(self, running_example_histogram):
        tokens = running_example_histogram.tokens
        assert tokens[0] == "youtube.com"
        assert tokens[1] == "facebook.com"
        frequencies = running_example_histogram.frequencies()
        assert list(frequencies) == sorted(frequencies, reverse=True)

    def test_tie_break_is_lexicographic(self):
        histogram = TokenHistogram.from_counts({"b": 10, "a": 10})
        assert histogram.tokens == ("a", "b")

    def test_rank(self, running_example_histogram):
        assert running_example_histogram.rank("youtube.com") == 0
        assert running_example_histogram.rank("instagram.com") == 3
        assert running_example_histogram.rank("missing") is None

    def test_total_count(self, running_example_histogram):
        assert running_example_histogram.total_count() == 1098 + 980 + 674 + 537 + 64 + 53 + 53

    def test_top(self, running_example_histogram):
        assert running_example_histogram.top(2) == [
            ("youtube.com", 1098),
            ("facebook.com", 980),
        ]

    def test_membership_and_iteration(self, running_example_histogram):
        assert "bbc.com" in running_example_histogram
        assert list(running_example_histogram)[0] == "youtube.com"

    def test_equality(self):
        a = TokenHistogram.from_counts({"x": 1, "y": 2})
        b = TokenHistogram.from_counts({"y": 2, "x": 1})
        assert a == b


class TestBoundaries:
    def test_paper_boundary_rules(self, running_example_histogram):
        bounds = running_example_histogram.boundaries()
        # Most frequent token can grow without limit.
        assert math.isinf(bounds["youtube.com"].upper)
        # u_i = f_{i-1} - f_i for interior tokens.
        assert bounds["facebook.com"].upper == 1098 - 980
        assert bounds["google.com"].upper == 980 - 674
        # l_i = f_i - f_{i+1}.
        assert bounds["facebook.com"].lower == 980 - 674
        assert bounds["instagram.com"].lower == 537 - 64
        # Last token (tie at 53): lower boundary equals its own frequency.
        last = running_example_histogram.tokens[-1]
        assert bounds[last].lower == 53

    def test_tied_tokens_have_zero_slack_between_them(self):
        histogram = TokenHistogram.from_counts({"a": 10, "b": 10, "c": 5})
        bounds = histogram.boundaries()
        assert bounds["b"].upper == 0  # cannot grow past the tied neighbour

    def test_allows_change(self):
        histogram = TokenHistogram.from_counts({"a": 100, "b": 50, "c": 10})
        bounds = histogram.boundaries()
        assert bounds["b"].allows_change(40)
        assert not bounds["b"].allows_change(60)


class TestMutation:
    def test_with_updates_applies_deltas(self, running_example_histogram):
        updated = running_example_histogram.with_updates(
            {"youtube.com": -23, "instagram.com": +22}
        )
        assert updated.frequency("youtube.com") == 1075
        assert updated.frequency("instagram.com") == 559
        # Original is untouched (immutability of the public API).
        assert running_example_histogram.frequency("youtube.com") == 1098

    def test_with_updates_drops_zeroed_tokens(self):
        histogram = TokenHistogram.from_counts({"a": 2, "b": 5})
        updated = histogram.with_updates({"a": -2})
        assert "a" not in updated

    def test_with_updates_rejects_negative_result(self):
        histogram = TokenHistogram.from_counts({"a": 2, "b": 5})
        with pytest.raises(HistogramError):
            histogram.with_updates({"a": -3})

    def test_scaled_preserves_ranking(self, running_example_histogram):
        scaled = running_example_histogram.scaled(0.1)
        assert scaled.tokens[0] == "youtube.com"
        assert scaled.frequency("youtube.com") == 110

    def test_scaled_rejects_non_positive_factor(self, running_example_histogram):
        with pytest.raises(HistogramError):
            running_example_histogram.scaled(0.0)


class TestHelpers:
    def test_pairwise_rank_gaps(self):
        histogram = TokenHistogram.from_counts({"a": 10, "b": 7, "c": 7, "d": 1})
        assert pairwise_rank_gaps(histogram) == [3, 0, 6]
