"""Unit tests for the guess (brute-force) attack — Section V-A."""

from __future__ import annotations

import math

import pytest

from repro.attacks.guess import (
    GuessAttack,
    expected_guesses_to_succeed,
    guess_success_probability,
    single_pair_acceptance_probability,
)
from repro.core.config import DetectionConfig
from repro.exceptions import AttackError


class TestAnalyticalProbabilities:
    def test_single_pair_probability(self):
        assert single_pair_acceptance_probability(100, 0) == pytest.approx(0.01)
        assert single_pair_acceptance_probability(100, 9) == pytest.approx(0.10)
        assert single_pair_acceptance_probability(10, 99) == 1.0
        with pytest.raises(AttackError):
            single_pair_acceptance_probability(1, 0)

    def test_success_probability_decreases_with_k(self):
        previous = 1.0
        for k in (1, 2, 5, 10, 15):
            probability = guess_success_probability(20, k, modulus=131, threshold=0)
            assert probability <= previous
            previous = probability

    def test_success_probability_is_negligible_for_paper_parameters(self):
        # 139 pairs, k = half of them, z = 131, t = 0: essentially impossible.
        probability = guess_success_probability(139, 70, modulus=131, threshold=0)
        assert probability < 1e-80

    def test_required_more_than_guessed_is_impossible(self):
        assert guess_success_probability(5, 6, modulus=131) == 0.0

    def test_expected_guesses(self):
        assert expected_guesses_to_succeed(2, 2, modulus=10, threshold=0) == pytest.approx(
            (10 / 1) ** 2, rel=0.2
        )
        assert math.isinf(expected_guesses_to_succeed(5, 6, modulus=131))

    def test_larger_threshold_helps_the_attacker(self):
        strict = guess_success_probability(20, 10, modulus=131, threshold=0)
        loose = guess_success_probability(20, 10, modulus=131, threshold=20)
        assert loose > strict


class TestMonteCarloAttack:
    def test_attack_never_succeeds_at_strict_thresholds(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attack = GuessAttack(guessed_pairs=10, modulus_cap=131, rng=17)
        report = attack.run(
            result.watermarked_histogram,
            attempts=50,
            detection=DetectionConfig(pair_threshold=0, min_accepted_fraction=0.5),
        )
        assert report.attempts == 50
        assert report.successes == 0
        assert report.empirical_success_rate == 0.0
        assert report.analytical_success_probability < 1e-6

    def test_attack_succeeds_when_thresholds_are_absurdly_loose(self, watermarked_bundle):
        # Sanity check of the harness itself: with t larger than any modulus
        # every guessed pair verifies, so the forged secret is accepted.
        result, _ = watermarked_bundle
        attack = GuessAttack(guessed_pairs=3, modulus_cap=131, rng=17)
        report = attack.run(
            result.watermarked_histogram,
            attempts=5,
            detection=DetectionConfig(pair_threshold=131, min_accepted_fraction=1.0),
        )
        assert report.successes == 5

    def test_histogram_too_small_rejected(self):
        from repro.core.histogram import TokenHistogram

        tiny = TokenHistogram.from_counts({"a": 5, "b": 3})
        attack = GuessAttack(guessed_pairs=5, rng=1)
        with pytest.raises(AttackError):
            attack.attempt(tiny, DetectionConfig())

    def test_invalid_guessed_pairs(self):
        with pytest.raises(AttackError):
            GuessAttack(guessed_pairs=0)

    def test_report_parameters(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attack = GuessAttack(guessed_pairs=4, modulus_cap=61, rng=2)
        report = attack.run(result.watermarked_histogram, attempts=3)
        assert report.parameters["guessed_pairs"] == 4
        assert report.parameters["modulus_cap"] == 61


class TestBatchedMonteCarlo:
    """run() samples like attempt() but verifies via one batched pass."""

    def test_run_matches_sequential_attempts(self, watermarked_bundle):
        import numpy as np

        result, _ = watermarked_bundle
        detection = DetectionConfig(pair_threshold=131, min_accepted_fraction=1.0)
        histogram = result.watermarked_histogram
        # Identically seeded live generators: the batched run must draw
        # the same candidates in the same order as the sequential loop.
        sequential_attack = GuessAttack(
            guessed_pairs=4, modulus_cap=31, rng=np.random.default_rng(99)
        )
        sequential = sum(
            sequential_attack.attempt(histogram, detection) for _ in range(10)
        )
        batched_attack = GuessAttack(
            guessed_pairs=4, modulus_cap=31, rng=np.random.default_rng(99)
        )
        report = batched_attack.run(histogram, attempts=10, detection=detection)
        assert report.successes == sequential

    def test_forge_candidate_shape(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attack = GuessAttack(guessed_pairs=5, modulus_cap=31, rng=1)
        forged = attack.forge_candidate(result.watermarked_histogram)
        assert len(forged.pairs) == 5
        assert forged.modulus_cap == 31
        assert forged.metadata.get("forged") is True
