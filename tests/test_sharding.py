"""Sharded batch detection: parity and ordering versus in-process."""

from __future__ import annotations

import pickle

import pytest

from repro.core.batch import detect_many
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector
from repro.core.generator import generate_watermark
from repro.core.histogram import TokenHistogram
from repro.core.sharding import ShardedDetectionPool, default_worker_count
from repro.datasets.synthetic import generate_power_law_tokens
from repro.exceptions import DetectionError


@pytest.fixture(scope="module")
def watermark():
    tokens = generate_power_law_tokens(0.7, n_tokens=60, sample_size=8_000, rng=5)
    return generate_watermark(tokens, budget_percent=2.0, modulus_cap=31, rng=7)


@pytest.fixture(scope="module")
def suspects(watermark):
    """Mixed batch: watermarked copies, decoys, raw token lists."""
    decoy = TokenHistogram.from_tokens(
        [f"decoy-{i % 9}" for i in range(4_000)]
    )
    raw = generate_power_law_tokens(0.7, n_tokens=60, sample_size=2_000, rng=6)
    return [
        watermark.watermarked_histogram,
        decoy,
        list(raw),
        watermark.watermarked_histogram,
        decoy,
    ]


def _signatures(report):
    return [
        (result.accepted, result.accepted_pairs, result.total_pairs)
        for result in report.results
    ]


class TestParity:
    def test_sharded_matches_in_process_exactly(self, watermark, suspects):
        """ISSUE 2 property: identical results, identically ordered."""
        baseline = detect_many(suspects, watermark.secret)
        with ShardedDetectionPool(watermark.secret, workers=2, chunk_size=2) as pool:
            sharded = pool.detect_many(suspects)
        assert _signatures(sharded) == _signatures(baseline)

    def test_chunk_size_one_preserves_order(self, watermark, suspects):
        baseline = detect_many(suspects, watermark.secret)
        with ShardedDetectionPool(watermark.secret, workers=2, chunk_size=1) as pool:
            sharded = pool.detect_many(suspects)
        assert _signatures(sharded) == _signatures(baseline)

    def test_evidence_parity(self, watermark, suspects):
        config = DetectionConfig(pair_threshold=1)
        baseline = detect_many(
            suspects, watermark.secret, config, collect_evidence=True
        )
        with ShardedDetectionPool(watermark.secret, config, workers=2) as pool:
            sharded = pool.detect_many(suspects, collect_evidence=True)
        for ours, theirs in zip(sharded.results, baseline.results):
            assert ours.evidence == theirs.evidence

    def test_detect_files_matches_preloaded_path(self, watermark, tmp_path):
        from repro.datasets.loaders import load_histogram_streaming, save_token_file
        from repro.datasets.synthetic import generate_power_law_tokens

        wm_tokens = generate_power_law_tokens(0.7, n_tokens=60, sample_size=8_000, rng=5)
        paths = []
        for name, tokens in (
            ("copy.txt", wm_tokens),
            ("decoy.txt", [f"decoy-{i % 9}" for i in range(4_000)]),
            ("copy2.txt", wm_tokens),
        ):
            path = tmp_path / name
            save_token_file(tokens, path)
            paths.append(path)
        preloaded = detect_many(
            [load_histogram_streaming(path) for path in paths], watermark.secret
        )
        for workers in (1, 2):
            with ShardedDetectionPool(
                watermark.secret, workers=workers, chunk_size=1
            ) as pool:
                assert _signatures(pool.detect_files(paths)) == _signatures(preloaded)

    def test_batch_detect_many_workers_parameter(self, watermark, suspects):
        baseline = detect_many(suspects, watermark.secret)
        sharded = detect_many(suspects, watermark.secret, workers=2, chunk_size=2)
        assert _signatures(sharded) == _signatures(baseline)


class TestFallbacksAndLifecycle:
    def test_workers_one_never_spawns_processes(self, watermark, suspects):
        pool = ShardedDetectionPool(watermark.secret, workers=1)
        report = pool.detect_many(suspects)
        assert pool._pool is None  # in-process fast path
        assert _signatures(report) == _signatures(detect_many(suspects, watermark.secret))
        pool.close()

    def test_single_dataset_short_circuits(self, watermark):
        with ShardedDetectionPool(watermark.secret, workers=2) as pool:
            report = pool.detect_many([watermark.watermarked_histogram])
            assert pool._pool is None
            assert report[0].accepted

    def test_empty_batch(self, watermark):
        with ShardedDetectionPool(watermark.secret, workers=2) as pool:
            report = pool.detect_many([])
        assert len(report) == 0

    def test_close_is_idempotent(self, watermark, suspects):
        pool = ShardedDetectionPool(watermark.secret, workers=2)
        pool.detect_many(suspects)
        pool.close()
        pool.close()
        # After close a new pool is created lazily on the next call.
        assert _signatures(pool.detect_many(suspects)) == _signatures(
            detect_many(suspects, watermark.secret)
        )
        pool.close()

    def test_invalid_parameters_rejected(self, watermark):
        with pytest.raises(DetectionError):
            ShardedDetectionPool(watermark.secret, workers=0)
        with pytest.raises(DetectionError):
            ShardedDetectionPool(watermark.secret, chunk_size=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestSpawnFailureFallback:
    def test_spawn_failure_is_warned_and_logged_with_reason(
        self, watermark, suspects, monkeypatch, caplog
    ):
        """ISSUE 3 regression: the fallback must surface *why* it fell back."""
        import logging
        import multiprocessing

        class FailingContext:
            def Pool(self, *args, **kwargs):
                raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method=None: FailingContext()
        )
        pool = ShardedDetectionPool(watermark.secret, workers=2)
        with caplog.at_level(logging.WARNING, logger="repro.core.sharding"):
            with pytest.warns(RuntimeWarning, match="no /dev/shm in this sandbox"):
                report = pool.detect_many(suspects)
        # The logging stream carries the exception type and message.
        assert "no /dev/shm in this sandbox" in caplog.text
        assert "OSError" in caplog.text
        assert "falling back to in-process detection" in caplog.text
        # The batch still completes, in-process, with identical verdicts.
        assert pool.workers == 1
        assert _signatures(report) == _signatures(
            detect_many(suspects, watermark.secret)
        )
        pool.close()

    def test_local_detector_reuse_hook(self, watermark, suspects):
        detector = WatermarkDetector(watermark.secret)
        with ShardedDetectionPool(
            watermark.secret, workers=1, local_detector=detector
        ) as pool:
            assert pool._local is detector
            report = pool.detect_many(suspects)
        assert _signatures(report) == _signatures(
            detect_many(suspects, watermark.secret)
        )


class TestSerialisation:
    def test_histogram_pickle_roundtrip_is_lean_and_exact(self, watermark):
        histogram = watermark.watermarked_histogram
        arrays = histogram.arrays()  # populate caches
        assert arrays is histogram.arrays()
        clone = pickle.loads(pickle.dumps(histogram))
        assert clone == histogram
        assert clone.tokens == histogram.tokens
        assert clone.boundaries() == histogram.boundaries()
        # Detection through a pickled histogram matches the original.
        detector = WatermarkDetector(watermark.secret)
        assert (
            detector.detect(clone).accepted_pairs
            == detector.detect(histogram).accepted_pairs
        )

    def test_detection_results_pickle(self, watermark, suspects):
        report = detect_many(
            suspects, watermark.secret, collect_evidence=True
        )
        clone = pickle.loads(pickle.dumps(report.results))
        assert [r.accepted for r in clone] == [r.accepted for r in report.results]
