"""Unit tests for the destroy attacks — Section V-C."""

from __future__ import annotations

import pytest

from repro.attacks.destroy import (
    BoundaryNoiseAttack,
    PercentageNoiseAttack,
    ReorderingNoiseAttack,
    reordering_success_rates,
    sweep_thresholds,
    verified_pair_fraction,
)
from repro.core.similarity import ranking_preserved
from repro.exceptions import AttackError


class TestRankPreservingAttacks:
    def test_boundary_noise_preserves_ranking(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attack = BoundaryNoiseAttack(rng=3)
        attacked = attack.tamper(result.watermarked_histogram)
        assert ranking_preserved(
            result.watermarked_histogram.as_dict(), attacked.as_dict()
        )

    def test_percentage_noise_preserves_ranking_and_is_small(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attack = PercentageNoiseAttack(1.0, rng=3)
        attacked = attack.tamper(result.watermarked_histogram)
        assert ranking_preserved(
            result.watermarked_histogram.as_dict(), attacked.as_dict()
        )
        # A 1%-of-slack attack barely moves any frequency.
        for token in attacked.tokens:
            before = result.watermarked_histogram.frequency(token)
            after = attacked.frequency(token)
            assert abs(after - before) <= max(2, int(0.05 * before))

    def test_percentage_zero_is_identity(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attacked = PercentageNoiseAttack(0.0, rng=3).tamper(result.watermarked_histogram)
        assert attacked.as_dict() == result.watermarked_histogram.as_dict()

    def test_invalid_percent(self):
        with pytest.raises(AttackError):
            PercentageNoiseAttack(-1)
        with pytest.raises(AttackError):
            ReorderingNoiseAttack(-5)

    def test_attack_run_wrapper_reports_detection(self, watermarked_bundle):
        result, _ = watermarked_bundle
        outcome = PercentageNoiseAttack(1.0, rng=3).run(
            result.watermarked_histogram, result.secret
        )
        assert outcome.attack_name == "destroy-percentage-within-bounds"
        assert outcome.detection is not None
        assert 0.0 <= outcome.accepted_pair_fraction <= 1.0


class TestReorderingAttack:
    def test_reordering_attack_changes_ranking_at_high_noise(self, watermarked_bundle):
        result, _ = watermarked_bundle
        attacked = ReorderingNoiseAttack(90.0, rng=3).tamper(result.watermarked_histogram)
        assert not ranking_preserved(
            result.watermarked_histogram.as_dict(), attacked.as_dict()
        )

    def test_success_rate_degrades_with_noise(self, watermarked_bundle):
        result, _ = watermarked_bundle
        rates = reordering_success_rates(
            result.watermarked_histogram,
            result.secret,
            percents=(10, 90),
            pair_threshold=4,
            repetitions=3,
            rng=5,
        )
        assert set(rates) == {10.0, 90.0}
        assert rates[10.0] >= rates[90.0]
        # Even at 90% noise a substantial share of pairs still verifies
        # (the paper reports ~76%); be generous on the lower bound.
        assert rates[90.0] > 0.3
        assert rates[10.0] > 0.6


class TestThresholdSweeps:
    def test_unattacked_data_verifies_fully_at_t0(self, watermarked_bundle):
        result, _ = watermarked_bundle
        points = sweep_thresholds(
            result.watermarked_histogram, result.secret, thresholds=(0, 4)
        )
        assert points[0].accepted_fraction == pytest.approx(1.0)
        assert points[0].attack_name == "no-attack"

    def test_attacked_sweep_improves_with_threshold(self, watermarked_bundle):
        result, _ = watermarked_bundle
        points = sweep_thresholds(
            result.watermarked_histogram,
            result.secret,
            thresholds=(0, 2, 10),
            attack=BoundaryNoiseAttack(rng=9),
            repetitions=2,
        )
        fractions = [point.accepted_fraction for point in points]
        assert fractions == sorted(fractions)

    def test_non_watermarked_dataset_has_low_false_positive_fraction(
        self, watermarked_bundle
    ):
        # Like the paper's Figure 5 control: a non-watermarked dataset over
        # the same token space but with a different skewness (α = 0.7)
        # verifies only a small fraction of the pairs at t = 0.
        from repro.datasets.synthetic import generate_power_law_histogram

        result, _original = watermarked_bundle
        non_watermarked = generate_power_law_histogram(
            0.7, n_tokens=120, sample_size=60_000, mode="sampled", rng=909
        )
        fraction = verified_pair_fraction(non_watermarked, result.secret, pair_threshold=0)
        # At test scale the eligible moduli are small (single digits), so the
        # per-pair chance-acceptance rate 1/s_ij is non-trivial; the fraction
        # must still sit clearly below the 50% detection threshold.
        assert fraction < 0.45
