"""The pluggable scheduler: ordering, state reuse, and the fault paths.

Three layers, matching ``docs/scheduler.md``:

* **LocalScheduler** — in-process fast path, submission-order results
  under induced out-of-order completion, worker-local state reuse,
  spawn-failure fallback, and the crash contract (a worker killed
  mid-task is retried exactly once, then surfaces as
  :class:`~repro.exceptions.WorkerCrashError` with the task's
  fingerprint).
* **Wire codec** — address parsing and TaskSpec ↔ TaskRequest round
  trips.
* **RemoteScheduler** — real ``freqywm worker`` subprocesses over Unix
  sockets: ordered gather across two workers, typed remote errors, a
  heartbeat timeout marking an unresponsive worker dead *without* losing
  its in-flight task, and the all-workers-dead terminal error.

Task functions live in ``tests/scheduler_tasks.py`` so spawned workers
can ``--import`` the same registrations.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading

import pytest

import scheduler_tasks
from repro.exceptions import DetectionError, SchedulerError, WorkerCrashError
from repro.exec.remote import (
    RemoteScheduler,
    parse_address,
    spec_from_request,
    spec_to_request,
)
from repro.exec.scheduler import (
    LocalScheduler,
    TaskSpec,
    create_scheduler,
    register_task_function,
    run_task,
)


def _echo_specs(values):
    return [
        TaskSpec(fingerprint=f"echo-{index}", function="schedtest.echo", payload=value)
        for index, value in enumerate(values)
    ]


# --------------------------------------------------------------------------- #
# LocalScheduler
# --------------------------------------------------------------------------- #


class TestLocalInline:
    def test_workers_one_runs_inline_and_in_order(self):
        streamed = []
        with LocalScheduler(workers=1) as scheduler:
            results = scheduler.run(
                _echo_specs([10, 20, 30]),
                on_result=lambda index, value: streamed.append((index, value)),
            )
        assert results == [10, 20, 30]
        assert streamed == [(0, 10), (1, 20), (2, 30)]
        assert scheduler._pool is None  # nothing was ever spawned

    def test_single_task_never_spawns_a_pool(self):
        with LocalScheduler(workers=4) as scheduler:
            assert scheduler.run(_echo_specs(["only"])) == ["only"]
            assert scheduler._pool is None

    def test_empty_batch(self):
        with LocalScheduler(workers=2) as scheduler:
            assert scheduler.run([]) == []

    def test_inline_state_is_reused_not_rebuilt(self):
        spec = TaskSpec(
            fingerprint="state-1",
            function="schedtest.with_state",
            payload="p",
            initializer="schedtest.state",
            init_key="key-a",
            init_args=("a",),
        )
        with LocalScheduler(workers=1, inline_state={"key-a": "prebuilt"}) as s:
            assert s.run([spec]) == [("prebuilt", "p")]
        # Without prebuilt state the initializer runs once and is cached.
        with LocalScheduler(workers=1) as s:
            first, second = s.run([spec, spec])
            assert first == second
            assert first[0].startswith("state:a:")

    def test_workers_validation(self):
        with pytest.raises(SchedulerError, match="workers"):
            LocalScheduler(workers=0)
        with pytest.raises(SchedulerError, match="max_retries"):
            LocalScheduler(workers=1, max_retries=-1)


class TestLocalPool:
    def test_results_in_submission_order_under_out_of_order_completion(self):
        specs = [
            TaskSpec(
                fingerprint=f"sleepy-{index}",
                function="schedtest.sleepy",
                payload=(0.5 if index == 0 else 0.0, index),
            )
            for index in range(4)
        ]
        streamed = []
        with LocalScheduler(workers=2) as scheduler:
            results = scheduler.run(
                specs, on_result=lambda index, value: streamed.append(index)
            )
        assert results == [0, 1, 2, 3]
        # The slow first task completes last, so streaming order differs
        # from submission order — exactly what the ordered gather hides.
        assert streamed[-1] == 0
        assert sorted(streamed) == [0, 1, 2, 3]

    def test_worker_killed_mid_task_is_retried_once_and_succeeds(self, tmp_path):
        sentinel = tmp_path / "crashed-once"
        specs = [
            TaskSpec(
                fingerprint="die-once",
                function="schedtest.die_once",
                payload=str(sentinel),
            )
        ] + _echo_specs(["a", "b", "c"])
        with LocalScheduler(workers=2, crash_grace=0.1) as scheduler:
            results = scheduler.run(specs)
        assert results == ["survived", "a", "b", "c"]
        assert sentinel.exists()

    def test_persistent_crasher_raises_worker_crash_error(self):
        specs = _echo_specs(["x"]) + [
            TaskSpec(fingerprint="always-dies", function="schedtest.die")
        ]
        with LocalScheduler(workers=2, crash_grace=0.1) as scheduler:
            with pytest.raises(WorkerCrashError) as excinfo:
                scheduler.run(specs)
        assert excinfo.value.fingerprint == "always-dies"
        assert excinfo.value.attempts == 2  # first try + exactly one retry

    def test_task_exceptions_propagate_as_is(self):
        specs = _echo_specs(["x"]) + [
            TaskSpec(fingerprint="boom", function="schedtest.fail", payload="kaput")
        ]
        with LocalScheduler(workers=2) as scheduler:
            with pytest.raises(DetectionError, match="kaput"):
                scheduler.run(specs)

    def test_spawn_failure_falls_back_inline_via_hook(self, monkeypatch):
        class FailingContext:
            def Pool(self, processes=None):
                raise OSError("no forking here")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method=None: FailingContext()
        )
        failures = []
        with LocalScheduler(workers=4, on_spawn_failure=failures.append) as s:
            assert s.run(_echo_specs([1, 2, 3])) == [1, 2, 3]
            assert s.workers == 1
        assert len(failures) == 1
        assert "no forking here" in str(failures[0])


class TestRegistry:
    def test_rebinding_a_name_to_a_different_callable_raises(self):
        with pytest.raises(SchedulerError, match="already registered"):
            register_task_function("schedtest.echo", scheduler_tasks.fail)
        # Re-registering the same callable is a no-op.
        register_task_function("schedtest.echo", scheduler_tasks.echo)

    def test_unknown_function_raises(self):
        with pytest.raises(SchedulerError, match="unknown task function"):
            run_task(TaskSpec(fingerprint="f", function="schedtest.nope"))

    def test_task_spec_validation(self):
        with pytest.raises(SchedulerError, match="non-empty"):
            TaskSpec(fingerprint="f", function="")
        with pytest.raises(SchedulerError, match="init_key"):
            TaskSpec(fingerprint="f", function="schedtest.echo", initializer="i")

    def test_create_scheduler_rejects_unknown_names(self):
        from repro.exec.policy import ExecutionPolicy

        policy = ExecutionPolicy().merged(scheduler="mainframe")
        with pytest.raises(SchedulerError, match="unknown scheduler"):
            create_scheduler(policy)


# --------------------------------------------------------------------------- #
# Wire codec
# --------------------------------------------------------------------------- #


class TestAddressesAndCodec:
    def test_parse_unix_and_tcp_addresses(self):
        assert parse_address("unix:/tmp/w.sock") == ("unix", "/tmp/w.sock")
        assert parse_address("tcp:localhost:9999") == ("tcp", ("localhost", 9999))
        assert parse_address("127.0.0.1:80") == ("tcp", ("127.0.0.1", 80))

    @pytest.mark.parametrize("bad", ["", "unix:", "host:", "host:not-a-port", ":9"])
    def test_malformed_addresses_are_rejected(self, bad):
        with pytest.raises(SchedulerError):
            parse_address(bad)

    def test_spec_round_trips_through_the_wire_request(self):
        spec = TaskSpec(
            fingerprint="fp-1",
            function="schedtest.with_state",
            payload={"k": [1, 2]},
            initializer="schedtest.state",
            init_key="key-z",
            init_args=("z",),
        )
        assert spec_from_request(spec_to_request(spec, "task-0-1-1")) == spec


# --------------------------------------------------------------------------- #
# RemoteScheduler against real freqywm worker subprocesses
# --------------------------------------------------------------------------- #


@pytest.fixture()
def two_workers(tmp_path):
    """Two live ``freqywm worker`` processes on Unix sockets."""
    sock_a = tmp_path / "worker-a.sock"
    sock_b = tmp_path / "worker-b.sock"
    with scheduler_tasks.spawn_worker(sock_a):
        with scheduler_tasks.spawn_worker(sock_b):
            yield (f"unix:{sock_a}", f"unix:{sock_b}")


@pytest.fixture()
def unresponsive_worker(tmp_path):
    """A fake worker that accepts connections and reads but never replies."""
    path = tmp_path / "black-hole.sock"
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(str(path))
    listener.listen(4)
    stop = threading.Event()
    connections = []

    def serve():
        listener.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(0.1)
            connections.append(conn)
        for conn in connections:
            conn.close()
        listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    yield f"unix:{path}"
    stop.set()
    thread.join(timeout=5)


class TestRemoteScheduler:
    def test_requires_at_least_one_address(self):
        with pytest.raises(SchedulerError, match="at least one"):
            RemoteScheduler([])

    def test_ordered_gather_across_two_workers(self, two_workers):
        specs = [
            TaskSpec(
                fingerprint=f"sleepy-{index}",
                function="schedtest.sleepy",
                payload=(0.3 if index == 0 else 0.0, index),
            )
            for index in range(6)
        ]
        streamed = []
        with RemoteScheduler(two_workers) as scheduler:
            assert scheduler.workers == 2
            results = scheduler.run(
                specs, on_result=lambda index, value: streamed.append(index)
            )
        assert results == [0, 1, 2, 3, 4, 5]
        assert sorted(streamed) == [0, 1, 2, 3, 4, 5]
        assert streamed[-1] == 0  # the slow task finished last

    def test_worker_local_state_is_built_once_per_worker(self, two_workers):
        specs = [
            TaskSpec(
                fingerprint=f"state-{index}",
                function="schedtest.with_state",
                payload=index,
                initializer="schedtest.state",
                init_key="shared-key",
                init_args=("shared",),
            )
            for index in range(8)
        ]
        with RemoteScheduler(two_workers) as scheduler:
            results = scheduler.run(specs)
        states = {state for state, _payload in results}
        # One cached state per worker process, never one per task.
        assert 1 <= len(states) <= 2
        assert all(state.startswith("state:shared:") for state in states)

    def test_remote_task_errors_come_back_typed(self, two_workers):
        spec = TaskSpec(
            fingerprint="boom", function="schedtest.fail", payload="remote kaput"
        )
        with RemoteScheduler(two_workers[:1]) as scheduler:
            with pytest.raises(DetectionError, match="remote kaput"):
                scheduler.run([spec])

    def test_heartbeat_timeout_marks_worker_dead_without_losing_tasks(
        self, two_workers, unresponsive_worker
    ):
        # One real worker + one black hole. The black hole accepts the
        # connection and a task line, then stays silent; after the
        # heartbeat timeout its in-flight task must be resubmitted to
        # the surviving worker, not lost.
        addresses = [unresponsive_worker, two_workers[0]]
        specs = _echo_specs(list(range(6)))
        scheduler = RemoteScheduler(
            addresses, heartbeat_interval=0.05, heartbeat_timeout=0.4
        )
        with scheduler:
            results = scheduler.run(specs)
        assert results == list(range(6))
        assert unresponsive_worker in scheduler._dead

    def test_all_workers_dead_raises_scheduler_error(self, unresponsive_worker):
        scheduler = RemoteScheduler(
            [unresponsive_worker], heartbeat_interval=0.05, heartbeat_timeout=0.3
        )
        with scheduler:
            with pytest.raises(SchedulerError, match="remote workers"):
                scheduler.run(_echo_specs([1, 2]))

    def test_unreachable_address_is_skipped_when_another_worker_lives(
        self, two_workers, tmp_path
    ):
        addresses = [f"unix:{tmp_path / 'nonexistent.sock'}", two_workers[1]]
        with RemoteScheduler(addresses) as scheduler:
            assert scheduler.run(_echo_specs(["a", "b"])) == ["a", "b"]
