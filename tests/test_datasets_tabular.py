"""Unit tests for the tabular dataset container and file loaders."""

from __future__ import annotations

import pytest

from repro.core.histogram import TokenHistogram
from repro.datasets.loaders import (
    load_histogram_json,
    load_table_csv,
    load_token_file,
    save_histogram_json,
    save_table_csv,
    save_token_file,
    tokens_from_table,
)
from repro.datasets.tabular import TabularDataset
from repro.exceptions import DatasetError


@pytest.fixture()
def table() -> TabularDataset:
    return TabularDataset(
        columns=("city", "year", "sales"),
        rows=[
            {"city": "madrid", "year": 2023, "sales": 10},
            {"city": "paris", "year": 2023, "sales": 7},
            {"city": "madrid", "year": 2024, "sales": 12},
        ],
    )


class TestTabularDataset:
    def test_len_iter_getitem(self, table):
        assert len(table) == 3
        assert table[0]["city"] == "madrid"
        assert [row["year"] for row in table] == [2023, 2023, 2024]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(DatasetError):
            TabularDataset(columns=("a", "a"), rows=[])

    def test_row_missing_column_rejected(self):
        with pytest.raises(DatasetError):
            TabularDataset(columns=("a", "b"), rows=[{"a": 1}])

    def test_append_validates(self, table):
        table.append({"city": "rome", "year": 2024, "sales": 3})
        assert len(table) == 4
        with pytest.raises(DatasetError):
            table.append({"city": "rome"})

    def test_column_and_projection(self, table):
        assert table.column("city") == ["madrid", "paris", "madrid"]
        projected = table.project(["city"])
        assert projected.columns == ("city",)
        with pytest.raises(DatasetError):
            table.column("missing")

    def test_select(self, table):
        madrid = table.select(lambda row: row["city"] == "madrid")
        assert len(madrid) == 2

    def test_rows_matching_stringified(self, table):
        matches = table.rows_matching({"year": "2023"})
        assert len(matches) == 2

    def test_value_counts(self, table):
        assert table.value_counts("city") == {"madrid": 2, "paris": 1}

    def test_sample(self, table, rng):
        sampled = table.sample(0.67, rng)
        assert 1 <= len(sampled) <= 3
        with pytest.raises(DatasetError):
            table.sample(0.0, rng)

    def test_copy_is_independent(self, table):
        clone = table.copy()
        clone.rows[0]["city"] = "berlin"
        assert table[0]["city"] == "madrid"

    def test_csv_roundtrip(self, table, tmp_path):
        path = tmp_path / "table.csv"
        table.to_csv(path)
        restored = TabularDataset.from_csv(path)
        assert restored.columns == table.columns
        assert len(restored) == len(table)
        assert restored[0]["city"] == "madrid"

    def test_csv_text_roundtrip(self, table):
        text = table.to_csv()
        restored = TabularDataset.from_csv(text)
        assert len(restored) == 3

    def test_from_records(self):
        dataset = TabularDataset.from_records(["a", "b"], [(1, 2), (3, 4)])
        assert dataset[1]["b"] == 4


class TestLoaders:
    def test_token_file_roundtrip(self, tmp_path):
        path = tmp_path / "tokens.txt"
        save_token_file(["a", "b", "a"], path)
        assert load_token_file(path) == ["a", "b", "a"]

    def test_empty_token_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_token_file(path)

    def test_histogram_json_roundtrip(self, tmp_path):
        path = tmp_path / "histogram.json"
        histogram = TokenHistogram.from_counts({"x": 3, "y": 1})
        save_histogram_json(histogram, path)
        assert load_histogram_json(path).as_dict() == {"x": 3, "y": 1}

    def test_histogram_json_must_be_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_histogram_json(path)

    def test_table_csv_helpers(self, table, tmp_path):
        path = tmp_path / "table.csv"
        save_table_csv(table, path)
        assert len(load_table_csv(path)) == len(table)

    def test_tokens_from_table_single_and_composite(self, table):
        single = tokens_from_table(table, ["city"])
        assert single == ["madrid", "paris", "madrid"]
        composite = tokens_from_table(table, ["city", "year"])
        assert len(set(composite)) == 3
        with pytest.raises(DatasetError):
            tokens_from_table(table, [])
