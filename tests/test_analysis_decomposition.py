"""Unit tests for the trend/seasonality/residual decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.decomposition import (
    component_difference,
    decompose,
    series_similarity_percent,
)
from repro.exceptions import ConfigurationError


def _weekly_series(days: int = 56, *, trend_slope: float = 2.0, noise: float = 0.0, seed: int = 3):
    rng = np.random.default_rng(seed)
    t = np.arange(days)
    seasonal = 20.0 * np.sin(2 * np.pi * t / 7.0)
    series = 500.0 + trend_slope * t + seasonal + rng.normal(0, noise, size=days)
    return series


class TestDecompose:
    def test_components_sum_to_series(self):
        series = _weekly_series(noise=5.0)
        decomposition = decompose(series, period=7)
        reconstructed = decomposition.trend + decomposition.seasonal + decomposition.residual
        assert np.allclose(reconstructed, series)

    def test_trend_captures_slope(self):
        series = _weekly_series(trend_slope=3.0, noise=0.0)
        decomposition = decompose(series, period=7)
        interior = decomposition.trend[7:-7]
        slopes = np.diff(interior)
        assert np.mean(slopes) == pytest.approx(3.0, abs=0.5)

    def test_seasonal_component_has_weekly_period(self):
        series = _weekly_series(noise=0.0)
        decomposition = decompose(series, period=7)
        seasonal = decomposition.seasonal
        assert np.allclose(seasonal[:7], seasonal[7:14], atol=1e-6)
        assert seasonal.max() > 10.0

    def test_seasonal_component_is_centred(self):
        decomposition = decompose(_weekly_series(), period=7)
        assert decomposition.seasonal[:7].mean() == pytest.approx(0.0, abs=1e-9)

    def test_residual_small_for_clean_signal(self):
        decomposition = decompose(_weekly_series(noise=0.0), period=7)
        interior = decomposition.residual[7:-7]
        assert np.abs(interior).mean() < 5.0

    def test_period_one_has_no_seasonality(self):
        decomposition = decompose([1.0, 2.0, 3.0, 4.0], period=1)
        assert np.allclose(decomposition.seasonal, 0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            decompose([1.0], period=7)
        with pytest.raises(ConfigurationError):
            decompose([1.0, 2.0], period=0)

    def test_as_dict(self):
        decomposition = decompose(_weekly_series(), period=7)
        assert set(decomposition.as_dict()) == {"series", "trend", "seasonal", "residual"}


class TestComparisons:
    def test_component_difference_zero_for_identical(self):
        series = _weekly_series()
        a = decompose(series, period=7)
        b = decompose(series.copy(), period=7)
        differences = component_difference(a, b)
        assert all(value == pytest.approx(0.0, abs=1e-12) for value in differences.values())

    def test_component_difference_small_for_tiny_perturbation(self):
        series = _weekly_series()
        perturbed = series.copy()
        perturbed[10] += 1.0
        differences = component_difference(decompose(series, period=7), decompose(perturbed, period=7))
        assert differences["series"] < 0.01

    def test_component_difference_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            component_difference(
                decompose(_weekly_series(28), period=7), decompose(_weekly_series(56), period=7)
            )

    def test_series_similarity(self):
        series = _weekly_series()
        assert series_similarity_percent(series, series) == pytest.approx(100.0)
        assert series_similarity_percent(series, series * 1.01) > 99.9
        with pytest.raises(ConfigurationError):
            series_similarity_percent([1.0, 2.0], [1.0])
