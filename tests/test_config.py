"""Unit tests for generation and detection configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DEFAULT_BUDGET_PERCENT,
    DEFAULT_MODULUS_CAP,
    DetectionConfig,
    GenerationConfig,
)
from repro.exceptions import ConfigurationError


class TestGenerationConfig:
    def test_defaults_match_paper_settings(self):
        config = GenerationConfig()
        assert config.budget_percent == DEFAULT_BUDGET_PERCENT == 2.0
        assert config.modulus_cap == DEFAULT_MODULUS_CAP == 131
        assert config.strategy == "optimal"
        assert config.metric == "cosine"

    def test_rejects_budget_outside_range(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(budget_percent=-0.1)
        with pytest.raises(ConfigurationError):
            GenerationConfig(budget_percent=100.5)

    def test_rejects_small_modulus_cap(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(modulus_cap=1)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(strategy="simulated-annealing")

    def test_rejects_non_positive_secret_bits(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(secret_bits=0)

    def test_rejects_non_positive_max_candidates(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(max_candidates=0)

    def test_accepts_excluded_tokens(self):
        config = GenerationConfig(excluded_tokens=("top-url",))
        assert "top-url" in config.excluded_tokens


class TestDetectionConfig:
    def test_defaults(self):
        config = DetectionConfig()
        assert config.pair_threshold == 0
        assert config.min_accepted_fraction == 0.5
        assert config.symmetric_tolerance is False

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(pair_threshold=-1)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(pair_threshold_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DetectionConfig(min_accepted_fraction=-0.1)

    def test_rejects_zero_min_pairs(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig(min_accepted_pairs=0)

    def test_threshold_for_absolute(self):
        config = DetectionConfig(pair_threshold=4)
        assert config.threshold_for(100) == 4
        assert config.threshold_for(7) == 4

    def test_threshold_for_fractional(self):
        config = DetectionConfig(pair_threshold_fraction=0.5)
        assert config.threshold_for(100) == 50
        assert config.threshold_for(9) == 4

    def test_required_pairs_fraction(self):
        config = DetectionConfig(min_accepted_fraction=0.5)
        assert config.required_pairs(10) == 5
        assert config.required_pairs(1) == 1

    def test_required_pairs_absolute_capped_at_stored(self):
        config = DetectionConfig(min_accepted_pairs=20)
        assert config.required_pairs(10) == 10
        assert config.required_pairs(50) == 20

    def test_required_pairs_rejects_zero_stored(self):
        with pytest.raises(ConfigurationError):
            DetectionConfig().required_pairs(0)
