"""Unit tests for the synthetic stand-ins of the paper's real datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import TokenHistogram, pairwise_rank_gaps
from repro.datasets.adult import AdultSpec, adult_age_tokens, generate_adult_dataset
from repro.datasets.clickstream import (
    ClickstreamSpec,
    clickstream_tokens,
    daily_visit_series,
    generate_clickstream,
    url_catalogue,
    url_sequences_by_user,
)
from repro.datasets.taxi import TaxiSpec, generate_taxi_dataset, taxi_tokens


@pytest.fixture(scope="module")
def clickstream():
    return generate_clickstream(
        ClickstreamSpec(n_urls=300, n_users=40, n_events=8_000, days=14), rng=7
    )


@pytest.fixture(scope="module")
def taxi():
    return generate_taxi_dataset(TaxiSpec(n_taxis=200, n_trips=10_000), rng=7)


@pytest.fixture(scope="module")
def adult():
    return generate_adult_dataset(AdultSpec(n_rows=5_000), rng=7)


class TestClickstream:
    def test_schema_and_size(self, clickstream):
        assert clickstream.columns == ("timestamp", "user_id", "url", "session_id")
        assert abs(len(clickstream) - 8_000) <= 100  # session rounding tolerance

    def test_timestamps_sorted(self, clickstream):
        timestamps = [int(value) for value in clickstream.column("timestamp")]
        assert timestamps == sorted(timestamps)

    def test_url_histogram_is_skewed(self, clickstream):
        histogram = TokenHistogram.from_tokens(clickstream_tokens(clickstream))
        frequencies = histogram.frequencies()
        # Heavy-tailed: the top URL is visited far more than the median URL.
        assert frequencies[0] > 5 * frequencies[len(frequencies) // 2]
        assert sum(gap > 0 for gap in pairwise_rank_gaps(histogram)) > 10

    def test_daily_series_covers_days(self, clickstream):
        days, counts = daily_visit_series(clickstream)
        assert len(days) >= 10
        assert all(count > 0 for count in counts)

    def test_user_sequences(self, clickstream):
        sequences = url_sequences_by_user(clickstream)
        assert len(sequences) <= 40
        assert all(len(sequence) >= 1 for sequence in sequences)
        total = sum(len(sequence) for sequence in sequences)
        assert total == len(clickstream)

    def test_reproducible(self):
        spec = ClickstreamSpec(n_urls=50, n_users=5, n_events=500, days=7)
        first = generate_clickstream(spec, rng=3)
        second = generate_clickstream(spec, rng=3)
        assert first.rows == second.rows

    def test_url_catalogue_unique(self):
        assert len(set(url_catalogue(500, rng=1))) == 500

    def test_watermarkable(self, clickstream):
        from repro.core.generator import generate_watermark

        result = generate_watermark(
            clickstream_tokens(clickstream), modulus_cap=31, rng=5, max_candidates=150
        )
        assert result.pair_count > 0


class TestTaxi:
    def test_schema(self, taxi):
        assert "taxi_id" in taxi.columns
        assert len(taxi) == 10_000

    def test_taxi_activity_is_heavy_tailed(self, taxi):
        histogram = TokenHistogram.from_tokens(taxi_tokens(taxi))
        frequencies = histogram.frequencies()
        assert frequencies[0] > 3 * frequencies[len(frequencies) // 2]

    def test_numeric_columns_positive(self, taxi):
        assert all(row["trip_seconds"] >= 60 for row in taxi.rows[:200])
        assert all(row["fare"] > 0 for row in taxi.rows[:200])

    def test_reproducible(self):
        spec = TaxiSpec(n_taxis=30, n_trips=500)
        assert generate_taxi_dataset(spec, rng=2).rows == generate_taxi_dataset(spec, rng=2).rows

    def test_watermarkable(self, taxi):
        from repro.core.generator import generate_watermark

        result = generate_watermark(taxi_tokens(taxi), modulus_cap=31, rng=5, max_candidates=150)
        assert result.pair_count > 0


class TestAdult:
    def test_schema_and_size(self, adult):
        assert adult.columns[0] == "age"
        assert len(adult) == 5_000

    def test_age_range(self, adult):
        ages = [int(value) for value in adult.column("age")]
        assert min(ages) >= 17 and max(ages) <= 90

    def test_age_distribution_single_peak_regime(self, adult):
        histogram = TokenHistogram.from_tokens(adult_age_tokens(adult))
        # Small-cardinality token space like the real Adult Age column.
        assert 40 <= len(histogram) <= 74

    def test_workclass_marginal(self, adult):
        counts = adult.value_counts("workclass")
        assert counts["Private"] > counts["State-gov"]

    def test_income_depends_on_education(self, adult):
        rows = adult.rows
        high = [row for row in rows if row["education"] in ("Bachelors", "Masters", "Doctorate")]
        low = [row for row in rows if row["education"] == "11th"]
        rate_high = np.mean([row["income"] == ">50K" for row in high])
        rate_low = np.mean([row["income"] == ">50K" for row in low])
        assert rate_high > rate_low

    def test_reproducible(self):
        spec = AdultSpec(n_rows=300)
        assert generate_adult_dataset(spec, rng=4).rows == generate_adult_dataset(spec, rng=4).rows

    def test_watermarkable_on_age(self, adult):
        from repro.core.generator import generate_watermark

        result = generate_watermark(adult_age_tokens(adult), modulus_cap=31, rng=5)
        assert result.pair_count >= 1
