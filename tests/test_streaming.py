"""Streaming ingestion: chunking/merge parity with one-shot histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.histogram import TokenHistogram
from repro.core.streaming import (
    StreamingHistogramBuilder,
    histogram_from_chunks,
    histogram_from_stream,
)
from repro.core.transform import apply_deltas_streaming
from repro.datasets.loaders import (
    iter_token_chunks,
    iter_tokens,
    load_histogram_streaming,
    load_token_file,
    save_token_file,
)
from repro.exceptions import DatasetError, HistogramError

_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Token streams: modest alphabets so repeats (the interesting case) occur.
_tokens = st.lists(
    st.text(alphabet="abcdef.-", min_size=1, max_size=6), min_size=1, max_size=200
)


def _chunkings(tokens):
    """Strategy producing (tokens, list-of-chunks) with arbitrary cut points."""
    return st.lists(
        st.integers(min_value=0, max_value=len(tokens)), max_size=8
    ).map(lambda cuts: [
        tokens[start:stop]
        for start, stop in zip([0] + sorted(cuts), sorted(cuts) + [len(tokens)])
    ])


def _assert_bit_identical(left: TokenHistogram, right: TokenHistogram) -> None:
    assert left == right
    assert left.tokens == right.tokens
    assert np.array_equal(left.counts_array(), right.counts_array())


class TestChunkingParity:
    @_settings
    @given(data=st.data(), tokens=_tokens)
    def test_any_chunking_matches_one_shot(self, data, tokens):
        """ISSUE 2 property: every chunking equals the one-shot histogram."""
        chunks = data.draw(_chunkings(tokens))
        one_shot = TokenHistogram.from_tokens(tokens)
        _assert_bit_identical(histogram_from_chunks(chunks), one_shot)

    @_settings
    @given(data=st.data(), tokens=_tokens)
    def test_merge_of_partial_builders_matches_one_shot(self, data, tokens):
        """Map-reduce: per-chunk builders merged in any order still match."""
        chunks = data.draw(_chunkings(tokens))
        builders = []
        for chunk in chunks:
            builder = StreamingHistogramBuilder()
            builder.add_tokens(chunk)
            builders.append(builder)
        order = data.draw(st.permutations(builders))
        merged = StreamingHistogramBuilder.merge_all(order)
        _assert_bit_identical(merged.build(), TokenHistogram.from_tokens(tokens))

    @_settings
    @given(tokens=_tokens, chunk_size=st.integers(min_value=1, max_value=64))
    def test_internal_batching_granularity_is_invisible(self, tokens, chunk_size):
        streamed = histogram_from_stream(iter(tokens), chunk_size=chunk_size)
        _assert_bit_identical(streamed, TokenHistogram.from_tokens(tokens))


class TestBuilderApi:
    def test_add_counts_matches_token_ingestion(self):
        by_tokens = StreamingHistogramBuilder()
        by_tokens.add_tokens(["a", "b", "a", "c", "a"])
        by_counts = StreamingHistogramBuilder()
        by_counts.add_counts({"a": 3, "b": 1})
        by_counts.add_counts({"c": 1, "zero": 0})
        _assert_bit_identical(by_tokens.build(), by_counts.build())

    def test_non_string_tokens_are_canonicalised(self):
        builder = StreamingHistogramBuilder()
        builder.add_tokens([1, "1", 2.0, ("a", "b")])
        one_shot = TokenHistogram.from_tokens([1, "1", 2.0, ("a", "b")])
        _assert_bit_identical(builder.build(), one_shot)

    def test_state_accessors(self):
        builder = StreamingHistogramBuilder()
        assert not builder and len(builder) == 0
        builder.add_tokens(["x", "y", "x"])
        builder.add("y", 2)
        assert builder and builder.distinct_tokens == 2
        assert builder.total_count == 5
        assert builder.chunks_ingested == 1
        assert builder.partial_counts() == {"x": 2, "y": 3}
        # build() does not exhaust the builder
        first = builder.build()
        builder.add_tokens(["z"])
        assert builder.build().frequency("z") == 1
        assert first.frequency("z") == 0

    def test_empty_build_rejected(self):
        with pytest.raises(HistogramError):
            StreamingHistogramBuilder().build()

    def test_negative_inputs_rejected(self):
        builder = StreamingHistogramBuilder()
        with pytest.raises(HistogramError):
            builder.add("a", -1)
        with pytest.raises(HistogramError):
            builder.add_counts({"a": -2})
        with pytest.raises(HistogramError):
            StreamingHistogramBuilder(chunk_size=0)


class TestFileStreaming:
    def test_iter_tokens_matches_load(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("a\n\n b \nc\na\n", encoding="utf-8")
        assert list(iter_tokens(path)) == load_token_file(path) == ["a", "b", "c", "a"]

    def test_iter_token_chunks_bounds_and_order(self, tmp_path):
        path = tmp_path / "tokens.txt"
        save_token_file([f"t{i}" for i in range(10)], path)
        chunks = list(iter_token_chunks(path, chunk_size=3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
        assert [token for chunk in chunks for token in chunk] == [
            f"t{i}" for i in range(10)
        ]
        with pytest.raises(DatasetError):
            list(iter_token_chunks(path, chunk_size=0))

    def test_load_histogram_streaming_parity(self, tmp_path):
        path = tmp_path / "tokens.txt"
        tokens = ["a"] * 5 + ["b"] * 3 + ["c"]
        save_token_file(tokens, path)
        _assert_bit_identical(
            load_histogram_streaming(path, chunk_size=2),
            TokenHistogram.from_tokens(tokens),
        )

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_histogram_streaming(path)
        with pytest.raises(DatasetError):
            save_token_file([], tmp_path / "out.txt")

    def test_save_is_atomic_on_failing_stream(self, tmp_path):
        path = tmp_path / "out.txt"
        save_token_file(["keep", "me"], path)

        def exploding():
            yield "partial"
            raise RuntimeError("stream died")

        with pytest.raises(RuntimeError):
            save_token_file(exploding(), path)
        # The pre-existing file survives untouched; no scratch file remains.
        assert load_token_file(path) == ["keep", "me"]
        assert list(tmp_path.iterdir()) == [path]

    def test_save_is_atomic_on_empty_stream(self, tmp_path):
        path = tmp_path / "out.txt"
        save_token_file(["keep"], path)
        with pytest.raises(DatasetError):
            save_token_file([], path)
        assert load_token_file(path) == ["keep"]


class TestStreamingTransform:
    @_settings
    @given(
        tokens=st.lists(
            st.sampled_from(["a", "b", "c", "d", "e"]), min_size=5, max_size=80
        ),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_streamed_edit_realises_target_histogram(self, tokens, seed):
        original = TokenHistogram.from_tokens(tokens)
        deltas = {}
        counts = original.as_dict()
        if counts.get("a"):
            deltas["a"] = -min(2, counts["a"])
        deltas["new"] = 3
        if counts.get("b"):
            deltas["b"] = 1
        edited = list(
            apply_deltas_streaming(iter(tokens), deltas, original, rng=seed)
        )
        expected = original.with_updates(deltas)
        assert TokenHistogram.from_tokens(edited) == expected
        assert len(edited) == expected.total_count()

    def test_removal_beyond_count_rejected(self):
        from repro.exceptions import GenerationError

        with pytest.raises(GenerationError):
            list(
                apply_deltas_streaming(
                    iter(["a", "a"]), {"a": -3}, {"a": 2}, rng=0
                )
            )

    def test_stream_disagreeing_with_counts_rejected(self):
        from repro.exceptions import GenerationError

        # Total length drift (file changed between the two passes).
        with pytest.raises(GenerationError, match="disagrees"):
            list(
                apply_deltas_streaming(
                    iter(["a", "a", "b", "b", "b"]), {"a": -1}, {"a": 2, "b": 2}, rng=0
                )
            )
        # Same total, but a removed token's occurrences shifted.
        with pytest.raises(GenerationError, match="disagrees"):
            list(
                apply_deltas_streaming(
                    iter(["a", "b", "b", "b"]), {"a": -1}, {"a": 2, "b": 2}, rng=0
                )
            )

    def test_insertions_not_clustered_at_end(self):
        tokens = ["x"] * 200
        edited = list(
            apply_deltas_streaming(
                iter(tokens), {"y": 20}, {"x": 200}, rng=123
            )
        )
        positions = [index for index, token in enumerate(edited) if token == "y"]
        assert len(positions) == 20
        # With 20 uniform insertions into 220 slots, at least one must land
        # in the first half (probability of failure ~ 2^-20).
        assert positions[0] < len(edited) // 2
