"""WM-RVS baseline: reversible LSB-style numerical database watermarking.

Re-implementation of the comparator the paper calls WM-RVS (Li et al.,
"Secure and high-quality watermarking algorithms for relational database
based on semantic"), adapted to histogram data as in Section IV-D:

* every frequency value is treated individually;
* a keyed hash of the token selects which low-order digit position of the
  value will carry a watermark bit, and which bit of the watermark
  sequence is used;
* the selected digit is replaced by an expansion that encodes the bit,
  remembering the original digit so the embedding is *reversible*;
* because histogram counts must remain integers, the paper notes the
  scheme had to be adjusted to integer outputs — we embed into the
  low-order *integer* digits.

The important behaviour for the comparison is that per-value digit
rewrites, while individually small in relative terms for large counts,
scramble the exact frequencies enough to change the ranking of almost all
tokens and reduce cosine similarity noticeably — which is what the paper
reports (96 % similarity, 987/1000 rank changes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import BaselineError


@dataclass(frozen=True)
class WmRvsConfig:
    """Parameters of the WM-RVS baseline.

    ``max_digit_position`` bounds which low-order digit may be selected
    (position 0 = units, 1 = tens, ...). The paper's adaptation keeps the
    bit sequence of WM-OBT (``[1, 1, 0, 1, 0]``) instead of deriving it
    from chaotic encryption.
    """

    watermark_bits: Tuple[int, ...] = (1, 1, 0, 1, 0)
    max_digit_position: int = 2
    key: int = 0xC0FFEE

    def __post_init__(self) -> None:
        if not self.watermark_bits:
            raise BaselineError("watermark_bits must not be empty")
        if any(bit not in (0, 1) for bit in self.watermark_bits):
            raise BaselineError("watermark bits must be 0 or 1")
        if self.max_digit_position < 0:
            raise BaselineError("max_digit_position must be >= 0")


@dataclass(frozen=True)
class WmRvsRecord:
    """Reversibility record for one token: what was overwritten where."""

    token: str
    digit_position: int
    original_digit: int
    embedded_bit: int


@dataclass(frozen=True)
class WmRvsResult:
    """Output of one WM-RVS embedding."""

    watermarked_counts: Dict[str, int]
    records: Tuple[WmRvsRecord, ...]


def _keyed_digest(key: int, token: str) -> bytes:
    return hashlib.sha256(f"{key}|{token}".encode("utf-8")).digest()


class WmRvsWatermarker:
    """Embed, detect and reverse WM-RVS style watermarks on histograms."""

    def __init__(self, config: Optional[WmRvsConfig] = None) -> None:
        self.config = config or WmRvsConfig()

    # ------------------------------------------------------------------ #

    def _placement(self, token: str, value: int) -> Tuple[int, int]:
        """Choose (digit position, bit index) for a token from the keyed hash."""
        digest = _keyed_digest(self.config.key, token)
        n_digits = max(1, len(str(max(1, value))))
        position_cap = min(self.config.max_digit_position, n_digits - 1)
        digit_position = digest[0] % (position_cap + 1)
        bit_index = digest[1] % len(self.config.watermark_bits)
        return digit_position, bit_index

    @staticmethod
    def _set_digit(value: int, position: int, digit: int) -> int:
        base = 10 ** position
        current = (value // base) % 10
        return value + (digit - current) * base

    @staticmethod
    def _get_digit(value: int, position: int) -> int:
        return (value // (10 ** position)) % 10

    def _encode_digit(self, original_digit: int, bit: int) -> int:
        """Digit that encodes ``bit``: even digits carry 0, odd digits carry 1."""
        if original_digit % 2 == bit % 2:
            return original_digit
        # Move to the nearest digit of the right parity, staying in [0, 9].
        if original_digit == 9:
            return 8 if bit % 2 == 0 else 9
        return original_digit + 1

    # ------------------------------------------------------------------ #

    def embed(self, counts: Mapping[str, int]) -> WmRvsResult:
        """Embed the watermark into every value of a token histogram."""
        watermarked: Dict[str, int] = {}
        records: List[WmRvsRecord] = []
        for token in sorted(counts):
            value = int(counts[token])
            digit_position, bit_index = self._placement(token, value)
            bit = self.config.watermark_bits[bit_index]
            original_digit = self._get_digit(value, digit_position)
            encoded_digit = self._encode_digit(original_digit, bit)
            new_value = self._set_digit(value, digit_position, encoded_digit)
            if new_value <= 0:
                new_value = max(1, value)
            watermarked[token] = new_value
            records.append(
                WmRvsRecord(
                    token=token,
                    digit_position=digit_position,
                    original_digit=original_digit,
                    embedded_bit=bit,
                )
            )
        return WmRvsResult(watermarked_counts=watermarked, records=tuple(records))

    def detect(self, counts: Mapping[str, int]) -> float:
        """Fraction of tokens whose selected digit carries the expected bit."""
        if not counts:
            return 0.0
        matches = 0
        total = 0
        for token in sorted(counts):
            value = int(counts[token])
            digit_position, bit_index = self._placement(token, value)
            expected_bit = self.config.watermark_bits[bit_index]
            digit = self._get_digit(value, digit_position)
            total += 1
            if digit % 2 == expected_bit % 2:
                matches += 1
        return matches / total

    def reverse(self, result: WmRvsResult) -> Dict[str, int]:
        """Restore the original histogram from the reversibility records."""
        restored = dict(result.watermarked_counts)
        for record in result.records:
            value = restored[record.token]
            restored[record.token] = self._set_digit(
                value, record.digit_position, record.original_digit
            )
        return restored


__all__ = ["WmRvsConfig", "WmRvsRecord", "WmRvsResult", "WmRvsWatermarker"]
