"""A compact real-valued genetic algorithm.

WM-OBT (Shehab et al., "Watermarking relational databases using
optimization-based techniques") embeds each watermark bit by maximising or
minimising a sum-of-sigmoids objective over the values of one data
partition, subject to per-value change constraints. The original work uses
a genetic algorithm as the black-box optimiser; since no GA library is
available offline, this module implements a small, dependency-free GA with
tournament selection, blend crossover, Gaussian mutation and elitism —
enough to reproduce the baseline's qualitative distortion behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import BaselineError
from repro.utils.rng import RngLike, ensure_rng

ObjectiveFunction = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class GeneticConfig:
    """Hyper-parameters of the genetic optimiser."""

    population_size: int = 40
    generations: int = 60
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    mutation_scale: float = 0.1
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise BaselineError("population_size must be at least 2")
        if self.generations < 1:
            raise BaselineError("generations must be at least 1")
        if not 0 <= self.crossover_rate <= 1:
            raise BaselineError("crossover_rate must lie in [0, 1]")
        if not 0 <= self.mutation_rate <= 1:
            raise BaselineError("mutation_rate must lie in [0, 1]")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise BaselineError("elitism must be in [0, population_size)")


@dataclass(frozen=True)
class GeneticResult:
    """Best solution found by one optimisation run."""

    best_solution: np.ndarray
    best_fitness: float
    history: Tuple[float, ...]


class GeneticOptimizer:
    """Maximise an objective over a box-constrained real vector.

    Parameters
    ----------
    lower_bounds / upper_bounds:
        Per-dimension box constraints on the decision vector.
    config:
        GA hyper-parameters.
    """

    def __init__(
        self,
        lower_bounds: Sequence[float],
        upper_bounds: Sequence[float],
        config: Optional[GeneticConfig] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        self.lower = np.asarray(lower_bounds, dtype=float)
        self.upper = np.asarray(upper_bounds, dtype=float)
        if self.lower.shape != self.upper.shape:
            raise BaselineError("lower and upper bounds must have the same shape")
        if np.any(self.lower > self.upper):
            raise BaselineError("every lower bound must be <= its upper bound")
        self.config = config or GeneticConfig()
        self._rng_source = rng

    # ------------------------------------------------------------------ #

    def _initial_population(self, rng) -> np.ndarray:
        span = self.upper - self.lower
        return self.lower + rng.random((self.config.population_size, self.lower.size)) * span

    def _tournament(self, rng, fitness: np.ndarray) -> int:
        contenders = rng.integers(0, fitness.size, size=self.config.tournament_size)
        return int(contenders[np.argmax(fitness[contenders])])

    def _crossover(self, rng, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        if rng.random() > self.config.crossover_rate:
            return parent_a.copy()
        blend = rng.random(parent_a.size)
        return blend * parent_a + (1.0 - blend) * parent_b

    def _mutate(self, rng, individual: np.ndarray) -> np.ndarray:
        mask = rng.random(individual.size) < self.config.mutation_rate
        if not np.any(mask):
            return individual
        span = self.upper - self.lower
        noise = rng.normal(0.0, self.config.mutation_scale, size=individual.size) * span
        mutated = individual + np.where(mask, noise, 0.0)
        return np.clip(mutated, self.lower, self.upper)

    # ------------------------------------------------------------------ #

    def maximize(self, objective: ObjectiveFunction) -> GeneticResult:
        """Run the GA and return the best solution found."""
        rng = ensure_rng(self._rng_source)
        population = self._initial_population(rng)
        fitness = np.array([objective(individual) for individual in population])
        history = []
        for _ in range(self.config.generations):
            order = np.argsort(fitness)[::-1]
            population = population[order]
            fitness = fitness[order]
            history.append(float(fitness[0]))
            next_population = [population[i].copy() for i in range(self.config.elitism)]
            while len(next_population) < self.config.population_size:
                parent_a = population[self._tournament(rng, fitness)]
                parent_b = population[self._tournament(rng, fitness)]
                child = self._mutate(rng, self._crossover(rng, parent_a, parent_b))
                next_population.append(child)
            population = np.array(next_population)
            fitness = np.array([objective(individual) for individual in population])
        best_index = int(np.argmax(fitness))
        history.append(float(fitness[best_index]))
        return GeneticResult(
            best_solution=population[best_index].copy(),
            best_fitness=float(fitness[best_index]),
            history=tuple(history),
        )

    def minimize(self, objective: ObjectiveFunction) -> GeneticResult:
        """Minimise ``objective`` (maximise its negation)."""
        result = self.maximize(lambda x: -objective(x))
        return GeneticResult(
            best_solution=result.best_solution,
            best_fitness=-result.best_fitness,
            history=tuple(-value for value in result.history),
        )


__all__ = ["GeneticConfig", "GeneticResult", "GeneticOptimizer", "ObjectiveFunction"]
