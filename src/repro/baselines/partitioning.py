"""Secret-keyed data partitioning used by the WM-OBT baseline.

Shehab et al. group tuples into partitions using a keyed hash of each
tuple's primary key, then embed one watermark bit per group of partitions.
For the histogram-level adaptation used in the paper's comparison (tokens
act as primary keys, frequencies as the numeric attribute) we partition
tokens the same way: partition index = ``H(key || token) mod n_partitions``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.exceptions import BaselineError


@dataclass(frozen=True)
class Partition:
    """One partition: the tokens it holds and their current frequencies."""

    index: int
    tokens: Tuple[str, ...]
    frequencies: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.tokens)


def partition_index(token: str, key: int, n_partitions: int) -> int:
    """Keyed partition assignment ``H(key || token) mod n_partitions``."""
    if n_partitions < 1:
        raise BaselineError("n_partitions must be at least 1")
    digest = hashlib.sha256(f"{key}|{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_partitions


def partition_histogram(
    counts: Mapping[str, int],
    key: int,
    n_partitions: int,
) -> List[Partition]:
    """Split a token->count histogram into keyed partitions.

    Empty partitions are kept (with no tokens) so the bit-embedding loop
    can still iterate deterministically over partition indices.
    """
    buckets: Dict[int, List[Tuple[str, int]]] = {index: [] for index in range(n_partitions)}
    for token in sorted(counts):
        buckets[partition_index(token, key, n_partitions)].append((token, counts[token]))
    partitions: List[Partition] = []
    for index in range(n_partitions):
        members = buckets[index]
        partitions.append(
            Partition(
                index=index,
                tokens=tuple(token for token, _count in members),
                frequencies=tuple(count for _token, count in members),
            )
        )
    return partitions


__all__ = ["Partition", "partition_index", "partition_histogram"]
