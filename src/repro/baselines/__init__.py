"""Baseline watermarking schemes the paper compares against (Section IV-D)."""

from repro.baselines.genetic import GeneticConfig, GeneticOptimizer, GeneticResult
from repro.baselines.partitioning import Partition, partition_histogram, partition_index
from repro.baselines.wm_obt import WmObtConfig, WmObtResult, WmObtWatermarker
from repro.baselines.wm_rvs import WmRvsConfig, WmRvsResult, WmRvsWatermarker

__all__ = [
    "GeneticConfig",
    "GeneticOptimizer",
    "GeneticResult",
    "Partition",
    "partition_histogram",
    "partition_index",
    "WmObtConfig",
    "WmObtResult",
    "WmObtWatermarker",
    "WmRvsConfig",
    "WmRvsResult",
    "WmRvsWatermarker",
]
