"""WM-OBT baseline: optimisation-based numerical database watermarking.

Re-implementation of the comparator the paper calls WM-OBT (Shehab,
Bertino, Ghafoor — "Watermarking relational databases using
optimization-based techniques"), adapted to histogram data exactly as
Section IV-D describes:

* the token histogram is treated as a two-column relation (token =
  primary key, frequency = numeric attribute);
* tokens are grouped into ``n_partitions`` keyed partitions;
* each watermark bit is embedded into one partition by *maximising* (bit
  1) or *minimising* (bit 0) a normalised sum-of-sigmoids hiding function
  of the partition's values, with per-value changes constrained to a given
  interval;
* the optimisation is a genetic algorithm; the resulting real-valued
  changes are rounded to integers because frequencies must stay counts.

Detection recomputes the hiding-function statistic per partition and
decodes each bit against a threshold, mirroring the original scheme's
majority decoding. The interesting output for the paper's comparison is
not detection accuracy, though — it is the heavy, rank-destroying
distortion this style of watermark inflicts on a histogram, which the
benchmark reports alongside FreqyWM's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.genetic import GeneticConfig, GeneticOptimizer
from repro.baselines.partitioning import Partition, partition_histogram
from repro.exceptions import BaselineError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class WmObtConfig:
    """Parameters of the WM-OBT baseline (paper Section IV-D settings).

    ``change_bounds`` is the per-value change constraint, expressed as a
    fraction of each value: the paper allows changes in ``[-0.5, 10]``
    (i.e. from halving a count to multiplying it by 11).
    """

    n_partitions: int = 20
    watermark_bits: Tuple[int, ...] = (1, 1, 0, 1, 0)
    condition: float = 0.75
    change_bounds: Tuple[float, float] = (-0.5, 10.0)
    sigmoid_sharpness: float = 1.0
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=30, generations=40)
    )

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise BaselineError("n_partitions must be at least 1")
        if not self.watermark_bits:
            raise BaselineError("watermark_bits must not be empty")
        if any(bit not in (0, 1) for bit in self.watermark_bits):
            raise BaselineError("watermark bits must be 0 or 1")
        low, high = self.change_bounds
        if low > high:
            raise BaselineError("change_bounds must satisfy low <= high")
        if not 0 < self.condition < 1:
            raise BaselineError("condition must lie in (0, 1)")


@dataclass(frozen=True)
class WmObtResult:
    """Output of one WM-OBT embedding."""

    watermarked_counts: Dict[str, int]
    partition_statistics: Tuple[float, ...]
    decoding_threshold: float
    embedded_bits: Tuple[int, ...]


def _hiding_statistic(values: np.ndarray, condition: float, sharpness: float) -> float:
    """Normalised sum-of-sigmoids hiding function of one partition.

    The statistic counts (softly) how many values sit above
    ``mean + condition * std``; maximising it pushes mass above the
    reference point (bit 1), minimising pushes mass below (bit 0).
    """
    if values.size == 0:
        return 0.0
    mean = float(values.mean())
    std = float(values.std()) or 1.0
    reference = mean + condition * std
    scaled = sharpness * (values - reference) / std
    return float(np.mean(1.0 / (1.0 + np.exp(-scaled))))


class WmObtWatermarker:
    """Embed and detect WM-OBT style watermarks on token histograms."""

    def __init__(
        self,
        config: Optional[WmObtConfig] = None,
        *,
        key: int = 0x5EED,
        rng: RngLike = None,
    ) -> None:
        self.config = config or WmObtConfig()
        self.key = key
        self._rng_source = rng

    # ------------------------------------------------------------------ #

    def _partition_bit(self, partition_index: int) -> int:
        """Watermark bit assigned to a partition (bits repeat cyclically)."""
        bits = self.config.watermark_bits
        return bits[partition_index % len(bits)]

    def _embed_partition(
        self, partition: Partition, bit: int, rng
    ) -> Tuple[Dict[str, int], float]:
        """Optimise one partition's values toward its bit and return changes."""
        values = np.asarray(partition.frequencies, dtype=float)
        if values.size == 0:
            return {}, 0.0
        low_fraction, high_fraction = self.config.change_bounds
        lower = values * low_fraction
        upper = values * high_fraction
        optimizer = GeneticOptimizer(lower, upper, self.config.genetic, rng=rng)

        def objective(changes: np.ndarray) -> float:
            return _hiding_statistic(
                values + changes, self.config.condition, self.config.sigmoid_sharpness
            )

        result = optimizer.maximize(objective) if bit == 1 else optimizer.minimize(objective)
        new_values = np.maximum(1, np.round(values + result.best_solution)).astype(int)
        statistic = _hiding_statistic(
            new_values.astype(float), self.config.condition, self.config.sigmoid_sharpness
        )
        return dict(zip(partition.tokens, new_values.tolist())), statistic

    # ------------------------------------------------------------------ #

    def embed(self, counts: Mapping[str, int]) -> WmObtResult:
        """Embed the configured bit sequence into a token histogram."""
        rng = ensure_rng(self._rng_source)
        partitions = partition_histogram(counts, self.key, self.config.n_partitions)
        watermarked: Dict[str, int] = dict(counts)
        statistics: List[float] = []
        bits: List[int] = []
        for partition in partitions:
            bit = self._partition_bit(partition.index)
            child_rng = rng.spawn(1)[0]
            changes, statistic = self._embed_partition(partition, bit, child_rng)
            watermarked.update(changes)
            statistics.append(statistic)
            bits.append(bit)
        threshold = self._decoding_threshold(statistics, bits)
        return WmObtResult(
            watermarked_counts=watermarked,
            partition_statistics=tuple(statistics),
            decoding_threshold=threshold,
            embedded_bits=tuple(bits),
        )

    @staticmethod
    def _decoding_threshold(statistics: Sequence[float], bits: Sequence[int]) -> float:
        """Threshold minimising the decoding error between 0- and 1-partitions."""
        ones = [stat for stat, bit in zip(statistics, bits) if bit == 1]
        zeros = [stat for stat, bit in zip(statistics, bits) if bit == 0]
        if not ones or not zeros:
            return float(np.mean(statistics)) if statistics else 0.5
        return float((np.mean(ones) + np.mean(zeros)) / 2.0)

    def detect(
        self, counts: Mapping[str, int], threshold: float
    ) -> Tuple[int, ...]:
        """Decode the bit carried by each partition of a suspected histogram."""
        partitions = partition_histogram(counts, self.key, self.config.n_partitions)
        decoded: List[int] = []
        for partition in partitions:
            statistic = _hiding_statistic(
                np.asarray(partition.frequencies, dtype=float),
                self.config.condition,
                self.config.sigmoid_sharpness,
            )
            decoded.append(1 if statistic >= threshold else 0)
        return tuple(decoded)

    def bit_recovery_rate(self, counts: Mapping[str, int], result: WmObtResult) -> float:
        """Fraction of embedded bits recovered from a suspected histogram."""
        decoded = self.detect(counts, result.decoding_threshold)
        matches = sum(
            1 for embedded, found in zip(result.embedded_bits, decoded) if embedded == found
        )
        return matches / len(result.embedded_bits)


__all__ = ["WmObtConfig", "WmObtResult", "WmObtWatermarker"]
