"""Deterministic random-number-generator helpers.

All stochastic components of the library (dataset generators, heuristic
matchers, attacks, baselines) accept either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``. These helpers normalise that
input so every module shares the same convention and experiments are
reproducible end to end.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a non-deterministic generator, an ``int`` seed for a
        deterministic one, or an existing generator which is returned
        unchanged (so callers can thread a single generator through a
        pipeline).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a random generator from {type(rng)!r}")


def derive_rng(rng: RngLike, *labels: str) -> np.random.Generator:
    """Derive an independent, reproducible child generator.

    The child stream is keyed by the string ``labels``, so two subsystems
    seeded from the same parent seed but with different labels produce
    independent streams, and re-running with the same seed and labels
    reproduces the same stream. When ``rng`` is an already-instantiated
    generator the child is spawned from it directly.
    """
    if isinstance(rng, np.random.Generator):
        return rng.spawn(1)[0]
    if rng is None:
        return np.random.default_rng()
    digest = hashlib.sha256("/".join(labels).encode("utf-8")).digest()
    label_entropy = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(np.random.SeedSequence([int(rng), label_entropy]))


def random_bigint(rng: RngLike, bits: int) -> int:
    """Draw a uniformly random non-negative integer with ``bits`` bits.

    Used for the high-entropy watermarking secret ``R`` when callers want
    reproducibility via a seed instead of :func:`secrets.token_bytes`.
    """
    generator = ensure_rng(rng)
    if bits <= 0:
        raise ValueError("bits must be positive")
    n_bytes = (bits + 7) // 8
    raw = generator.bytes(n_bytes)
    value = int.from_bytes(raw, "big")
    return value & ((1 << bits) - 1)


def sample_without_replacement(
    rng: RngLike, population: int, size: int
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``."""
    generator = ensure_rng(rng)
    if size > population:
        raise ValueError("sample size exceeds population size")
    return generator.choice(population, size=size, replace=False)


__all__ = [
    "RngLike",
    "ensure_rng",
    "derive_rng",
    "random_bigint",
    "sample_without_replacement",
]
