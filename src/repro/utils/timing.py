"""Lightweight wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates named wall-clock measurements.

    The Table II reproduction reports separate generation and detection
    times; a stopwatch instance is threaded through the pipeline so each
    stage can record its own duration without global state.
    """

    laps: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def elapsed(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never measured)."""
        return self.laps.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Copy of all recorded laps."""
        return dict(self.laps)


def timed(func: Callable[..., T], *args, **kwargs) -> Tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


__all__ = ["Stopwatch", "timed"]
