"""Small validation helpers shared across the package.

They raise :class:`repro.exceptions.ConfigurationError` with a message that
names the offending parameter, keeping argument checking terse at call
sites while producing actionable errors for library users.
"""

from __future__ import annotations

from typing import Any, Sized

from repro.exceptions import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Ensure a numeric parameter is positive (or non-negative)."""
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Ensure ``low <= value <= high`` (or strict inequalities)."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def require_non_empty(name: str, value: Sized) -> None:
    """Ensure a container argument is not empty."""
    if len(value) == 0:
        raise ConfigurationError(f"{name} must not be empty")


def require_type(name: str, value: Any, expected: type) -> None:
    """Ensure ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be of type {expected.__name__}, got {type(value).__name__}"
        )


__all__ = [
    "require",
    "require_positive",
    "require_in_range",
    "require_non_empty",
    "require_type",
]
