"""Shared utilities: deterministic RNG handling, timing, validation."""

from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    require,
    require_in_range,
    require_non_empty,
    require_positive,
)

__all__ = [
    "derive_rng",
    "ensure_rng",
    "Stopwatch",
    "timed",
    "require",
    "require_in_range",
    "require_non_empty",
    "require_positive",
]
