"""Guess (brute-force) attack — Section V-A.

The adversary holds only the watermarked dataset and tries to *guess* a
secret list (a set of at least ``k`` token pairs plus some ``R*`` and
``z*``) that the detection algorithm would accept, so it can impersonate
the owner. The paper argues the success probability is negligible in the
security parameter: the attacker must hit, for enough pairs simultaneously,
moduli under which the observed differences happen to be congruent to
(near) zero — and with a collision-resistant hash the only way to control
the moduli is to know ``R``.

Because an exact brute force over a 256-bit secret is obviously
infeasible, this module provides two things:

* :func:`guess_success_probability` — the analytical probability that a
  *single random guess* of ``l`` pairs passes detection with thresholds
  ``(t, k)``, assuming remainders of unwatermarked pairs are uniform on
  ``[0, s)``; this is the quantity the paper bounds.
* :class:`GuessAttack` — a Monte-Carlo attacker that samples random
  candidate secrets and pair subsets and counts how often detection
  accepts, empirically confirming the bound on laptop-scale parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from scipy import stats

from repro.core.batch import detect_many_secrets
from repro.core.config import DetectionConfig
from repro.core.hashing import generate_secret
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenPair
from repro.exceptions import AttackError
from repro.utils.rng import RngLike, ensure_rng


def single_pair_acceptance_probability(modulus: int, threshold: int) -> float:
    """Probability that a random, unwatermarked pair verifies at threshold ``t``.

    With the remainder uniform on ``{0, ..., modulus - 1}`` the pair rule
    ``remainder <= t`` holds with probability ``(t + 1) / modulus``
    (capped at 1).
    """
    if modulus < 2:
        raise AttackError("modulus must be at least 2")
    return min(1.0, (threshold + 1) / modulus)


def guess_success_probability(
    n_pairs: int,
    required_pairs: int,
    *,
    modulus: int,
    threshold: int = 0,
) -> float:
    """Probability that one random guess of ``n_pairs`` passes detection.

    Pairs are treated as independent Bernoulli trials with the single-pair
    acceptance probability; the guess succeeds when at least
    ``required_pairs`` of them verify — a binomial survival probability.
    """
    if required_pairs > n_pairs:
        return 0.0
    p = single_pair_acceptance_probability(modulus, threshold)
    return float(stats.binom.sf(required_pairs - 1, n_pairs, p))


def expected_guesses_to_succeed(
    n_pairs: int, required_pairs: int, *, modulus: int, threshold: int = 0
) -> float:
    """Expected number of independent guesses before one succeeds."""
    probability = guess_success_probability(
        n_pairs, required_pairs, modulus=modulus, threshold=threshold
    )
    if probability <= 0.0:
        return math.inf
    return 1.0 / probability


@dataclass(frozen=True)
class GuessAttackReport:
    """Outcome of a Monte-Carlo guess attack."""

    attempts: int
    successes: int
    empirical_success_rate: float
    analytical_success_probability: float
    parameters: Dict[str, object]


class GuessAttack:
    """Monte-Carlo brute-force attacker against a watermarked histogram.

    Every attempt samples a fresh candidate secret ``R*`` and a random set
    of ``guessed_pairs`` distinct token pairs from the watermarked
    histogram, then runs the real detection algorithm with the owner's
    thresholds. The attack has no access to the genuine secret.
    """

    name = "guess"

    def __init__(
        self,
        guessed_pairs: int = 20,
        *,
        modulus_cap: int = 131,
        secret_bits: int = 64,
        rng: RngLike = None,
    ) -> None:
        if guessed_pairs < 1:
            raise AttackError("guessed_pairs must be at least 1")
        self.guessed_pairs = guessed_pairs
        self.modulus_cap = modulus_cap
        self.secret_bits = secret_bits
        self._rng_source = rng

    def forge_candidate(self, histogram: TokenHistogram) -> WatermarkSecret:
        """Sample one forged candidate secret (fresh ``R*`` and pair set)."""
        rng = ensure_rng(self._rng_source)
        tokens = histogram.tokens
        if len(tokens) < 2 * self.guessed_pairs:
            raise AttackError(
                "histogram is too small for the requested number of guessed pairs"
            )
        chosen = rng.choice(len(tokens), size=2 * self.guessed_pairs, replace=False)
        pairs: List[TokenPair] = []
        for index in range(self.guessed_pairs):
            token_a = tokens[int(chosen[2 * index])]
            token_b = tokens[int(chosen[2 * index + 1])]
            pairs.append(
                TokenPair.ordered(
                    token_a, token_b, histogram.frequency(token_a), histogram.frequency(token_b)
                )
            )
        return WatermarkSecret.build(
            pairs,
            generate_secret(self.secret_bits, rng=rng),
            self.modulus_cap,
            forged=True,
        )

    def attempt(
        self, histogram: TokenHistogram, detection: DetectionConfig
    ) -> bool:
        """Run a single guess; True when the forged secret is accepted."""
        forged = self.forge_candidate(histogram)
        return detect_many_secrets(histogram, [forged], detection)[0].accepted

    def run(
        self,
        histogram: TokenHistogram,
        *,
        attempts: int = 200,
        detection: Optional[DetectionConfig] = None,
    ) -> GuessAttackReport:
        """Run ``attempts`` independent guesses and summarise the outcome.

        Candidates are sampled exactly as :meth:`attempt` would (same RNG
        draws in the same order) but evaluated through **one** batched
        :func:`~repro.core.batch.detect_many_secrets` pass — no
        per-attempt detector construction, one frequency lookup for the
        union of guessed pair members, one vectorized modulo pass.
        """
        detection_config = detection or DetectionConfig(pair_threshold=0)
        candidates = [self.forge_candidate(histogram) for _ in range(attempts)]
        verdicts = detect_many_secrets(histogram, candidates, detection_config)
        successes = sum(1 for verdict in verdicts if verdict.accepted)
        required = detection_config.required_pairs(self.guessed_pairs)
        analytical = guess_success_probability(
            self.guessed_pairs,
            required,
            modulus=self.modulus_cap,
            threshold=detection_config.pair_threshold,
        )
        return GuessAttackReport(
            attempts=attempts,
            successes=successes,
            empirical_success_rate=successes / attempts if attempts else 0.0,
            analytical_success_probability=analytical,
            parameters={
                "guessed_pairs": self.guessed_pairs,
                "modulus_cap": self.modulus_cap,
                "secret_bits": self.secret_bits,
                "threshold": detection_config.pair_threshold,
                "required_pairs": required,
            },
        )


__all__ = [
    "single_pair_acceptance_probability",
    "guess_success_probability",
    "expected_guesses_to_succeed",
    "GuessAttackReport",
    "GuessAttack",
]
