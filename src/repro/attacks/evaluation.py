"""Attack-robustness evaluation harness.

The Section V experiments all share the same skeleton: watermark a
reference dataset (synthetic power-law, α = 0.5, z = 131, b = 2 in the
paper), run a family of attacks with swept parameters, and report how the
detection behaves. :class:`RobustnessEvaluator` packages that skeleton so
benchmarks, examples and tests stay short and consistent.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.destroy import (
    BoundaryNoiseAttack,
    PercentageNoiseAttack,
    reordering_success_rates,
    sweep_thresholds,
)
from repro.attacks.rewatermark import RewatermarkAttack, RewatermarkOutcome
from repro.attacks.sampling import SamplingDetectionPoint, evaluate_sampling_attack
from repro.core.cache import CacheStats, DetectorCache
from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.utils.rng import RngLike, derive_rng
from repro.utils.timing import Stopwatch


@dataclass
class RobustnessReport:
    """Aggregated output of a full robustness evaluation run.

    Beyond the attack outcomes themselves the report keeps the run's
    execution profile: wall-clock seconds per attack family
    (``attack_seconds``), the per-family detector-cache hit/miss deltas
    (``attack_cache_deltas``) and the final cache counters
    (``detector_cache``). The experiment report layer renders these via
    :func:`repro.experiments.report.render_evaluator_records`.
    """

    watermark: WatermarkResult
    sampling: List[SamplingDetectionPoint] = field(default_factory=list)
    destroy_threshold_sweeps: Dict[str, list] = field(default_factory=dict)
    reordering_success: Dict[float, float] = field(default_factory=dict)
    rewatermark: Optional[RewatermarkOutcome] = None
    attack_seconds: Dict[str, float] = field(default_factory=dict)
    attack_cache_deltas: Dict[str, Dict[str, int]] = field(default_factory=dict)
    detector_cache: Optional[CacheStats] = None

    def records(self) -> List[Dict[str, object]]:
        """One flat row per attack family (timing + cache behaviour).

        Consumed by the experiment report layer; row order follows the
        evaluation order of :meth:`RobustnessEvaluator.evaluate`.
        """
        rows: List[Dict[str, object]] = []
        for family, seconds in self.attack_seconds.items():
            delta = self.attack_cache_deltas.get(family, {})
            hits = int(delta.get("hits", 0))
            misses = int(delta.get("misses", 0))
            rows.append(
                {
                    "attack_family": family,
                    "seconds": seconds,
                    "cache_hits": hits,
                    "cache_misses": misses,
                    "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                }
            )
        return rows


class RobustnessEvaluator:
    """Run the paper's attack suite against one watermarked dataset.

    One :class:`~repro.core.cache.DetectorCache` is shared across every
    attack family, so the owner's detector (per threshold setting) is
    constructed once for the whole evaluation instead of once per sweep
    point — verdicts are unchanged, only the redundant SHA-256 moduli
    derivations disappear.
    """

    def __init__(
        self,
        generation: Optional[GenerationConfig] = None,
        *,
        rng: RngLike = None,
        detector_cache: Optional[DetectorCache] = None,
    ) -> None:
        self.generation = generation or GenerationConfig()
        self._rng_source = rng
        # Unbounded: the working set is one secret times a handful of
        # threshold settings, already bounded by the sweep parameters.
        self.detector_cache = (
            detector_cache if detector_cache is not None else DetectorCache(capacity=None)
        )

    def _rng(self, label: str):
        if self._rng_source is None:
            return None
        return derive_rng(self._rng_source, "robustness", label)

    def watermark(self, histogram: TokenHistogram) -> WatermarkResult:
        """Embed the reference watermark the attacks will target."""
        generator = WatermarkGenerator(self.generation, rng=self._rng("generate"))
        return generator.generate(histogram)

    def evaluate(
        self,
        histogram: TokenHistogram,
        *,
        sampling_fractions: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.5, 0.9),
        sampling_thresholds: Sequence[int] = (0, 1, 2, 4, 10),
        destroy_thresholds: Sequence[int] = (0, 1, 2, 4, 10),
        reordering_percents: Sequence[float] = (10, 30, 50, 60, 80, 90),
        include_rewatermark: bool = True,
        repetitions: int = 3,
    ) -> RobustnessReport:
        """Watermark ``histogram`` and run every attack family against it.

        Each attack family's wall-clock time and detector-cache hit/miss
        delta land in the report's ``attack_seconds`` /
        ``attack_cache_deltas`` records rather than being discarded, so
        report layers can show where evaluation time goes and that
        detectors are constructed once per threshold setting.
        """
        result = self.watermark(histogram)
        report = RobustnessReport(watermark=result)
        watermarked = result.watermarked_histogram
        secret = result.secret
        stopwatch = Stopwatch()

        with self._measured(report, stopwatch, "sampling"):
            report.sampling = evaluate_sampling_attack(
                watermarked,
                secret,
                fractions=sampling_fractions,
                thresholds=sampling_thresholds,
                repetitions=repetitions,
                rng=self._rng("sampling"),
                detector_cache=self.detector_cache,
            )

        with self._measured(report, stopwatch, "destroy-no-attack"):
            report.destroy_threshold_sweeps["no-attack"] = sweep_thresholds(
                watermarked,
                secret,
                destroy_thresholds,
                attack=None,
                detector_cache=self.detector_cache,
            )
        with self._measured(report, stopwatch, "destroy-random-within-bounds"):
            report.destroy_threshold_sweeps["random-within-bounds"] = sweep_thresholds(
                watermarked,
                secret,
                destroy_thresholds,
                attack=BoundaryNoiseAttack(rng=self._rng("destroy-random")),
                repetitions=repetitions,
                detector_cache=self.detector_cache,
            )
        with self._measured(report, stopwatch, "destroy-percentage-within-bounds"):
            report.destroy_threshold_sweeps["percentage-within-bounds"] = (
                sweep_thresholds(
                    watermarked,
                    secret,
                    destroy_thresholds,
                    attack=PercentageNoiseAttack(1.0, rng=self._rng("destroy-percent")),
                    repetitions=repetitions,
                    detector_cache=self.detector_cache,
                )
            )

        with self._measured(report, stopwatch, "destroy-reordering"):
            report.reordering_success = reordering_success_rates(
                watermarked,
                secret,
                percents=reordering_percents,
                repetitions=repetitions,
                rng=self._rng("destroy-reorder"),
                detector_cache=self.detector_cache,
            )

        if include_rewatermark:
            with self._measured(report, stopwatch, "rewatermark"):
                attack = RewatermarkAttack(
                    self.generation,
                    rng=self._rng("rewatermark"),
                    detector_cache=self.detector_cache,
                )
                report.rewatermark = attack.run(watermarked, secret)
        report.attack_seconds = stopwatch.as_dict()
        report.detector_cache = self.detector_cache.stats()
        return report

    @contextmanager
    def _measured(
        self, report: RobustnessReport, stopwatch: Stopwatch, family: str
    ):
        """Time one attack family and record its cache hit/miss delta."""
        before = self.detector_cache.stats()
        with stopwatch.measure(family):
            yield
        after = self.detector_cache.stats()
        report.attack_cache_deltas[family] = {
            "hits": after.hits - before.hits,
            "misses": after.misses - before.misses,
        }


__all__ = ["RobustnessReport", "RobustnessEvaluator"]
