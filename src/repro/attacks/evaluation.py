"""Attack-robustness evaluation harness.

The Section V experiments all share the same skeleton: watermark a
reference dataset (synthetic power-law, α = 0.5, z = 131, b = 2 in the
paper), run a family of attacks with swept parameters, and report how the
detection behaves. :class:`RobustnessEvaluator` packages that skeleton so
benchmarks, examples and tests stay short and consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.destroy import (
    BoundaryNoiseAttack,
    PercentageNoiseAttack,
    reordering_success_rates,
    sweep_thresholds,
)
from repro.attacks.rewatermark import RewatermarkAttack, RewatermarkOutcome
from repro.attacks.sampling import SamplingDetectionPoint, evaluate_sampling_attack
from repro.core.cache import DetectorCache
from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.utils.rng import RngLike, derive_rng


@dataclass
class RobustnessReport:
    """Aggregated output of a full robustness evaluation run."""

    watermark: WatermarkResult
    sampling: List[SamplingDetectionPoint] = field(default_factory=list)
    destroy_threshold_sweeps: Dict[str, list] = field(default_factory=dict)
    reordering_success: Dict[float, float] = field(default_factory=dict)
    rewatermark: Optional[RewatermarkOutcome] = None


class RobustnessEvaluator:
    """Run the paper's attack suite against one watermarked dataset.

    One :class:`~repro.core.cache.DetectorCache` is shared across every
    attack family, so the owner's detector (per threshold setting) is
    constructed once for the whole evaluation instead of once per sweep
    point — verdicts are unchanged, only the redundant SHA-256 moduli
    derivations disappear.
    """

    def __init__(
        self,
        generation: Optional[GenerationConfig] = None,
        *,
        rng: RngLike = None,
        detector_cache: Optional[DetectorCache] = None,
    ) -> None:
        self.generation = generation or GenerationConfig()
        self._rng_source = rng
        # Unbounded: the working set is one secret times a handful of
        # threshold settings, already bounded by the sweep parameters.
        self.detector_cache = (
            detector_cache if detector_cache is not None else DetectorCache(capacity=None)
        )

    def _rng(self, label: str):
        if self._rng_source is None:
            return None
        return derive_rng(self._rng_source, "robustness", label)

    def watermark(self, histogram: TokenHistogram) -> WatermarkResult:
        """Embed the reference watermark the attacks will target."""
        generator = WatermarkGenerator(self.generation, rng=self._rng("generate"))
        return generator.generate(histogram)

    def evaluate(
        self,
        histogram: TokenHistogram,
        *,
        sampling_fractions: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.5, 0.9),
        sampling_thresholds: Sequence[int] = (0, 1, 2, 4, 10),
        destroy_thresholds: Sequence[int] = (0, 1, 2, 4, 10),
        reordering_percents: Sequence[float] = (10, 30, 50, 60, 80, 90),
        include_rewatermark: bool = True,
        repetitions: int = 3,
    ) -> RobustnessReport:
        """Watermark ``histogram`` and run every attack family against it."""
        result = self.watermark(histogram)
        report = RobustnessReport(watermark=result)
        watermarked = result.watermarked_histogram
        secret = result.secret

        report.sampling = evaluate_sampling_attack(
            watermarked,
            secret,
            fractions=sampling_fractions,
            thresholds=sampling_thresholds,
            repetitions=repetitions,
            rng=self._rng("sampling"),
            detector_cache=self.detector_cache,
        )

        report.destroy_threshold_sweeps["no-attack"] = sweep_thresholds(
            watermarked,
            secret,
            destroy_thresholds,
            attack=None,
            detector_cache=self.detector_cache,
        )
        report.destroy_threshold_sweeps["random-within-bounds"] = sweep_thresholds(
            watermarked,
            secret,
            destroy_thresholds,
            attack=BoundaryNoiseAttack(rng=self._rng("destroy-random")),
            repetitions=repetitions,
            detector_cache=self.detector_cache,
        )
        report.destroy_threshold_sweeps["percentage-within-bounds"] = sweep_thresholds(
            watermarked,
            secret,
            destroy_thresholds,
            attack=PercentageNoiseAttack(1.0, rng=self._rng("destroy-percent")),
            repetitions=repetitions,
            detector_cache=self.detector_cache,
        )

        report.reordering_success = reordering_success_rates(
            watermarked,
            secret,
            percents=reordering_percents,
            repetitions=repetitions,
            rng=self._rng("destroy-reorder"),
            detector_cache=self.detector_cache,
        )

        if include_rewatermark:
            attack = RewatermarkAttack(
                self.generation,
                rng=self._rng("rewatermark"),
                detector_cache=self.detector_cache,
            )
            report.rewatermark = attack.run(watermarked, secret)
        return report


__all__ = ["RobustnessReport", "RobustnessEvaluator"]
