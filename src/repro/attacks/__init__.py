"""Attack models and robustness evaluation for FreqyWM (paper Section V)."""

from repro.attacks.base import Attack, AttackOutcome
from repro.attacks.destroy import (
    BoundaryNoiseAttack,
    PercentageNoiseAttack,
    ReorderingNoiseAttack,
    reordering_success_rates,
    sweep_thresholds,
    verified_pair_fraction,
)
from repro.attacks.evaluation import RobustnessEvaluator, RobustnessReport
from repro.attacks.guess import (
    GuessAttack,
    GuessAttackReport,
    expected_guesses_to_succeed,
    guess_success_probability,
    single_pair_acceptance_probability,
)
from repro.attacks.rewatermark import RewatermarkAttack, RewatermarkOutcome
from repro.attacks.sampling import (
    SamplingAttack,
    SamplingDetectionPoint,
    evaluate_sampling_attack,
    rescale_suspect,
    sample_token_sequence,
    subsample_histogram,
)

__all__ = [
    "Attack",
    "AttackOutcome",
    "BoundaryNoiseAttack",
    "PercentageNoiseAttack",
    "ReorderingNoiseAttack",
    "reordering_success_rates",
    "sweep_thresholds",
    "verified_pair_fraction",
    "RobustnessEvaluator",
    "RobustnessReport",
    "GuessAttack",
    "GuessAttackReport",
    "expected_guesses_to_succeed",
    "guess_success_probability",
    "single_pair_acceptance_probability",
    "RewatermarkAttack",
    "RewatermarkOutcome",
    "SamplingAttack",
    "SamplingDetectionPoint",
    "evaluate_sampling_attack",
    "rescale_suspect",
    "sample_token_sequence",
    "subsample_histogram",
]
