"""Re-watermarking / false-claim attack — Section V-D.

The attacker takes the honestly watermarked dataset ``D_w``, runs the
*normal* watermark generation on it with its own secret, and presents the
result ``D_A_w`` together with its secret as "proof" of ownership. Both
parties now hold secrets that verify on some version of the data, creating
a dispute.

The defence is the judge protocol (implemented in
:mod:`repro.dispute.judge`): each party submits its secret and its claimed
watermarked dataset; the judge runs detection for every (secret, dataset)
combination. Only the genuine owner's secret verifies on *both* datasets —
the attacker watermarked on top of the owner's watermark, so the owner's
pairs survive in ``D_A_w`` (the paper measures ~92 % of them at ``t = 0``),
whereas the attacker's watermark does not exist in ``D_w``, which predates
the attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import DetectionResult, WatermarkDetector
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class RewatermarkOutcome:
    """Everything produced by simulating a re-watermarking attack.

    Attributes
    ----------
    attacker_result:
        The attacker's watermark generation run on top of ``D_w``.
    owner_on_attacker_data / attacker_on_owner_data:
        The two cross-detections that decide the dispute: the owner's
        secret on the attacker's dataset (expected to verify) and the
        attacker's secret on the owner's original watermarked dataset
        (expected to fail).
    owner_pair_survival:
        Fraction of the owner's pairs still verifying in the attacker's
        version — the paper's ~92 % at ``t = 0``.
    """

    attacker_result: WatermarkResult
    owner_on_attacker_data: DetectionResult
    attacker_on_owner_data: DetectionResult
    owner_pair_survival: float

    @property
    def dispute_resolved_for_owner(self) -> bool:
        """True when the paper's cross-detection rule identifies the owner.

        Note: an attacker whose selection is dominated by pairs that were
        *already* aligned in the owner's version can make its secret verify
        on both datasets, leaving this rule ambiguous; the judge protocol
        then falls back to the margin rule and finally to the registry's
        chronological order (see :class:`repro.dispute.judge.Judge` and the
        discussion in DESIGN.md).
        """
        return self.owner_on_attacker_data.accepted and not self.attacker_on_owner_data.accepted

    @property
    def attacker_modified_pair_survival_on_owner(self) -> float:
        """Fraction of the attacker's *modified* pairs verifying on ``D_w``.

        Pairs the attacker actually had to adjust encode its watermark; by
        construction they were misaligned in the owner's earlier version,
        so this fraction is near zero — the measurable asymmetry between
        the genuine owner and a re-watermarking pirate.
        """
        modified_pairs = {
            adjustment.pair
            for adjustment in self.attacker_result.adjustments
            if adjustment.cost > 0
        }
        if not modified_pairs:
            return 0.0
        verified = sum(
            1
            for evidence in self.attacker_on_owner_data.evidence
            if evidence.pair in modified_pairs and evidence.accepted
        )
        return verified / len(modified_pairs)


class RewatermarkAttack:
    """Simulate a pirate watermarking the owner's watermarked dataset.

    Parameters
    ----------
    config:
        The attacker's generation parameters.
    detector_cache:
        Shared :class:`~repro.core.cache.DetectorCache` resolving the
        cross-detection detectors. Repeated simulations against the same
        owner secret (robustness sweeps, parameter studies) then pay the
        owner-side moduli precomputation once; verdicts are unchanged.
    """

    name = "rewatermark"

    def __init__(
        self,
        config: Optional[GenerationConfig] = None,
        *,
        rng: RngLike = None,
        detector_cache: Optional[DetectorCache] = None,
    ) -> None:
        self.config = config or GenerationConfig()
        self._rng_source = rng
        self.detector_cache = (
            detector_cache if detector_cache is not None else DetectorCache()
        )

    def run(
        self,
        owner_watermarked: TokenHistogram,
        owner_secret: WatermarkSecret,
        *,
        detection: Optional[DetectionConfig] = None,
        owner_detector: Optional[WatermarkDetector] = None,
    ) -> RewatermarkOutcome:
        """Run the attack and the cross-detections that arbitrate it.

        A prebuilt ``owner_detector`` (matching ``owner_secret`` and
        ``detection``) takes precedence over the cache; the attacker's
        own detector is always freshly resolved, since its secret is
        sampled inside this call.
        """
        detection_config = detection or DetectionConfig(pair_threshold=0)
        attacker = WatermarkGenerator(self.config, rng=self._rng_source)
        attacker_result = attacker.generate(owner_watermarked)

        if owner_detector is None:
            owner_detector = self.detector_cache.get(owner_secret, detection_config)
        # The attacker's secret is freshly sampled inside this call, so
        # its detector can never be reused — construct it directly
        # rather than depositing a dead entry in the shared cache on
        # every simulation of a parameter study.
        attacker_detector = WatermarkDetector(attacker_result.secret, detection_config)

        owner_on_attacker = owner_detector.detect(attacker_result.watermarked_histogram)
        attacker_on_owner = attacker_detector.detect(owner_watermarked)

        return RewatermarkOutcome(
            attacker_result=attacker_result,
            owner_on_attacker_data=owner_on_attacker,
            attacker_on_owner_data=attacker_on_owner,
            owner_pair_survival=owner_on_attacker.accepted_fraction,
        )


__all__ = ["RewatermarkOutcome", "RewatermarkAttack"]
