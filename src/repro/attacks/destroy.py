"""Destroy attacks — Section V-C and Figure 5.

The attacker knows a watermark may be present (no security by obscurity)
and perturbs the token frequencies hoping to break the modulo relations.
The paper distinguishes:

* **Without re-ordering** (the attacker preserves the ranking so the data
  keeps its utility):

  - *random-within-boundaries*: each token's frequency moves by a random
    amount inside the same upper/lower boundaries the owner used, which is
    the strongest rank-preserving perturbation;
  - *bounded-percentage*: each token moves by at most ``p%`` of its
    boundary slack (the paper uses 1 %), a weaker attack.

* **With re-ordering**: the attacker perturbs frequencies by up to a given
  percentage of their value with no ranking restriction, degrading the
  data's utility along with the watermark.

Each attack is exposed as an :class:`~repro.attacks.base.Attack`, and the
sweep helpers reproduce the curves of Figure 5 and the success-rate table
of Section V-C2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig
from repro.core.detector import WatermarkDetector
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import AttackError
from repro.utils.rng import RngLike, ensure_rng


class BoundaryNoiseAttack(Attack):
    """Destroy attack without re-ordering: random noise within boundaries.

    For each token ranked ``i`` the attacker draws ``r_i`` uniformly from
    ``(-l_i, u_i)`` (the same slack the owner had) and applies it. After
    each change the next token's upper boundary is updated, exactly as the
    paper describes, so the ranking is never inverted.
    """

    name = "destroy-random-within-bounds"

    def tamper(self, histogram: TokenHistogram) -> TokenHistogram:
        rng = self.rng
        order = list(histogram.tokens)
        counts = {token: histogram.frequency(token) for token in order}
        new_counts: Dict[str, int] = {}
        previous_new = math.inf
        for index, token in enumerate(order):
            frequency = counts[token]
            upper = (
                math.inf if index == 0 else counts[order[index - 1]] - frequency
            )
            # Effective upper slack also respects the already-perturbed
            # previous token so the perturbed sequence stays non-increasing.
            if previous_new is not math.inf:
                upper = min(upper, previous_new - frequency)
            lower = (
                frequency
                if index == len(order) - 1
                else frequency - counts[order[index + 1]]
            )
            low = -int(lower)
            high = int(upper) if upper is not math.inf else int(max(1, frequency))
            if high <= low:
                delta = 0
            else:
                delta = int(rng.integers(low, high + 1))
            new_value = max(0, frequency + delta)
            if previous_new is not math.inf:
                new_value = min(new_value, int(previous_new))
            new_counts[token] = new_value
            previous_new = new_value
        cleaned = {token: count for token, count in new_counts.items() if count > 0}
        return TokenHistogram.from_counts(cleaned)


class PercentageNoiseAttack(Attack):
    """Destroy attack without re-ordering: bounded-percentage noise.

    Each token moves by a random amount inside ``percent`` of its boundary
    slack (the paper uses 1 %). Because the perturbation is a fraction of
    the slack, the ranking is preserved by construction.
    """

    name = "destroy-percentage-within-bounds"

    def __init__(self, percent: float = 1.0, *, rng: RngLike = None) -> None:
        super().__init__(rng=rng)
        if percent < 0:
            raise AttackError(f"percent must be non-negative, got {percent}")
        self.percent = percent

    def parameters(self) -> Dict[str, object]:
        return {"percent": self.percent}

    def tamper(self, histogram: TokenHistogram) -> TokenHistogram:
        rng = self.rng
        order = list(histogram.tokens)
        counts = {token: histogram.frequency(token) for token in order}
        boundaries = histogram.boundaries()
        fraction = self.percent / 100.0
        new_counts: Dict[str, int] = {}
        for index, token in enumerate(order):
            bounds = boundaries[token]
            upper = bounds.upper if math.isfinite(bounds.upper) else counts[token]
            scaled_upper = int(math.floor(upper * fraction))
            scaled_lower = int(math.floor(bounds.lower * fraction))
            if scaled_upper <= -scaled_lower:
                delta = 0
            else:
                delta = int(rng.integers(-scaled_lower, scaled_upper + 1))
            new_counts[token] = max(0, counts[token] + delta)
        cleaned = {token: count for token, count in new_counts.items() if count > 0}
        return TokenHistogram.from_counts(cleaned)


class ReorderingNoiseAttack(Attack):
    """Destroy attack with re-ordering: ±``percent``% multiplicative noise.

    Every token's frequency is scaled by a factor uniform in
    ``[1 - percent/100, 1 + percent/100]`` with no ranking restriction.
    This is the attack behind the Section V-C2 success-rate table; at high
    noise levels it visibly degrades the data's analytical utility.
    """

    name = "destroy-reordering"

    def __init__(self, percent: float, *, rng: RngLike = None) -> None:
        super().__init__(rng=rng)
        if percent < 0:
            raise AttackError(f"percent must be non-negative, got {percent}")
        self.percent = percent

    def parameters(self) -> Dict[str, object]:
        return {"percent": self.percent}

    def tamper(self, histogram: TokenHistogram) -> TokenHistogram:
        rng = self.rng
        scale = self.percent / 100.0
        new_counts: Dict[str, int] = {}
        for token in histogram.tokens:
            frequency = histogram.frequency(token)
            factor = 1.0 + rng.uniform(-scale, scale)
            new_counts[token] = max(0, int(round(frequency * factor)))
        cleaned = {token: count for token, count in new_counts.items() if count > 0}
        if not cleaned:
            raise AttackError("attack removed every token occurrence")
        return TokenHistogram.from_counts(cleaned)


@dataclass(frozen=True)
class DestroySweepPoint:
    """One point of the Figure 5 style sweeps."""

    attack_name: str
    pair_threshold: int
    accepted_fraction: float
    detected: bool
    parameters: Dict[str, object]


def verified_pair_fraction(
    histogram: TokenHistogram,
    secret: WatermarkSecret,
    pair_threshold: int,
    *,
    min_accepted_fraction: float = 0.5,
    detector_cache: Optional[DetectorCache] = None,
) -> float:
    """Fraction of the secret's pairs that verify on ``histogram`` at ``t``."""
    config = DetectionConfig(
        pair_threshold=pair_threshold, min_accepted_fraction=min_accepted_fraction
    )
    detector = (
        detector_cache.get(secret, config)
        if detector_cache is not None
        else WatermarkDetector(secret, config)
    )
    return detector.detect(histogram).accepted_fraction


def sweep_thresholds(
    histogram: TokenHistogram,
    secret: WatermarkSecret,
    thresholds: Sequence[int],
    *,
    attack: Optional[Attack] = None,
    repetitions: int = 3,
    detector_cache: Optional[DetectorCache] = None,
) -> List[DestroySweepPoint]:
    """Verified-pair fraction versus ``t`` for an (optionally attacked) dataset.

    With ``attack=None`` the sweep is run on ``histogram`` itself — used
    for the un-attacked watermarked curve and for the non-watermarked
    false-positive curve of Figure 5. Randomness comes entirely from the
    ``attack`` instance's own generator. Detectors are resolved through
    ``detector_cache`` (a private one when not given), so repeated sweeps
    over the same secret and thresholds skip the moduli precomputation.
    """
    cache = detector_cache if detector_cache is not None else DetectorCache()
    points: List[DestroySweepPoint] = []
    for threshold in thresholds:
        detector = cache.get(secret, DetectionConfig(pair_threshold=threshold))
        targets = [
            attack.tamper(histogram) if attack is not None else histogram
            for _ in range(max(1, repetitions if attack is not None else 1))
        ]
        detections = detector.detect_many(targets)
        fractions = [detection.accepted_fraction for detection in detections]
        detected_votes = [detection.accepted for detection in detections]
        points.append(
            DestroySweepPoint(
                attack_name=attack.name if attack is not None else "no-attack",
                pair_threshold=threshold,
                accepted_fraction=float(np.mean(fractions)),
                detected=bool(np.mean(detected_votes) >= 0.5),
                parameters=dict(attack.parameters()) if attack is not None else {},
            )
        )
    return points


def reordering_success_rates(
    histogram: TokenHistogram,
    secret: WatermarkSecret,
    *,
    percents: Sequence[float] = (10, 30, 50, 60, 80, 90),
    pair_threshold: int = 4,
    repetitions: int = 5,
    rng: RngLike = None,
    detector_cache: Optional[DetectorCache] = None,
) -> Dict[float, float]:
    """Detection success rate under re-ordering noise of varying strength.

    Reproduces the Section V-C2 numbers: success rates around
    [94, 88, 82, 79, 78, 76] % for noise levels [10..90] % at ``t = 4``.
    """
    generator = ensure_rng(rng)
    detection = DetectionConfig(pair_threshold=pair_threshold)
    detector = (
        detector_cache.get(secret, detection)
        if detector_cache is not None
        else WatermarkDetector(secret, detection)
    )
    rates: Dict[float, float] = {}
    for percent in percents:
        attacked_batch = [
            ReorderingNoiseAttack(percent, rng=generator).tamper(histogram)
            for _ in range(repetitions)
        ]
        detections = detector.detect_many(attacked_batch)
        rates[float(percent)] = float(
            np.mean([detection.accepted_fraction for detection in detections])
        )
    return rates


__all__ = [
    "BoundaryNoiseAttack",
    "PercentageNoiseAttack",
    "ReorderingNoiseAttack",
    "DestroySweepPoint",
    "verified_pair_fraction",
    "sweep_thresholds",
    "reordering_success_rates",
]
