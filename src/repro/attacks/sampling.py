"""Sampling attack — Section V-B and Figure 4.

The pirate copies only a random ``x%`` subsample of the watermarked
dataset, hoping the watermark will not be detectable within the extract.
The owner's counter-measure is to rescale the suspected subsample back to
the original dataset size (multiply every frequency by ``100 / x``, the
original size being known from the watermark metadata) before running
detection; small ``t`` values then absorb the rounding noise introduced by
the subsampling, except when the sample is so small that watermarked
tokens are missing entirely.

Two granularities are provided:

* :class:`SamplingAttack` subsamples a *histogram* multinomially — the
  occurrences kept are a uniform random subset of the occurrences, which
  is statistically identical to subsampling the raw rows and is what the
  large sweeps use;
* :func:`sample_token_sequence` subsamples an actual token sequence, used
  by the examples and the row-level tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import AttackError
from repro.utils.rng import RngLike, ensure_rng


def sample_token_sequence(
    tokens: Sequence[str], fraction: float, *, rng: RngLike = None
) -> List[str]:
    """Uniformly subsample ``fraction`` of a raw token sequence."""
    if not 0.0 < fraction <= 1.0:
        raise AttackError(f"sample fraction must lie in (0, 1], got {fraction}")
    generator = ensure_rng(rng)
    size = max(1, int(round(fraction * len(tokens))))
    indices = generator.choice(len(tokens), size=size, replace=False)
    return [tokens[int(index)] for index in sorted(indices)]


def subsample_histogram(
    histogram: TokenHistogram, fraction: float, *, rng: RngLike = None
) -> TokenHistogram:
    """Subsample a histogram as if ``fraction`` of its occurrences were kept.

    A multivariate hypergeometric draw (sampling occurrences without
    replacement) keeps exactly ``round(fraction * N)`` occurrences and
    matches what subsampling the raw dataset would produce.
    """
    if not 0.0 < fraction <= 1.0:
        raise AttackError(f"sample fraction must lie in (0, 1], got {fraction}")
    generator = ensure_rng(rng)
    counts = np.array(histogram.frequencies(), dtype=np.int64)
    total = int(counts.sum())
    keep = max(1, int(round(fraction * total)))
    drawn = generator.multivariate_hypergeometric(counts, keep)
    sampled = {
        token: int(count)
        for token, count in zip(histogram.tokens, drawn)
        if count > 0
    }
    return TokenHistogram.from_counts(sampled)


class SamplingAttack(Attack):
    """Pirate a random ``fraction`` of the watermarked dataset."""

    name = "sampling"

    def __init__(self, fraction: float, *, rng: RngLike = None) -> None:
        super().__init__(rng=rng)
        if not 0.0 < fraction <= 1.0:
            raise AttackError(f"sample fraction must lie in (0, 1], got {fraction}")
        self.fraction = fraction

    def parameters(self) -> Dict[str, object]:
        return {"fraction": self.fraction}

    def tamper(self, histogram: TokenHistogram) -> TokenHistogram:
        return subsample_histogram(histogram, self.fraction, rng=self.rng)


def rescale_suspect(
    suspect: TokenHistogram, original_size: int
) -> TokenHistogram:
    """Owner-side rescaling of a suspected subsample to the original size.

    The owner knows the watermarked dataset's size (stored in the secret
    metadata); multiplying every frequency by ``original_size /
    suspect_size`` restores the magnitude the moduli were calibrated for.
    """
    suspect_size = suspect.total_count()
    if suspect_size <= 0:
        raise AttackError("suspected dataset is empty")
    return suspect.scaled(original_size / suspect_size)


@dataclass(frozen=True)
class SamplingDetectionPoint:
    """One point of the Figure 4 sweep."""

    fraction: float
    pair_threshold: int
    accepted_pairs: int
    total_pairs: int
    accepted_fraction: float
    detected: bool


def evaluate_sampling_attack(
    watermarked: TokenHistogram,
    secret: WatermarkSecret,
    *,
    fractions: Sequence[float],
    thresholds: Sequence[int] = (0, 1, 2, 4, 10),
    min_accepted_fraction: float = 0.5,
    repetitions: int = 3,
    rng: RngLike = None,
    detector_cache: Optional[DetectorCache] = None,
) -> List[SamplingDetectionPoint]:
    """Sweep sample fractions and thresholds, averaging over repetitions.

    This reproduces both the coarse sweep (1–90 % samples) reported in the
    text of Section V-B and the very-low-sample sweep of Figure 4. The
    owner-side rescaling step is applied before each detection.
    """
    generator = ensure_rng(rng)
    original_size = watermarked.total_count()
    points: List[SamplingDetectionPoint] = []
    # One detector per threshold, shared across the whole sweep (and,
    # through a shared cache, across repeated sweeps): the SHA-256
    # modulus derivation happens once instead of once per
    # (fraction, threshold, repetition) triple.
    cache = (
        detector_cache
        if detector_cache is not None
        else DetectorCache(capacity=max(len(tuple(thresholds)), 1))
    )
    detectors = {
        threshold: cache.get(
            secret,
            DetectionConfig(
                pair_threshold=threshold,
                min_accepted_fraction=min_accepted_fraction,
            ),
        )
        for threshold in thresholds
    }
    for fraction in fractions:
        for threshold in thresholds:
            rescaled_batch: List[TokenHistogram] = []
            for _ in range(repetitions):
                attack = SamplingAttack(fraction, rng=generator)
                sampled = attack.tamper(watermarked)
                rescaled_batch.append(rescale_suspect(sampled, original_size))
            detections = detectors[threshold].detect_many(rescaled_batch)
            accepted_counts = [detection.accepted_pairs for detection in detections]
            detected_votes = [detection.accepted for detection in detections]
            mean_accepted = float(np.mean(accepted_counts))
            points.append(
                SamplingDetectionPoint(
                    fraction=fraction,
                    pair_threshold=threshold,
                    accepted_pairs=int(round(mean_accepted)),
                    total_pairs=len(secret.pairs),
                    accepted_fraction=mean_accepted / len(secret.pairs),
                    detected=bool(np.mean(detected_votes) >= 0.5),
                )
            )
    return points


__all__ = [
    "sample_token_sequence",
    "subsample_histogram",
    "SamplingAttack",
    "rescale_suspect",
    "SamplingDetectionPoint",
    "evaluate_sampling_attack",
]
