"""Common attack abstractions.

Section V analyses FreqyWM against four attacker models — guess, sampling,
destroy and re-watermarking. Every concrete attack in this package
transforms a *watermarked histogram* (or raw dataset) into an attacked
version the way an adversary who only holds the watermarked copy could,
and the shared :class:`AttackOutcome` couples the attacked data with the
owner's subsequent detection attempt so robustness sweeps all look alike.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult, WatermarkDetector
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class AttackOutcome:
    """Result of running one attack and re-running detection afterwards.

    Attributes
    ----------
    attack_name:
        Identifier of the attack that produced this outcome.
    attacked_histogram:
        The histogram of the pirated / tampered dataset.
    detection:
        Detection result obtained with the owner's secret on the attacked
        data (None when the caller only wanted the attacked data).
    parameters:
        The attack's own knobs (sample fraction, noise level, ...), kept
        for reporting.
    """

    attack_name: str
    attacked_histogram: TokenHistogram
    detection: Optional[DetectionResult]
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        """Whether the owner's watermark survived the attack."""
        return bool(self.detection and self.detection.accepted)

    @property
    def accepted_pair_fraction(self) -> float:
        """Fraction of watermarked pairs that still verify after the attack."""
        if self.detection is None:
            return 0.0
        return self.detection.accepted_fraction


class Attack(abc.ABC):
    """Base class for attacks on a watermarked histogram.

    Subclasses implement :meth:`tamper`, producing the attacked histogram;
    :meth:`run` then optionally evaluates the owner's detection on it.
    """

    #: Human-readable attack identifier (subclasses override).
    name: str = "attack"

    def __init__(self, *, rng: RngLike = None) -> None:
        self._rng_source = rng

    @property
    def rng(self):
        """A NumPy generator for this attack's randomness."""
        return ensure_rng(self._rng_source)

    @abc.abstractmethod
    def tamper(self, histogram: TokenHistogram) -> TokenHistogram:
        """Return the attacked version of ``histogram``."""

    def parameters(self) -> Dict[str, object]:
        """The attack's parameters, for reporting; subclasses extend."""
        return {}

    def run(
        self,
        histogram: TokenHistogram,
        secret: Optional[WatermarkSecret] = None,
        detection: Optional[DetectionConfig] = None,
        *,
        detector: Optional[WatermarkDetector] = None,
        detector_cache: Optional[DetectorCache] = None,
    ) -> AttackOutcome:
        """Tamper with ``histogram`` and (optionally) re-run detection.

        Robustness sweeps call this in tight loops, so the owner's
        detector need not be rebuilt per call: pass a prebuilt
        ``detector`` (it then takes precedence and ``secret`` /
        ``detection`` may be omitted), or a shared ``detector_cache``
        from which the ``(secret, detection)`` detector is resolved.
        Verdicts are identical either way — the detector is a pure
        function of the secret and the thresholds.
        """
        attacked = self.tamper(histogram)
        result: Optional[DetectionResult] = None
        if detector is None and secret is not None:
            detector = (
                detector_cache.get(secret, detection)
                if detector_cache is not None
                else WatermarkDetector(secret, detection)
            )
        if detector is not None:
            result = detector.detect(attacked)
        return AttackOutcome(
            attack_name=self.name,
            attacked_histogram=attacked,
            detection=result,
            parameters=self.parameters(),
        )


__all__ = ["AttackOutcome", "Attack"]
