"""Judge protocol for ownership disputes — Section V-D.

When a pirate re-watermarks an honestly watermarked dataset, both parties
can show a secret that verifies on *some* version of the data. The paper
resolves the dispute with a trusted judge: each party submits its secret
list and its claimed watermarked dataset, the judge runs the detection
algorithm for every (secret, dataset) combination (four runs for two
parties), and the genuine owner is the party whose secret verifies on
**both** datasets — its watermark predates the attacker's copy and is
therefore present everywhere, whereas the attacker's watermark is absent
from the owner's earlier version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.cache import DetectorCache
from repro.core.config import DetectionConfig
from repro.core.detector import DetectionResult
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenValue
from repro.exceptions import DisputeError

if False:  # pragma: no cover - import cycle guard, typing aid only
    from repro.dispute.registry import WatermarkRegistry


@dataclass(frozen=True)
class OwnershipClaim:
    """One party's submission to the judge."""

    claimant: str
    secret: WatermarkSecret
    claimed_data: TokenHistogram

    @classmethod
    def from_tokens(
        cls, claimant: str, secret: WatermarkSecret, tokens: Sequence[TokenValue]
    ) -> "OwnershipClaim":
        """Build a claim from a raw token sequence."""
        return cls(
            claimant=claimant,
            secret=secret,
            claimed_data=TokenHistogram.from_tokens(tokens),
        )


@dataclass(frozen=True)
class Verdict:
    """The judge's decision and the evidence matrix behind it.

    ``detections[claimant_a][claimant_b]`` is the detection of claimant
    a's secret on claimant b's submitted dataset.
    """

    winner: Optional[str]
    reason: str
    detections: Dict[str, Dict[str, DetectionResult]] = field(default_factory=dict)

    @property
    def resolved(self) -> bool:
        """True when the judge could single out one rightful owner."""
        return self.winner is not None


class Judge:
    """Trusted third party arbitrating competing ownership claims.

    The primary decision rule is the paper's: the rightful owner is the
    unique claimant whose secret verifies on **every** submitted dataset.
    In practice a re-watermarking attacker's secret can *partially* verify
    on the owner's earlier version, because the optimal selection happily
    includes pairs that were already aligned by chance and those pairs
    survive backwards in time. When the primary rule is ambiguous the
    judge therefore falls back to a margin rule: each claimant is scored
    by the *minimum* accepted-pair fraction its secret achieves across all
    submitted datasets, and the claimant with the clearly highest score
    wins (the genuine owner's pairs verify almost fully everywhere, while
    a forger's verify only at the chance-alignment rate on data predating
    its watermark). ``margin`` controls how clear the separation must be.
    """

    def __init__(
        self,
        detection: Optional[DetectionConfig] = None,
        *,
        margin: float = 0.15,
        registry: Optional["WatermarkRegistry"] = None,
        detector_cache: Optional[DetectorCache] = None,
    ) -> None:
        self.detection = detection or DetectionConfig(pair_threshold=0)
        if not 0.0 <= margin < 1.0:
            raise DisputeError("margin must lie in [0, 1)")
        self.margin = margin
        self.registry = registry
        # Unbounded by default: a judge's working set is the claimants of
        # the disputes it arbitrates, and re-arbitrating (with amended
        # claims, say) must not re-derive any claimant's moduli.
        self.detector_cache = (
            detector_cache if detector_cache is not None else DetectorCache(capacity=None)
        )

    def arbitrate(self, claims: Sequence[OwnershipClaim]) -> Verdict:
        """Run cross-detections for every claim pair and decide the owner."""
        if len(claims) < 2:
            raise DisputeError("arbitration needs at least two competing claims")
        names = [claim.claimant for claim in claims]
        if len(set(names)) != len(names):
            raise DisputeError("claimants must have distinct names")

        detections: Dict[str, Dict[str, DetectionResult]] = {}
        for claimant in claims:
            detector = self.detector_cache.get(claimant.secret, self.detection)
            detections[claimant.claimant] = {
                other.claimant: detector.detect(other.claimed_data) for other in claims
            }

        universal = [
            claimant.claimant
            for claimant in claims
            if all(result.accepted for result in detections[claimant.claimant].values())
        ]
        if len(universal) == 1:
            return Verdict(
                winner=universal[0],
                reason=(
                    f"only {universal[0]}'s secret verifies on every submitted dataset"
                ),
                detections=detections,
            )
        if not universal:
            return Verdict(
                winner=None,
                reason="no claimant's secret verifies on every submitted dataset",
                detections=detections,
            )

        # Fallback margin rule over the ambiguous (multi-universal) case.
        scores = {
            name: min(result.accepted_fraction for result in detections[name].values())
            for name in names
        }
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        best_name, best_score = ranked[0]
        runner_up_score = ranked[1][1]
        if best_score >= runner_up_score + self.margin:
            return Verdict(
                winner=best_name,
                reason=(
                    f"{best_name}'s secret verifies {best_score:.0%} of its pairs on every "
                    f"dataset versus {runner_up_score:.0%} for the next claimant"
                ),
                detections=detections,
            )

        # Final tie-break: chronological order in the immutable watermark
        # registry (the paper's index). A forger that cherry-picks pairs
        # already aligned in the victim's data can make its secret verify
        # everywhere, but it cannot have registered that secret before the
        # genuine owner published its version.
        if self.registry is not None:
            chronological = self._registry_order(universal, claims)
            if chronological is not None:
                winner, index = chronological
                return Verdict(
                    winner=winner,
                    reason=(
                        f"{winner}'s watermark fingerprint was registered first "
                        f"(registry entry #{index})"
                    ),
                    detections=detections,
                )
        return Verdict(
            winner=None,
            reason=(
                "multiple claimants verify on every dataset with no clear margin: "
                + ", ".join(sorted(universal))
            ),
            detections=detections,
        )

    def _registry_order(
        self, candidate_names: Sequence[str], claims: Sequence[OwnershipClaim]
    ) -> Optional[tuple]:
        """Earliest-registered candidate by secret fingerprint, if any."""
        fingerprint_by_name = {
            claim.claimant: claim.secret.fingerprint()
            for claim in claims
            if claim.claimant in candidate_names
        }
        earliest: Optional[tuple] = None
        for entry in self.registry.entries:
            for name, fingerprint in fingerprint_by_name.items():
                if entry.fingerprint == fingerprint:
                    if earliest is None or entry.index < earliest[1]:
                        earliest = (name, entry.index)
        return earliest


__all__ = ["OwnershipClaim", "Verdict", "Judge"]
