"""Persistent multi-tenant secret vault backing the watermark registry.

:class:`~repro.dispute.registry.WatermarkRegistry` is in-memory; a data
marketplace needs its buyer vault to survive restarts. This module keeps
the registry semantics (hash-chained ledger, candidate-index attribution,
revocation) and adds a crash-safe on-disk layout reusing the experiment
run cache's conventions (:mod:`repro.experiments.cache`):

``VAULT_DIR/secrets/<fingerprint>.json``
    One content-addressed file per secret (the
    :meth:`~repro.core.secrets.WatermarkSecret.to_dict` payload), written
    atomically — a temp file in the same directory then ``os.replace`` —
    exactly like the run cache's artifacts. Content addressing by the
    keyed fingerprint dedupes re-registrations of the same watermark.

``VAULT_DIR/ledger.jsonl``
    The append-only hash-chained ledger, one JSON record per line
    (``seq``/``action``/``buyer_id``/``fingerprint``/``metadata``/
    ``previous_hash``/``entry_hash``). Appending one line is O(1) per
    registration — the file is never rewritten.

**Crash atomicity.** A registration writes the secret file *first* and
appends the ledger line *second*. A crash between the two leaves an
orphan secret file that no ledger record references: reload ignores it,
so a half-finished registration contributes **no** vault entry and **no**
index posting (the atomic-write contract the tests pin down). A crash
mid-append leaves a torn final line, which reload truncates away; torn
or tampered records anywhere *before* the tail are an integrity error,
not a repair.

Reloading replays the ledger through an in-memory
:class:`~repro.dispute.registry.WatermarkRegistry`, which rebuilds the
candidate index incrementally — register adds the secret's pair-modulus
buckets, revoke withdraws them — so attribution over a reopened vault is
immediately index-backed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cache import CacheStats
from repro.core.config import DetectionConfig
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenValue
from repro.dispute.index import DEFAULT_GROUP_TEST_THRESHOLD, IndexStats
from repro.dispute.registry import (
    ACTION_KEY,
    ACTION_REVOKE,
    AttributionStats,
    RegistryEntry,
    WatermarkRegistry,
)
from repro.exceptions import DisputeError

_GENESIS = "0" * 64

#: Fields of one ledger record, in the order they are documented.
_RECORD_FIELDS = (
    "seq",
    "action",
    "buyer_id",
    "fingerprint",
    "metadata",
    "previous_hash",
    "entry_hash",
)

ACTION_REGISTER = "register"


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically within its directory."""
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(text, encoding="utf-8")
    os.replace(temp, path)


def _record_hash(record: Dict[str, object]) -> str:
    """Chained hash of one ledger record (all fields but ``entry_hash``)."""
    payload = json.dumps(
        {key: record[key] for key in _RECORD_FIELDS if key != "entry_hash"},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SecretVault:
    """On-disk, crash-safe watermark vault with index-backed attribution.

    Opening a vault directory creates it (and the layout above) when
    missing, or replays the existing ledger. The public API mirrors
    :class:`~repro.dispute.registry.WatermarkRegistry` — ``register`` /
    ``revoke`` / ``attribute_leak`` / ``secret_for`` — with every
    mutation durably appended before it takes effect in memory, so the
    detection service can treat either implementation as its registry.

    Parameters
    ----------
    directory:
        The vault root (created if absent).
    group_test_threshold:
        Forwarded to the in-memory registry's candidate index.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        group_test_threshold: int = DEFAULT_GROUP_TEST_THRESHOLD,
    ) -> None:
        self.directory = Path(directory)
        self.secrets_dir = self.directory / "secrets"
        self.ledger_path = self.directory / "ledger.jsonl"
        self.secrets_dir.mkdir(parents=True, exist_ok=True)
        self._registry = WatermarkRegistry(group_test_threshold=group_test_threshold)
        self._chain_hash = _GENESIS
        self._seq = 0
        self._load()

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #

    def _secret_path(self, fingerprint: str) -> Path:
        return self.secrets_dir / f"{fingerprint}.json"

    def _load_secret(self, fingerprint: str) -> WatermarkSecret:
        path = self._secret_path(fingerprint)
        try:
            secret = WatermarkSecret.load(path)
        except FileNotFoundError:
            raise DisputeError(
                f"vault ledger references secret {fingerprint} but "
                f"{path} does not exist"
            ) from None
        if secret.fingerprint() != fingerprint:
            raise DisputeError(
                f"secret file {path} does not match its content address "
                f"{fingerprint}"
            )
        return secret

    def _load(self) -> None:
        """Replay the ledger (tolerating a torn tail, rejecting tampering)."""
        if not self.ledger_path.exists():
            return
        raw = self.ledger_path.read_text(encoding="utf-8")
        consumed = 0
        offset = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if not stripped:
                offset += len(line)
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                # Only a torn *tail* (a crash mid-append) is repairable;
                # garbage earlier in the file means tampering.
                if raw[offset + len(line):].strip():
                    raise DisputeError(
                        f"vault ledger {self.ledger_path} is corrupt at "
                        f"record {consumed}"
                    ) from None
                with open(self.ledger_path, "r+", encoding="utf-8") as handle:
                    handle.truncate(len(raw[:offset].encode("utf-8")))
                break
            self._replay(record, consumed)
            consumed += 1
            offset += len(line)

    def _replay(self, record: Dict[str, object], position: int) -> None:
        """Verify one ledger record against the chain and apply it."""
        if not isinstance(record, dict) or set(_RECORD_FIELDS) - set(record):
            raise DisputeError(
                f"vault ledger {self.ledger_path} record {position} is malformed"
            )
        if (
            int(record["seq"]) != self._seq
            or record["previous_hash"] != self._chain_hash
            or record["entry_hash"] != _record_hash(record)
        ):
            raise DisputeError(
                f"vault ledger {self.ledger_path} hash chain breaks at "
                f"record {position}"
            )
        buyer_id = str(record["buyer_id"])
        metadata = dict(record["metadata"])
        action = str(record["action"])
        if action == ACTION_REGISTER:
            secret = self._load_secret(str(record["fingerprint"]))
            self._registry.register(buyer_id, secret, **metadata)
        elif action == ACTION_REVOKE:
            self._registry.revoke(buyer_id, **metadata)
        else:
            raise DisputeError(
                f"vault ledger {self.ledger_path} record {position} has "
                f"unknown action {action!r}"
            )
        self._seq += 1
        self._chain_hash = str(record["entry_hash"])

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _append_record(
        self, action: str, buyer_id: str, fingerprint: str, metadata: Dict[str, object]
    ) -> None:
        """Durably chain one record onto ``ledger.jsonl``."""
        record: Dict[str, object] = {
            "seq": self._seq,
            "action": action,
            "buyer_id": buyer_id,
            "fingerprint": fingerprint,
            "metadata": metadata,
            "previous_hash": self._chain_hash,
        }
        record["entry_hash"] = _record_hash(record)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with open(self.ledger_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._seq += 1
        self._chain_hash = str(record["entry_hash"])

    def register(
        self, buyer_id: str, secret: WatermarkSecret, **metadata: object
    ) -> RegistryEntry:
        """Durably register ``buyer_id``'s watermark.

        Secret file first, ledger append second: a crash in between
        leaves only an ignorable orphan file, never a vault entry
        without its secret or an index posting without its ledger record.
        """
        if buyer_id in self._registry.active_buyers:
            raise DisputeError(f"buyer {buyer_id!r} already has a registered watermark")
        if ACTION_KEY in metadata:
            raise DisputeError(f"metadata key {ACTION_KEY!r} is reserved for the ledger")
        fingerprint = secret.fingerprint()
        secret_path = self._secret_path(fingerprint)
        if not secret_path.exists():
            _atomic_write(secret_path, secret.to_json())
        entry_metadata = dict(metadata)
        self._append_record(ACTION_REGISTER, buyer_id, fingerprint, entry_metadata)
        return self._registry.register(buyer_id, secret, **entry_metadata)

    def revoke(self, buyer_id: str, **metadata: object) -> RegistryEntry:
        """Durably revoke ``buyer_id``'s watermark (append-only)."""
        secret = self._registry.secret_for(buyer_id)  # validates existence
        if ACTION_KEY in metadata:
            raise DisputeError(f"metadata key {ACTION_KEY!r} is reserved for the ledger")
        entry_metadata = dict(metadata)
        self._append_record(
            ACTION_REVOKE, buyer_id, secret.fingerprint(), entry_metadata
        )
        return self._registry.revoke(buyer_id, **entry_metadata)

    # ------------------------------------------------------------------ #
    # Delegated queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._registry)

    @property
    def entries(self) -> Tuple[RegistryEntry, ...]:
        """All chained entries (registrations and revocations) in order."""
        return self._registry.entries

    @property
    def active_buyers(self) -> Tuple[str, ...]:
        """Buyers currently holding a registered (unrevoked) watermark."""
        return self._registry.active_buyers

    @property
    def last_attribution(self) -> Optional[AttributionStats]:
        """How the last :meth:`attribute_leak` call ran."""
        return self._registry.last_attribution

    def secret_for(self, buyer_id: str) -> WatermarkSecret:
        """The privately held secret issued to ``buyer_id``."""
        return self._registry.secret_for(buyer_id)

    def attribute_leak(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        detection: Optional[DetectionConfig] = None,
    ) -> List[Tuple[str, float]]:
        """Index-backed attribution over the persisted vault.

        Semantics are exactly
        :meth:`~repro.dispute.registry.WatermarkRegistry.attribute_leak`.
        """
        return self._registry.attribute_leak(data, detection=detection)

    def verify_chain(self) -> bool:
        """Verify the replayed in-memory chain (see also the disk chain)."""
        return self._registry.verify_chain()

    def export_public_ledger(self) -> List[Dict[str, object]]:
        """Serialisable public view (fingerprints only, no secrets)."""
        return self._registry.export_public_ledger()

    def detector_cache_stats(self) -> CacheStats:
        """Construction/hit counters of the underlying detector cache."""
        return self._registry.detector_cache_stats()

    def index_stats(self) -> IndexStats:
        """Structural counters of the candidate-pruning index."""
        return self._registry.index_stats()


__all__ = ["ACTION_REGISTER", "ACTION_REVOKE", "SecretVault"]
