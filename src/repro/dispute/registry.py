"""Watermark registry — the paper's "immutable index" for buyer tracing.

The introduction sketches a leak-tracing workflow: a seller (or data
marketplace) creates a *different* watermark for every buyer, stores a
description of each watermark in an immutable index (the paper suggests a
blockchain), and when an unauthorised copy surfaces, looks it up against
the index to identify the leaking buyer.

This module provides that index as a hash-chained, append-only ledger of
watermark *fingerprints* (keyed commitments — the secrets themselves never
enter the registry), plus the lookup that runs detection with each
registered secret to attribute a leaked copy. The hash chain makes
after-the-fact tampering evident, which is the property the blockchain was
buying; persistence is plain JSON so the registry can be shared or
audited.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.batch import detect_many_secrets
from repro.core.cache import CacheStats, DetectorCache
from repro.core.config import DetectionConfig
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenValue
from repro.exceptions import DisputeError

_GENESIS = "0" * 64


@dataclass(frozen=True)
class RegistryEntry:
    """One registered watermark: who it was issued to and its commitment."""

    index: int
    buyer_id: str
    fingerprint: str
    metadata: Dict[str, object]
    previous_hash: str
    entry_hash: str

    @staticmethod
    def compute_hash(
        index: int,
        buyer_id: str,
        fingerprint: str,
        metadata: Dict[str, object],
        previous_hash: str,
    ) -> str:
        """Deterministic hash binding the entry to its predecessor."""
        payload = json.dumps(
            {
                "index": index,
                "buyer_id": buyer_id,
                "fingerprint": fingerprint,
                "metadata": metadata,
                "previous_hash": previous_hash,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class WatermarkRegistry:
    """Append-only, hash-chained index of issued watermarks.

    The registry stores only fingerprints; the seller keeps the full
    secrets privately (``secrets_vault``) so leak attribution can re-run
    detection. Splitting the two mirrors the paper's intent: the public
    index proves *when* a watermark was issued and to whom, without
    revealing anything that helps an attacker find or remove it.
    """

    def __init__(self) -> None:
        self._entries: List[RegistryEntry] = []
        self._vault: Dict[str, WatermarkSecret] = {}
        # Unbounded like the vault itself: leak attribution re-runs
        # detection with every registered secret, and each detector must
        # be constructed once per (secret, thresholds), not once per
        # leaked copy screened.
        self._detectors = DetectorCache(capacity=None)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[RegistryEntry, ...]:
        """All registry entries in issue order."""
        return tuple(self._entries)

    def register(
        self,
        buyer_id: str,
        secret: WatermarkSecret,
        **metadata: object,
    ) -> RegistryEntry:
        """Register the watermark issued to ``buyer_id``.

        The secret itself goes into the private vault; only its keyed
        fingerprint enters the chained public entry.
        """
        if buyer_id in self._vault:
            raise DisputeError(f"buyer {buyer_id!r} already has a registered watermark")
        previous_hash = self._entries[-1].entry_hash if self._entries else _GENESIS
        index = len(self._entries)
        fingerprint = secret.fingerprint()
        entry_metadata = dict(metadata)
        entry_hash = RegistryEntry.compute_hash(
            index, buyer_id, fingerprint, entry_metadata, previous_hash
        )
        entry = RegistryEntry(
            index=index,
            buyer_id=buyer_id,
            fingerprint=fingerprint,
            metadata=entry_metadata,
            previous_hash=previous_hash,
            entry_hash=entry_hash,
        )
        self._entries.append(entry)
        self._vault[buyer_id] = secret
        return entry

    def secret_for(self, buyer_id: str) -> WatermarkSecret:
        """The privately held secret issued to ``buyer_id``."""
        try:
            return self._vault[buyer_id]
        except KeyError:
            raise DisputeError(f"no watermark registered for buyer {buyer_id!r}") from None

    # ------------------------------------------------------------------ #
    # Integrity and lookup
    # ------------------------------------------------------------------ #

    def verify_chain(self) -> bool:
        """Check the hash chain: any tampered entry breaks verification."""
        previous_hash = _GENESIS
        for index, entry in enumerate(self._entries):
            expected = RegistryEntry.compute_hash(
                index, entry.buyer_id, entry.fingerprint, entry.metadata, previous_hash
            )
            if entry.index != index or entry.previous_hash != previous_hash:
                return False
            if entry.entry_hash != expected:
                return False
            previous_hash = entry.entry_hash
        return True

    def attribute_leak(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        detection: Optional[DetectionConfig] = None,
    ) -> List[Tuple[str, float]]:
        """Identify which buyer's watermark a leaked copy carries.

        Screens every registered secret against the leaked copy in one
        stacked vectorized pass
        (:func:`repro.core.batch.detect_many_secrets`) — the dataset's
        frequencies are looked up once for the union of all buyers' pairs
        instead of once per buyer — and returns the buyers whose
        watermark verifies, sorted by decreasing accepted-pair fraction
        (the strongest match first). Per-buyer moduli come from the
        registry's detector cache, so screening the next leaked copy
        constructs nothing (:meth:`detector_cache_stats` exposes the
        counters). Verdicts are identical to the per-buyer detect loop
        this replaces (regression-tested).
        """
        detection_config = detection or DetectionConfig(pair_threshold=1)
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        buyer_ids = list(self._vault)
        results = detect_many_secrets(
            histogram,
            [self._vault[buyer_id] for buyer_id in buyer_ids],
            detection_config,
            detector_cache=self._detectors,
        )
        matches: List[Tuple[str, float]] = [
            (buyer_id, result.accepted_fraction)
            for buyer_id, result in zip(buyer_ids, results)
            if result.accepted
        ]
        matches.sort(key=lambda item: (-item[1], item[0]))
        return matches

    def detector_cache_stats(self) -> CacheStats:
        """Construction/hit counters of the registry's detector cache."""
        return self._detectors.stats()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def export_public_ledger(self) -> List[Dict[str, object]]:
        """Serialisable public view (fingerprints only, no secrets)."""
        return [
            {
                "index": entry.index,
                "buyer_id": entry.buyer_id,
                "fingerprint": entry.fingerprint,
                "metadata": entry.metadata,
                "previous_hash": entry.previous_hash,
                "entry_hash": entry.entry_hash,
            }
            for entry in self._entries
        ]

    def save_public_ledger(self, path: Union[str, Path]) -> None:
        """Write the public ledger to ``path`` as JSON."""
        Path(path).write_text(
            json.dumps(self.export_public_ledger(), indent=2), encoding="utf-8"
        )

    @staticmethod
    def verify_exported_ledger(entries: Sequence[Dict[str, object]]) -> bool:
        """Verify the hash chain of an exported public ledger."""
        previous_hash = _GENESIS
        for index, raw in enumerate(entries):
            expected = RegistryEntry.compute_hash(
                int(raw["index"]),
                str(raw["buyer_id"]),
                str(raw["fingerprint"]),
                dict(raw["metadata"]),
                previous_hash,
            )
            if int(raw["index"]) != index or raw["previous_hash"] != previous_hash:
                return False
            if raw["entry_hash"] != expected:
                return False
            previous_hash = str(raw["entry_hash"])
        return True


__all__ = ["RegistryEntry", "WatermarkRegistry"]
