"""Watermark registry — the paper's "immutable index" for buyer tracing.

The introduction sketches a leak-tracing workflow: a seller (or data
marketplace) creates a *different* watermark for every buyer, stores a
description of each watermark in an immutable index (the paper suggests a
blockchain), and when an unauthorised copy surfaces, looks it up against
the index to identify the leaking buyer.

This module provides that index as a hash-chained, append-only ledger of
watermark *fingerprints* (keyed commitments — the secrets themselves never
enter the registry), plus the lookup that runs detection with each
registered secret to attribute a leaked copy. The hash chain makes
after-the-fact tampering evident, which is the property the blockchain was
buying; persistence is plain JSON so the registry can be shared or
audited.

Revocation stays append-only: revoking a buyer appends a chained entry
whose metadata carries ``action: "revoke"`` (absent means register), so
the public ledger never rewrites history while the private vault and the
candidate index drop the secret immediately.

Attribution is sublinear in vault size: a
:class:`~repro.dispute.index.CandidateIndex` screen first prunes the
vault to a candidate set (with a pooled group-testing fallback for tiny
vaults), and only the candidates go through the exact stacked
:func:`~repro.core.batch.detect_many_secrets` confirmation. Verdicts are
identical to screening the whole vault (parity-tested); the
million-secret scaling story lives in ``docs/registry.md``. The
persistent on-disk variant is :class:`repro.dispute.vault.SecretVault`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.batch import detect_many_secrets
from repro.core.cache import CacheStats, DetectorCache
from repro.core.config import DetectionConfig
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.core.tokens import TokenValue
from repro.dispute.index import (
    DEFAULT_GROUP_TEST_THRESHOLD,
    CandidateIndex,
    CandidateScreen,
    IndexStats,
)
from repro.exceptions import DisputeError

_GENESIS = "0" * 64

#: Metadata key distinguishing revocation entries on the chain; register
#: entries omit it, so pre-revocation ledgers verify unchanged.
ACTION_KEY = "action"
ACTION_REVOKE = "revoke"


@dataclass(frozen=True)
class RegistryEntry:
    """One registered watermark: who it was issued to and its commitment."""

    index: int
    buyer_id: str
    fingerprint: str
    metadata: Dict[str, object]
    previous_hash: str
    entry_hash: str

    @property
    def action(self) -> str:
        """``"register"`` or ``"revoke"`` (from the metadata marker)."""
        return str(self.metadata.get(ACTION_KEY, "register"))

    @staticmethod
    def compute_hash(
        index: int,
        buyer_id: str,
        fingerprint: str,
        metadata: Dict[str, object],
        previous_hash: str,
    ) -> str:
        """Deterministic hash binding the entry to its predecessor."""
        payload = json.dumps(
            {
                "index": index,
                "buyer_id": buyer_id,
                "fingerprint": fingerprint,
                "metadata": metadata,
                "previous_hash": previous_hash,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class AttributionStats:
    """How the last :meth:`WatermarkRegistry.attribute_leak` call ran.

    Attributes
    ----------
    mode:
        The index screen mode — ``"empty"``, ``"group-test"`` or
        ``"index"`` (see :class:`~repro.dispute.index.CandidateScreen`).
    candidates:
        Secrets that survived the screen and went to exact confirmation.
    active_secrets:
        Registered-and-not-revoked secrets at screen time.
    buckets_screened / buckets_accepted:
        Vectorized bucket-pass counters from the screen.
    matches:
        Buyers the exact confirmation accepted.
    """

    mode: str
    candidates: int
    active_secrets: int
    buckets_screened: int
    buckets_accepted: int
    matches: int

    @classmethod
    def from_screen(cls, screen: CandidateScreen, matches: int) -> "AttributionStats":
        """Fold an index screen plus the confirmed match count."""
        return cls(
            mode=screen.mode,
            candidates=len(screen.rows),
            active_secrets=screen.active_secrets,
            buckets_screened=screen.buckets_screened,
            buckets_accepted=screen.buckets_accepted,
            matches=matches,
        )


class WatermarkRegistry:
    """Append-only, hash-chained index of issued watermarks.

    The registry stores only fingerprints; the seller keeps the full
    secrets privately (``secrets_vault``) so leak attribution can re-run
    detection. Splitting the two mirrors the paper's intent: the public
    index proves *when* a watermark was issued and to whom, without
    revealing anything that helps an attacker find or remove it.

    Parameters
    ----------
    group_test_threshold:
        Active-secret count below which attribution screens via the
        pooled group test instead of per-secret bucket hit counting
        (:mod:`repro.dispute.index`).
    """

    def __init__(
        self, *, group_test_threshold: int = DEFAULT_GROUP_TEST_THRESHOLD
    ) -> None:
        self._entries: List[RegistryEntry] = []
        self._vault: Dict[str, WatermarkSecret] = {}
        self._rows: Dict[str, int] = {}
        self._row_buyers: Dict[int, str] = {}
        self._next_row = 0
        self._index = CandidateIndex(group_test_threshold=group_test_threshold)
        # Unbounded like the vault itself: leak attribution re-runs
        # detection with every candidate secret, and each detector must
        # be constructed once per (secret, thresholds), not once per
        # leaked copy screened.
        self._detectors = DetectorCache(capacity=None)
        self.last_attribution: Optional[AttributionStats] = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[RegistryEntry, ...]:
        """All chained entries (registrations and revocations) in order."""
        return tuple(self._entries)

    @property
    def active_buyers(self) -> Tuple[str, ...]:
        """Buyers currently holding a registered (unrevoked) watermark."""
        return tuple(self._vault)

    def _append_entry(
        self, buyer_id: str, fingerprint: str, metadata: Dict[str, object]
    ) -> RegistryEntry:
        """Chain one entry onto the ledger."""
        previous_hash = self._entries[-1].entry_hash if self._entries else _GENESIS
        index = len(self._entries)
        entry_hash = RegistryEntry.compute_hash(
            index, buyer_id, fingerprint, metadata, previous_hash
        )
        entry = RegistryEntry(
            index=index,
            buyer_id=buyer_id,
            fingerprint=fingerprint,
            metadata=metadata,
            previous_hash=previous_hash,
            entry_hash=entry_hash,
        )
        self._entries.append(entry)
        return entry

    def register(
        self,
        buyer_id: str,
        secret: WatermarkSecret,
        **metadata: object,
    ) -> RegistryEntry:
        """Register the watermark issued to ``buyer_id``.

        The secret itself goes into the private vault (and its pair
        buckets into the candidate index); only its keyed fingerprint
        enters the chained public entry. A buyer whose watermark was
        revoked may register a fresh one.
        """
        if buyer_id in self._vault:
            raise DisputeError(f"buyer {buyer_id!r} already has a registered watermark")
        if ACTION_KEY in metadata:
            raise DisputeError(
                f"metadata key {ACTION_KEY!r} is reserved for the ledger"
            )
        entry = self._append_entry(buyer_id, secret.fingerprint(), dict(metadata))
        row = self._next_row
        self._next_row += 1
        self._index.add(row, secret)
        self._vault[buyer_id] = secret
        self._rows[buyer_id] = row
        self._row_buyers[row] = buyer_id
        return entry

    def revoke(self, buyer_id: str, **metadata: object) -> RegistryEntry:
        """Revoke ``buyer_id``'s watermark, appending a chained entry.

        The ledger stays append-only (the registration entry is never
        rewritten); the secret leaves the private vault and the candidate
        index immediately, so attribution can never return a revoked
        buyer again.
        """
        secret = self._vault.get(buyer_id)
        if secret is None:
            raise DisputeError(f"no watermark registered for buyer {buyer_id!r}")
        if ACTION_KEY in metadata:
            raise DisputeError(
                f"metadata key {ACTION_KEY!r} is reserved for the ledger"
            )
        entry_metadata = dict(metadata)
        entry_metadata[ACTION_KEY] = ACTION_REVOKE
        entry = self._append_entry(buyer_id, secret.fingerprint(), entry_metadata)
        row = self._rows.pop(buyer_id)
        del self._row_buyers[row]
        del self._vault[buyer_id]
        self._index.remove(row)
        return entry

    def secret_for(self, buyer_id: str) -> WatermarkSecret:
        """The privately held secret issued to ``buyer_id``."""
        try:
            return self._vault[buyer_id]
        except KeyError:
            raise DisputeError(f"no watermark registered for buyer {buyer_id!r}") from None

    # ------------------------------------------------------------------ #
    # Integrity and lookup
    # ------------------------------------------------------------------ #

    def verify_chain(self) -> bool:
        """Check the hash chain: any tampered entry breaks verification."""
        previous_hash = _GENESIS
        for index, entry in enumerate(self._entries):
            expected = RegistryEntry.compute_hash(
                index, entry.buyer_id, entry.fingerprint, entry.metadata, previous_hash
            )
            if entry.index != index or entry.previous_hash != previous_hash:
                return False
            if entry.entry_hash != expected:
                return False
            previous_hash = entry.entry_hash
        return True

    def attribute_leak(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        detection: Optional[DetectionConfig] = None,
    ) -> List[Tuple[str, float]]:
        """Identify which buyer's watermark a leaked copy carries.

        Runs in two stages. A :class:`~repro.dispute.index.CandidateIndex`
        screen first prunes the vault to a candidate set — one vectorized
        pass over the distinct token-pair modulus buckets, sublinear in
        vault size (with a pooled group-testing fallback for tiny
        vaults). The candidates then go through the exact stacked
        :func:`repro.core.batch.detect_many_secrets` confirmation, whose
        per-candidate moduli come from the registry's detector cache so
        screening the next leaked copy constructs nothing
        (:meth:`detector_cache_stats` exposes the counters).

        Returns the buyers whose watermark verifies, sorted by decreasing
        accepted-pair fraction (the strongest match first). Verdicts are
        identical to screening every registered secret without the index
        (regression-tested); :attr:`last_attribution` records how much
        the screen pruned.
        """
        detection_config = detection or DetectionConfig(pair_threshold=1)
        histogram = (
            data if isinstance(data, TokenHistogram) else TokenHistogram.from_tokens(data)
        )
        screen = self._index.screen(histogram, detection_config)
        buyer_ids = [self._row_buyers[row] for row in screen.rows]
        results = detect_many_secrets(
            histogram,
            [self._vault[buyer_id] for buyer_id in buyer_ids],
            detection_config,
            detector_cache=self._detectors,
        )
        matches: List[Tuple[str, float]] = [
            (buyer_id, result.accepted_fraction)
            for buyer_id, result in zip(buyer_ids, results)
            if result.accepted
        ]
        matches.sort(key=lambda item: (-item[1], item[0]))
        self.last_attribution = AttributionStats.from_screen(screen, len(matches))
        return matches

    def detector_cache_stats(self) -> CacheStats:
        """Construction/hit counters of the registry's detector cache."""
        return self._detectors.stats()

    def index_stats(self) -> IndexStats:
        """Structural counters of the candidate-pruning index."""
        return self._index.stats()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def export_public_ledger(self) -> List[Dict[str, object]]:
        """Serialisable public view (fingerprints only, no secrets)."""
        return [
            {
                "index": entry.index,
                "buyer_id": entry.buyer_id,
                "fingerprint": entry.fingerprint,
                "metadata": entry.metadata,
                "previous_hash": entry.previous_hash,
                "entry_hash": entry.entry_hash,
            }
            for entry in self._entries
        ]

    def save_public_ledger(self, path: Union[str, Path]) -> None:
        """Write the public ledger to ``path`` as JSON."""
        Path(path).write_text(
            json.dumps(self.export_public_ledger(), indent=2), encoding="utf-8"
        )

    @staticmethod
    def verify_exported_ledger(entries: Sequence[Dict[str, object]]) -> bool:
        """Verify the hash chain of an exported public ledger."""
        previous_hash = _GENESIS
        for index, raw in enumerate(entries):
            expected = RegistryEntry.compute_hash(
                int(raw["index"]),
                str(raw["buyer_id"]),
                str(raw["fingerprint"]),
                dict(raw["metadata"]),
                previous_hash,
            )
            if int(raw["index"]) != index or raw["previous_hash"] != previous_hash:
                return False
            if raw["entry_hash"] != expected:
                return False
            previous_hash = str(raw["entry_hash"])
        return True


__all__ = ["AttributionStats", "RegistryEntry", "WatermarkRegistry"]
