"""Ownership dispute resolution: judge protocol and watermark registry."""

from repro.dispute.judge import Judge, OwnershipClaim, Verdict
from repro.dispute.registry import RegistryEntry, WatermarkRegistry

__all__ = ["Judge", "OwnershipClaim", "Verdict", "RegistryEntry", "WatermarkRegistry"]
