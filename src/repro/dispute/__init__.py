"""Ownership dispute resolution: judge protocol, registry, vault, index.

Layers, bottom up:

* :mod:`repro.dispute.index` — :class:`CandidateIndex`, the coarse
  inverted index from token-pair modulus buckets to secret rows that
  makes leak attribution sublinear in vault size;
* :mod:`repro.dispute.registry` — :class:`WatermarkRegistry`, the
  hash-chained in-memory ledger with index-backed attribution and
  append-only revocation;
* :mod:`repro.dispute.vault` — :class:`SecretVault`, the crash-safe
  on-disk registry (content-addressed secret files + JSON-lines ledger);
* :mod:`repro.dispute.judge` — the ownership-dispute arbitration
  protocol.

See ``docs/registry.md`` for the vault layout and the attribution flow.
"""

from repro.dispute.index import CandidateIndex, CandidateScreen, IndexStats
from repro.dispute.judge import Judge, OwnershipClaim, Verdict
from repro.dispute.registry import AttributionStats, RegistryEntry, WatermarkRegistry
from repro.dispute.vault import SecretVault

__all__ = [
    "AttributionStats",
    "CandidateIndex",
    "CandidateScreen",
    "IndexStats",
    "Judge",
    "OwnershipClaim",
    "RegistryEntry",
    "SecretVault",
    "Verdict",
    "WatermarkRegistry",
]
