"""Candidate-pruning index for sublinear leak attribution.

The registry's leak attribution used to screen *every* registered secret
against the leaked copy in one stacked
:func:`repro.core.batch.detect_many_secrets` pass — correct, but linear
in vault size: near a million buyers the per-secret Python loop (list
stacking, result construction) dominates, not the modulo arithmetic.

This module prunes first. Observe that the paper's acceptance rule

    ``present(i, j)  and  (f_i - f_j) mod s_ij <= t(s_ij)``

depends only on the leaked copy's frequencies and on the pair's
``(tk_i, tk_j, s_ij)`` triple — *never* on which secret the pair belongs
to. So all registered secrets' pairs collapse into a coarse inverted
index from **token-pair modulus buckets** to the secrets that posted
into them:

    bucket (tk_i, tk_j, s_ij)  ->  [row ids of secrets storing that pair]

One vectorized pass over the *distinct* buckets (sharing the detector's
:func:`~repro.core.detector.verify_pair_arrays` arithmetic, so the two
paths cannot diverge) decides every posting at once; a bucket-hit
scatter-add then yields each secret's exact accepted-pair count, and the
candidate set is the rows whose count reaches their
:meth:`~repro.core.config.DetectionConfig.required_pairs` quota.

**Soundness / exactness.** Acceptance of a stored pair in the full
stacked pass is exactly the bucket-acceptance condition of its
``(tk_i, tk_j, s_ij)`` bucket, so the scatter-added hit count *equals*
the secret's accepted-pair count in the full pass. Candidates therefore
contain every secret the full pass would accept (zero verdict changes),
and the exact :func:`~repro.core.batch.detect_many_secrets` confirmation
the registry runs on the candidate set only re-derives the rankings.

**Group-testing fallback.** Tiny vaults gain nothing from bucket
bookkeeping per secret: below :attr:`CandidateIndex.group_test_threshold`
active secrets the screen degrades into one pooled group test — the
union of all postings forms a single pool, and only when *some* bucket
accepts (the pool tests positive) is the whole vault confirmed exactly;
a negative pool proves no secret can reach its quota, so nothing is
confirmed (and no detector is ever constructed for a clean copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import DetectionConfig
from repro.core.detector import verify_pair_arrays
from repro.core.hashing import PairModulusCache
from repro.core.histogram import TokenHistogram
from repro.core.secrets import WatermarkSecret
from repro.exceptions import DetectionError, DisputeError

#: Active-secret count below which the screen runs as one pooled group
#: test instead of per-secret hit counting (see the module docstring).
DEFAULT_GROUP_TEST_THRESHOLD = 64

#: One inverted-index bucket: ``(first token, second token, modulus)``.
BucketKey = Tuple[str, str, int]


@dataclass(frozen=True)
class CandidateScreen:
    """Outcome of one index screen over a leaked copy.

    Attributes
    ----------
    rows:
        Row ids of the candidate secrets, ascending. Exact detection
        (:func:`repro.core.batch.detect_many_secrets`) must still
        confirm them; non-candidates are *guaranteed* rejected.
    mode:
        How the screen ran — ``"empty"`` (no active secrets),
        ``"group-test"`` (pooled fallback for tiny vaults) or
        ``"index"`` (per-secret bucket hit counting).
    buckets_screened:
        Distinct ``(pair, modulus)`` buckets the vectorized pass covered.
    buckets_accepted:
        Buckets whose acceptance condition held on the leaked copy.
    active_secrets:
        Registered-and-not-revoked secrets at screen time.
    """

    rows: Tuple[int, ...]
    mode: str
    buckets_screened: int
    buckets_accepted: int
    active_secrets: int


@dataclass(frozen=True)
class IndexStats:
    """Structural counters of a :class:`CandidateIndex`."""

    active_secrets: int
    buckets: int
    postings: int
    group_test_threshold: int


class _CompactArrays:
    """Flat array form of the inverted index (rebuilt lazily on change)."""

    __slots__ = (
        "vocab_tokens",
        "first_ids",
        "second_ids",
        "moduli",
        "offsets",
        "member_rows",
        "max_row",
    )

    def __init__(
        self,
        vocab_tokens: List[str],
        first_ids: np.ndarray,
        second_ids: np.ndarray,
        moduli: np.ndarray,
        offsets: np.ndarray,
        member_rows: np.ndarray,
        max_row: int,
    ) -> None:
        self.vocab_tokens = vocab_tokens
        self.first_ids = first_ids
        self.second_ids = second_ids
        self.moduli = moduli
        self.offsets = offsets
        self.member_rows = member_rows
        self.max_row = max_row


class CandidateIndex:
    """Inverted index from token-pair modulus buckets to secret rows.

    Rows are caller-chosen non-negative integers (the registry uses a
    monotonic issue counter, so row ids survive revocations without
    renumbering). Mutation (:meth:`add` / :meth:`remove`) updates the
    posting lists incrementally and marks the flat screening arrays
    dirty; the next :meth:`screen` recompacts them once.
    """

    def __init__(
        self, *, group_test_threshold: int = DEFAULT_GROUP_TEST_THRESHOLD
    ) -> None:
        if group_test_threshold < 0:
            raise DisputeError(
                f"group_test_threshold must be >= 0, got {group_test_threshold}"
            )
        self.group_test_threshold = group_test_threshold
        self._postings: Dict[BucketKey, List[int]] = {}
        self._row_keys: Dict[int, List[BucketKey]] = {}
        self._pair_counts: Dict[int, int] = {}
        self._compact: Optional[_CompactArrays] = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._pair_counts)

    def add(self, row: int, secret: WatermarkSecret) -> None:
        """Post every ``(pair, modulus)`` bucket of ``secret`` under ``row``.

        The per-pair moduli are derived once here (memoised SHA-256 via
        :class:`~repro.core.hashing.PairModulusCache`) — registration pays
        the hashing so that screening never does.
        """
        if row < 0:
            raise DisputeError(f"index rows must be non-negative, got {row}")
        if row in self._pair_counts:
            raise DisputeError(f"index row {row} is already occupied")
        cache = PairModulusCache(secret.secret, secret.modulus_cap)
        keys: List[BucketKey] = []
        for pair in secret.pairs:
            key = (pair.first, pair.second, cache.modulus(pair.first, pair.second))
            self._postings.setdefault(key, []).append(row)
            keys.append(key)
        self._row_keys[row] = keys
        self._pair_counts[row] = len(keys)
        self._compact = None

    def remove(self, row: int) -> None:
        """Withdraw every posting of ``row`` (a revocation)."""
        keys = self._row_keys.pop(row, None)
        if keys is None:
            raise DisputeError(f"index row {row} is not occupied")
        del self._pair_counts[row]
        for key in keys:
            members = self._postings[key]
            members.remove(row)
            if not members:
                del self._postings[key]
        self._compact = None

    # ------------------------------------------------------------------ #
    # Screening
    # ------------------------------------------------------------------ #

    def _compacted(self) -> _CompactArrays:
        """The flat screening arrays, rebuilding them if stale."""
        if self._compact is not None:
            return self._compact
        vocab: Dict[str, int] = {}

        def token_id(token: str) -> int:
            identifier = vocab.get(token)
            if identifier is None:
                identifier = len(vocab)
                vocab[token] = identifier
            return identifier

        buckets = len(self._postings)
        first_ids = np.empty(buckets, dtype=np.int64)
        second_ids = np.empty(buckets, dtype=np.int64)
        moduli = np.empty(buckets, dtype=np.int64)
        offsets = np.empty(buckets + 1, dtype=np.int64)
        offsets[0] = 0
        members: List[int] = []
        for position, (key, rows) in enumerate(self._postings.items()):
            first, second, modulus = key
            first_ids[position] = token_id(first)
            second_ids[position] = token_id(second)
            moduli[position] = modulus
            members.extend(rows)
            offsets[position + 1] = len(members)
        member_rows = np.asarray(members, dtype=np.int64)
        max_row = max(self._pair_counts, default=0)
        self._compact = _CompactArrays(
            vocab_tokens=list(vocab),
            first_ids=first_ids,
            second_ids=second_ids,
            moduli=moduli,
            offsets=offsets,
            member_rows=member_rows,
            max_row=max_row,
        )
        return self._compact

    def screen(
        self, histogram: TokenHistogram, detection: DetectionConfig
    ) -> CandidateScreen:
        """One vectorized bucket pass: which rows *could* the full pass accept.

        Frequencies are looked up once per distinct token of the index
        vocabulary, the acceptance rule runs once per distinct bucket
        (via the shared :func:`~repro.core.detector.verify_pair_arrays`),
        and a scatter-add turns accepted buckets into per-row hit counts
        — no per-secret Python loop anywhere.
        """
        active = len(self._pair_counts)
        if active == 0:
            return CandidateScreen(
                rows=(),
                mode="empty",
                buckets_screened=0,
                buckets_accepted=0,
                active_secrets=0,
            )
        if any(count == 0 for count in self._pair_counts.values()):
            # Same contract as the full stacked pass it prunes for.
            raise DetectionError("a secret list contains no watermarked pairs")
        compact = self._compacted()
        vocab_frequencies = histogram.arrays().frequencies(compact.vocab_tokens)
        first = vocab_frequencies[compact.first_ids]
        second = vocab_frequencies[compact.second_ids]
        moduli = compact.moduli
        valid = moduli >= 2
        safe_moduli = np.where(valid, moduli, 1)
        # threshold_for depends only on the modulus: resolve per distinct
        # modulus value and broadcast, keeping the single shared rule.
        distinct_moduli, inverse = np.unique(moduli, return_inverse=True)
        thresholds = np.asarray(
            [detection.threshold_for(int(modulus)) for modulus in distinct_moduli],
            dtype=np.int64,
        )[inverse]
        accepted, _present, _remainder = verify_pair_arrays(
            first,
            second,
            safe_moduli=safe_moduli,
            valid=valid,
            thresholds=thresholds,
            symmetric_tolerance=detection.symmetric_tolerance,
        )
        buckets_accepted = int(accepted.sum())
        if active <= self.group_test_threshold:
            # Pooled group test: a negative pool proves every secret's
            # accepted-pair count is 0 < required, so nothing survives;
            # a positive pool sends the whole (tiny) vault to exact
            # confirmation.
            rows = tuple(sorted(self._pair_counts)) if buckets_accepted else ()
            return CandidateScreen(
                rows=rows,
                mode="group-test",
                buckets_screened=len(moduli),
                buckets_accepted=buckets_accepted,
                active_secrets=active,
            )
        posting_counts = np.diff(compact.offsets)
        hit_members = compact.member_rows[np.repeat(accepted, posting_counts)]
        hits = np.bincount(hit_members, minlength=compact.max_row + 1)
        active_rows = np.fromiter(
            sorted(self._pair_counts), dtype=np.int64, count=active
        )
        pair_counts = np.fromiter(
            (self._pair_counts[int(row)] for row in active_rows),
            dtype=np.int64,
            count=active,
        )
        # required_pairs depends only on the stored-pair count: resolve
        # per distinct count and broadcast.
        distinct_counts, count_inverse = np.unique(pair_counts, return_inverse=True)
        required = np.asarray(
            [detection.required_pairs(int(count)) for count in distinct_counts],
            dtype=np.int64,
        )[count_inverse]
        chosen = active_rows[hits[active_rows] >= required]
        return CandidateScreen(
            rows=tuple(int(row) for row in chosen),
            mode="index",
            buckets_screened=len(moduli),
            buckets_accepted=buckets_accepted,
            active_secrets=active,
        )

    def stats(self) -> IndexStats:
        """Structural counters (bucket and posting totals)."""
        return IndexStats(
            active_secrets=len(self._pair_counts),
            buckets=len(self._postings),
            postings=sum(self._pair_counts.values()),
            group_test_threshold=self.group_test_threshold,
        )


__all__ = [
    "DEFAULT_GROUP_TEST_THRESHOLD",
    "CandidateIndex",
    "CandidateScreen",
    "IndexStats",
]
