"""Pluggable task execution: one API from in-process to distributed.

The :mod:`repro.exec` package is the execution substrate the sharded
pools and the experiment executor stand on:

* :mod:`repro.exec.policy` — the frozen
  :class:`~repro.exec.policy.ExecutionPolicy`, the single way callers
  configure parallelism (workers, chunking, start method, backend,
  scheduler name and worker addresses);
* :mod:`repro.exec.scheduler` — the
  :class:`~repro.exec.scheduler.Scheduler` API,
  :class:`~repro.exec.scheduler.TaskSpec`, the task/initializer name
  registries, and the default in-machine
  :class:`~repro.exec.scheduler.LocalScheduler`;
* :mod:`repro.exec.remote` — the
  :class:`~repro.exec.remote.RemoteScheduler` dispatching tasks over
  the JSON-lines wire to ``freqywm worker`` processes;
* :mod:`repro.exec.worker` — the worker-process server itself;
* :mod:`repro.exec.blobs` — the zero-copy data plane: the
  content-addressed :class:`~repro.exec.blobs.BlobStore`, the
  :class:`~repro.exec.blobs.BlobRef` payload indirection, and the
  shared-memory / out-of-band pickling helpers both schedulers ship
  large payloads through;
* :mod:`repro.exec.chunking` — the shared chunk-size heuristic.

``docs/scheduler.md`` is the narrative documentation.
"""

from repro.exec.blobs import (
    BlobRef,
    BlobStore,
    dataplane_enabled,
    default_blob_store,
    maybe_blob,
    resolve_refs,
)
from repro.exec.chunking import (
    DETECTION_CHUNKS_PER_WORKER,
    DETECTION_MAX_CHUNK,
    chunk_spans,
    derive_chunk_size,
    split_chunks,
)
from repro.exec.policy import ExecutionPolicy, policy_from_kwargs
from repro.exec.scheduler import (
    LocalScheduler,
    Scheduler,
    SchedulerStats,
    TaskSpec,
    create_scheduler,
    default_worker_count,
    load_builtin_tasks,
    register_initializer,
    register_scheduler,
    register_task_function,
    run_task,
)

__all__ = [
    "DETECTION_CHUNKS_PER_WORKER",
    "DETECTION_MAX_CHUNK",
    "BlobRef",
    "BlobStore",
    "ExecutionPolicy",
    "LocalScheduler",
    "Scheduler",
    "SchedulerStats",
    "TaskSpec",
    "chunk_spans",
    "create_scheduler",
    "dataplane_enabled",
    "default_blob_store",
    "default_worker_count",
    "derive_chunk_size",
    "load_builtin_tasks",
    "maybe_blob",
    "policy_from_kwargs",
    "register_initializer",
    "register_scheduler",
    "register_task_function",
    "resolve_refs",
    "run_task",
    "split_chunks",
]
