"""One frozen configuration object for every parallel execution path.

:class:`ExecutionPolicy` is the single way to say *how* a batch runs —
how many workers, which chunking, which multiprocessing start method,
which compute backend, and which scheduler (the default in-machine
``"local"`` pool, or ``"remote"`` dispatch to ``freqywm worker``
processes at the given addresses). Every parallel entry point
(:func:`repro.core.batch.detect_many`, :func:`~repro.core.batch.embed_many`,
:func:`~repro.core.batch.detect_many_secrets`, both sharded pools, and
the experiment executor) takes ``policy=``; the pre-existing
``workers=`` / ``chunk_size=`` / ``start_method=`` keyword arguments are
kept as deprecated aliases that fold into a policy and emit
:class:`DeprecationWarning` (equivalence is pinned by
``tests/test_exec_policy.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.obs.trace import parse_telemetry


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batched workload is executed.

    Attributes
    ----------
    workers:
        Worker count. ``None`` lets the scheduler pick (the local
        scheduler uses the visible CPU cores; the remote scheduler uses
        one logical worker per address). ``1`` always runs in-process.
    chunk_size:
        Items per dispatched chunk; ``None`` derives a size from the
        batch via :func:`repro.exec.chunking.derive_chunk_size`.
    start_method:
        ``multiprocessing`` start method for the local scheduler
        (``"fork"``, ``"spawn"``, ``"forkserver"``; ``None`` = platform
        default). Ignored by remote schedulers.
    backend:
        Compute-backend *name* for the workers (``None`` = the
        ``FREQYWM_BACKEND`` / NumPy default). Names, not instances:
        backends hold device handles and never cross process boundaries.
    scheduler:
        Scheduler name — ``"local"`` (default, the in-machine
        multiprocessing pool) or ``"remote"`` (dispatch over the
        JSON-lines wire to ``freqywm worker`` processes); additional
        names may be registered via
        :func:`repro.exec.scheduler.register_scheduler`.
    addresses:
        Remote worker addresses (``"unix:/path.sock"``, ``"host:port"``)
        for the ``"remote"`` scheduler; must be empty for ``"local"``.
    telemetry:
        Telemetry features to enable for this run, as the same comma
        list ``FREQYWM_TELEMETRY`` takes (``"spans,metrics"``,
        ``"all"``, ...). ``None`` defers to the environment; the
        experiment executor applies the value process-wide via
        :func:`repro.obs.trace.configure_telemetry`.
    """

    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    start_method: Optional[str] = None
    backend: Optional[str] = None
    scheduler: str = "local"
    addresses: Tuple[str, ...] = field(default_factory=tuple)
    telemetry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if not self.scheduler or not isinstance(self.scheduler, str):
            raise ConfigurationError(
                f"scheduler must be a non-empty name, got {self.scheduler!r}"
            )
        # Accept any sequence of addresses but store a hashable tuple.
        object.__setattr__(
            self, "addresses", tuple(str(address) for address in self.addresses)
        )
        if self.scheduler == "local" and self.addresses:
            raise ConfigurationError(
                "the local scheduler takes no worker addresses; use "
                "scheduler='remote' to dispatch to them"
            )
        if self.scheduler == "remote" and not self.addresses:
            raise ConfigurationError(
                "the remote scheduler needs at least one worker address"
            )
        # Reject typos at construction, not at run time deep in a sweep.
        parse_telemetry(self.telemetry)

    @property
    def parallel(self) -> bool:
        """Whether this policy can run more than one task at a time.

        ``workers=None`` counts as parallel (the scheduler picks a
        count); only an explicit ``workers=1`` under the local scheduler
        is strictly in-process.
        """
        if self.scheduler != "local":
            return True
        return self.workers is None or self.workers > 1

    def merged(self, **overrides: object) -> "ExecutionPolicy":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def policy_from_kwargs(
    policy: Optional[ExecutionPolicy] = None,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    start_method: Optional[str] = None,
    addresses: Optional[Sequence[str]] = None,
    caller: str = "this API",
    stacklevel: int = 3,
) -> ExecutionPolicy:
    """Fold deprecated per-knob keyword arguments into one policy.

    The legacy ``workers=`` / ``chunk_size=`` / ``start_method=``
    keyword arguments still work everywhere they used to, but emit a
    :class:`DeprecationWarning` pointing at ``policy=``. Passing both a
    policy *and* a legacy knob that the policy already sets is an error
    — silently preferring one would make migration bugs invisible.

    Parameters
    ----------
    policy : ExecutionPolicy, optional
        The caller's explicit policy (``None`` = defaults).
    workers, chunk_size, start_method : optional
        Deprecated aliases for the matching policy fields.
    addresses : Sequence[str], optional
        Remote worker addresses to merge (used by the CLI, which maps
        ``--scheduler`` / ``--address`` onto the policy — not
        deprecated).
    caller : str
        Name used in the deprecation message.
    stacklevel : int
        ``warnings.warn`` stacklevel so the warning points at user code.

    Returns
    -------
    ExecutionPolicy
        The merged, validated policy.
    """
    legacy = {
        "workers": workers,
        "chunk_size": chunk_size,
        "start_method": start_method,
    }
    supplied = {name: value for name, value in legacy.items() if value is not None}
    if supplied:
        names = "/".join(f"{name}=" for name in supplied)
        warnings.warn(
            f"{caller}: {names} keyword arguments are deprecated; pass "
            "policy=ExecutionPolicy(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    if policy is None:
        merged = ExecutionPolicy(**supplied)  # type: ignore[arg-type]
    else:
        conflicts = [
            name for name in supplied if getattr(policy, name) is not None
        ]
        if conflicts:
            raise ConfigurationError(
                f"{caller}: {', '.join(conflicts)} given both on the policy "
                "and as a deprecated keyword argument"
            )
        merged = policy.merged(**supplied) if supplied else policy
    if addresses:
        merged = merged.merged(addresses=tuple(addresses))
    return merged


__all__ = ["ExecutionPolicy", "policy_from_kwargs"]
