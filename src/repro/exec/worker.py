"""The ``freqywm worker`` process: serves scheduler tasks over the wire.

One worker is a small asyncio JSON-lines server (the same transport
shape as ``freqywm serve``, :mod:`repro.service.server`) that accepts
protocol-version-3 ``task`` lines, executes them through the shared
worker-side entry point :func:`repro.exec.scheduler.run_task`, and
answers each with one ``result`` line. Three properties matter:

* **worker-local state reuse** — ``run_task`` caches initializer
  products (detectors, generators) under their ``init_key``, so a
  long-lived worker serving a sweep builds each expensive state once;
* **heartbeats answer mid-task** — real tasks run on a single-thread
  executor while the event loop keeps reading lines, so a
  ``__heartbeat__`` probe is answered immediately even during a long
  task (this is what lets clients distinguish *slow* from *dead*);
* **failures stay typed** — a task raising inside the worker answers
  with the exception's type name and message, never a pickled exception
  object, and never kills the connection.

Started by ``freqywm worker --socket PATH`` or ``--tcp HOST:PORT``
(:mod:`repro.cli`); the worker announces ``listening on <address>`` on
stderr once bound, which tests and the CI scheduler-smoke job use as
the readiness signal.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.exec.remote import pickle_b64, spec_from_request
from repro.exec.scheduler import run_task, set_state_cache_size
from repro.service.wire import (
    TaskRequest,
    TaskResult,
    decode_request,
    encode_line,
)


def _failure_for_line(line: str, error: Exception) -> TaskResult:
    """A failure result for an undecodable line, best-effort request id."""
    request_id = "?"
    try:
        payload = json.loads(line)
        if isinstance(payload, dict) and isinstance(payload.get("id"), str):
            request_id = payload["id"]
    except json.JSONDecodeError:
        pass
    return TaskResult.failure(request_id, str(error))


class TaskWorkerServer:
    """Executes ``task`` wire requests for remote schedulers.

    Parameters
    ----------
    max_state : int, optional
        Bound on the worker-local initializer-state cache
        (:func:`repro.exec.scheduler.set_state_cache_size`).
    """

    def __init__(self, *, max_state: Optional[int] = None) -> None:
        if max_state is not None:
            set_state_cache_size(max_state)
        # One thread: task execution is serialized (worker state is not
        # thread-safe) while the event loop stays free for heartbeats.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-worker-task"
        )
        #: Count of real (non-heartbeat) tasks served, for diagnostics.
        self.served = 0

    def _run(self, request: TaskRequest) -> TaskResult:
        """Execute one task in the executor thread; always returns a result."""
        try:
            spec = spec_from_request(request)
            value = run_task(spec)
            return TaskResult(
                request_id=request.request_id,
                ok=True,
                result=pickle_b64(value),
                fingerprint=request.fingerprint,
            )
        except Exception as error:  # noqa: BLE001 - typed failure on the wire
            return TaskResult(
                request_id=request.request_id,
                ok=False,
                error=str(error),
                error_type=type(error).__name__,
                fingerprint=request.fingerprint,
            )

    async def respond(self, line: str) -> TaskResult:
        """Answer one request line (never raises for bad input)."""
        try:
            request = decode_request(line)
        except ReproError as error:
            return _failure_for_line(line, error)
        if not isinstance(request, TaskRequest):
            return TaskResult.failure(
                request.request_id,
                "this worker serves only 'task' lines; detection verbs "
                "belong to freqywm serve",
            )
        if request.is_heartbeat:
            return TaskResult(request_id=request.request_id, ok=True)
        self.served += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, self._run, request)

    async def handle_connection(
        self,
        conn_reader: asyncio.StreamReader,
        conn_writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection until EOF.

        Each line becomes its own asyncio task (self-pruning set, like
        the detection transports) so heartbeat lines are answered while
        a task line is still executing.
        """
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def handle(line: str) -> None:
            response = await self.respond(line)
            async with write_lock:
                conn_writer.write((encode_line(response) + "\n").encode("utf-8"))
                await conn_writer.drain()

        try:
            while True:
                raw = await conn_reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                task = asyncio.ensure_future(handle(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*list(tasks))
        finally:
            conn_writer.close()

    def close(self) -> None:
        """Shut down the task executor (idempotent)."""
        self._executor.shutdown(wait=False)


async def serve_worker_unix(
    socket_path: Union[str, Path],
    *,
    server: Optional[TaskWorkerServer] = None,
    ready: Optional[asyncio.Event] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Serve scheduler tasks on a Unix domain socket until cancelled.

    ``ready`` is set — and ``announce`` called with
    ``"listening on unix:<path>"`` — once the socket accepts
    connections. The socket file is removed on shutdown.
    """
    worker = server if server is not None else TaskWorkerServer()
    path = Path(socket_path)
    listener = await asyncio.start_unix_server(
        worker.handle_connection, path=str(path)
    )
    try:
        if announce is not None:
            announce(f"listening on unix:{path}")
        if ready is not None:
            ready.set()
        async with listener:
            await listener.serve_forever()
    finally:
        worker.close()
        if path.exists():
            path.unlink()


async def serve_worker_tcp(
    host: str,
    port: int,
    *,
    server: Optional[TaskWorkerServer] = None,
    ready: Optional[asyncio.Event] = None,
    announce: Optional[Callable[[str], None]] = None,
    bound: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> None:
    """Serve scheduler tasks on a TCP socket until cancelled.

    ``port=0`` binds an ephemeral port; the actual ``(host, port)`` is
    passed to ``bound`` and announced as ``"listening on tcp:<host>:<port>"``
    so spawners (tests, CI) can learn where to connect.
    """
    worker = server if server is not None else TaskWorkerServer()
    listener = await asyncio.start_server(worker.handle_connection, host, port)
    try:
        address = listener.sockets[0].getsockname()[:2]
        if bound is not None:
            bound((address[0], address[1]))
        if announce is not None:
            announce(f"listening on tcp:{address[0]}:{address[1]}")
        if ready is not None:
            ready.set()
        async with listener:
            await listener.serve_forever()
    finally:
        worker.close()


__all__ = [
    "TaskWorkerServer",
    "serve_worker_tcp",
    "serve_worker_unix",
]
