"""The ``freqywm worker`` process: serves scheduler tasks over the wire.

One worker is a small asyncio JSON-lines server (the same transport
shape as ``freqywm serve``, :mod:`repro.service.server`) that accepts
``task`` lines — protocol v3 base64 payloads or v4 binary frames — and
executes them through the shared worker-side entry point
:func:`repro.exec.scheduler.run_task`, answering each with one
``result`` line. Four properties matter:

* **worker-local state reuse** — ``run_task`` caches initializer
  products (detectors, generators) under their ``init_key``, so a
  long-lived worker serving a sweep builds each expensive state once;
* **blob dedup** (v4) — a task line may reference shared values by
  digest (``blob_refs``); the worker asks for each digest it has not
  cached with a single ``blob-request`` line and keeps the answer in a
  bounded per-worker :class:`~repro.exec.blobs.BlobStore`, so the
  client ships a shared secret once per worker, not once per task (the
  ``bytes_deduped`` counter measures exactly this saving);
* **heartbeats answer mid-task** — real tasks run on a single-thread
  executor while the event loop keeps reading lines, so a
  ``__heartbeat__`` probe is answered immediately even during a long
  task (this is what lets clients distinguish *slow* from *dead*);
* **failures stay typed** — a task raising inside the worker answers
  with the exception's type name and message, never a pickled exception
  object, and never kills the connection. A blob the client can no
  longer supply fails with ``BlobNotFoundError``, which the scheduler
  turns into an inline-payload retry.

Every response line is stamped at ``min(incoming v, own ceiling)``, so
a v3 client talking to a v4 worker still decodes what comes back; the
``FREQYWM_WIRE_CEILING`` environment variable lowers the ceiling (the
mixed-fleet tests use it to impersonate old workers). Started by
``freqywm worker --socket PATH`` or ``--tcp HOST:PORT``
(:mod:`repro.cli`); the worker announces ``listening on <address>`` on
stderr once bound, which tests and the CI scheduler-smoke job use as
the readiness signal, and prints a :meth:`TaskWorkerServer.summary_line`
on shutdown.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import BlobError, BlobNotFoundError, ReproError
from repro.exec.blobs import BlobData, BlobStore, dumps_oob, loads_oob
from repro.exec.remote import pickle_b64, spec_from_request
from repro.exec.scheduler import TaskSpec, run_task, set_state_cache_size
from repro.obs.trace import span as trace_span, tracer
from repro.service.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BlobRequest,
    TaskRequest,
    TaskResult,
    decode_request,
    encode_line,
)

#: Environment variable capping the protocol version this worker admits
#: (defaults to its own :data:`~repro.service.wire.PROTOCOL_VERSION`).
#: Lowering it makes a new binary impersonate an old worker — the
#: mixed-fleet degradation tests run real v3 negotiation through it.
WIRE_CEILING_ENV = "FREQYWM_WIRE_CEILING"

#: Seconds a task waits for the client to answer a ``blob-request``.
BLOB_FETCH_TIMEOUT = 30.0

#: StreamReader line-length cap. The v3/inline fallback carries a whole
#: base64 payload in one JSON line, so asyncio's 64 KiB default would
#: sever the connection on any task beyond a toy histogram; frames
#: (``readexactly``) are not line-limited.
MAX_LINE_BYTES = 1 << 27


def _failure_for_line(line: str, error: Exception) -> TaskResult:
    """A failure result for an undecodable line, best-effort request id."""
    request_id = "?"
    try:
        payload = json.loads(line)
        if isinstance(payload, dict) and isinstance(payload.get("id"), str):
            request_id = payload["id"]
    except json.JSONDecodeError:
        pass
    return TaskResult.failure(request_id, str(error))


def _parse_header(line: str) -> Optional[Dict[str, object]]:
    """The line's JSON object, or None when it is not one."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


def _line_version(header: Optional[Dict[str, object]]) -> int:
    """The ``v`` stamp of a parsed line (absent/malformed = 1)."""
    if header is None:
        return 1
    version = header.get("v", 1)
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        return 1
    return version


def _frame_sizes(header: Optional[Dict[str, object]]) -> Optional[List[int]]:
    """The announced frame sizes, ``[]`` when absent, None when invalid.

    Invalid sizes are unrecoverable: the connection's byte stream can no
    longer be trusted, so the caller drops the connection rather than
    guessing where the next line starts.
    """
    if header is None:
        return []
    value = header.get("frames")
    if value is None:
        return []
    if not isinstance(value, list) or not all(
        isinstance(item, int)
        and not isinstance(item, bool)
        and 0 <= item <= MAX_FRAME_BYTES
        for item in value
    ):
        return None
    return list(value)


class TaskWorkerServer:
    """Executes ``task`` wire requests for remote schedulers.

    Parameters
    ----------
    max_state : int, optional
        Bound on the worker-local initializer-state cache
        (:func:`repro.exec.scheduler.set_state_cache_size`).
    blob_capacity : int, optional
        Byte budget of the per-worker blob cache (default: the store's
        own default, 256 MiB).
    protocol_ceiling : int, optional
        Highest wire version this worker admits; defaults to the
        ``FREQYWM_WIRE_CEILING`` environment variable, else
        :data:`~repro.service.wire.PROTOCOL_VERSION`.
    """

    def __init__(
        self,
        *,
        max_state: Optional[int] = None,
        blob_capacity: Optional[int] = None,
        protocol_ceiling: Optional[int] = None,
    ) -> None:
        if max_state is not None:
            set_state_cache_size(max_state)
        if protocol_ceiling is None:
            env = os.environ.get(WIRE_CEILING_ENV, "").strip()
            protocol_ceiling = int(env) if env else PROTOCOL_VERSION
        self.protocol_ceiling = max(1, min(protocol_ceiling, PROTOCOL_VERSION))
        #: Bounded per-worker cache of client-shipped blobs, by digest.
        self.blobs = (
            BlobStore(capacity=blob_capacity) if blob_capacity else BlobStore()
        )
        # One thread: task execution is serialized (worker state is not
        # thread-safe) while the event loop stays free for heartbeats.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-worker-task"
        )
        #: Count of real (non-heartbeat) tasks served, for diagnostics.
        self.served = 0
        #: Wire bytes read (header lines + frames), all connections.
        self.bytes_received = 0
        #: Bytes *not* re-shipped because a referenced blob was cached.
        self.bytes_deduped = 0

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #

    def _spec_from(
        self, request: TaskRequest, frames: Sequence[bytes]
    ) -> TaskSpec:
        """A runnable spec from a v3 (base64) or v4 (framed) task line."""
        if not request.frames:
            return spec_from_request(request)
        if len(frames) != len(request.frames):
            raise BlobError(
                f"task {request.request_id!r} announced "
                f"{len(request.frames)} frames but {len(frames)} arrived"
            )
        payload_count = request.payload_frames
        init_count = request.init_frames
        payload = (
            loads_oob(BlobData.from_frames(list(frames[:payload_count])))
            if payload_count
            else None
        )
        init_args = (
            tuple(
                loads_oob(
                    BlobData.from_frames(
                        list(frames[payload_count:payload_count + init_count])
                    )
                )
            )
            if init_count
            else ()
        )
        return TaskSpec(
            fingerprint=request.fingerprint or request.request_id,
            function=request.function,
            payload=payload,
            initializer=request.initializer,
            init_key=request.init_key,
            init_args=init_args,
            blob_refs=request.blob_refs,
            trace=request.trace,
        )

    async def _ensure_blobs(self, request: TaskRequest, fetch_blob) -> None:
        """Fetch every referenced blob this worker does not hold yet."""
        for digest in request.blob_refs:
            if digest in self.blobs:
                self.bytes_deduped += self.blobs.size_of(digest)
                continue
            if fetch_blob is None:
                raise BlobNotFoundError(
                    f"no transport to fetch blob {digest[:12]}…",
                    digest=digest,
                )
            with trace_span("blob.fetch", parent=request.trace):
                data = await fetch_blob(request.request_id, digest)
            actual = self.blobs.put(data)
            if actual != digest:
                raise BlobError(
                    f"blob for task {request.request_id!r} failed its digest "
                    f"check (wanted {digest[:12]}…, got {actual[:12]}…)"
                )

    def _run(
        self, request: TaskRequest, spec: TaskSpec, framed: bool
    ) -> Tuple[TaskResult, List[Union[bytes, memoryview]]]:
        """Execute one task in the executor thread; always returns a result.

        A request carrying a trace context gets the spans ``run_task``
        recorded drained out of this process's tracer and attached to
        the result line — success *and* failure — so the dispatching
        scheduler stitches worker-side spans into its own tree even
        when the task raised.
        """
        try:
            value = run_task(spec, blob_fetch=self.blobs.get_object)
            spans = self._drain_spans(request)
            if framed:
                data = dumps_oob(value)
                frames = data.frames()
                return (
                    TaskResult(
                        request_id=request.request_id,
                        ok=True,
                        frames=tuple(len(frame) for frame in frames),
                        fingerprint=request.fingerprint,
                        spans=spans,
                    ),
                    frames,
                )
            return (
                TaskResult(
                    request_id=request.request_id,
                    ok=True,
                    result=pickle_b64(value),
                    fingerprint=request.fingerprint,
                    spans=spans,
                ),
                [],
            )
        except Exception as error:  # noqa: BLE001 - typed failure on the wire
            return (
                TaskResult(
                    request_id=request.request_id,
                    ok=False,
                    error=str(error),
                    error_type=type(error).__name__,
                    fingerprint=request.fingerprint,
                    spans=self._drain_spans(request),
                ),
                [],
            )

    @staticmethod
    def _drain_spans(request: TaskRequest) -> Tuple[Dict[str, object], ...]:
        """The spans to ship back for ``request`` (empty when untraced)."""
        if request.trace is None:
            return ()
        return tuple(tracer().drain())

    async def respond(
        self,
        line: str,
        *,
        version: int = 1,
        frames: Sequence[bytes] = (),
        fetch_blob=None,
    ) -> Tuple[TaskResult, List[Union[bytes, memoryview]]]:
        """Answer one request line (never raises for bad input).

        Returns the result plus any binary frames to write after it —
        non-empty only when the request arrived at v4 or above (an old
        client must never receive frames it would read as lines).
        """
        if version > self.protocol_ceiling:
            return (
                _failure_for_line(
                    line,
                    ReproError(
                        f"line speaks protocol version {version}, but this "
                        f"worker only understands versions up to "
                        f"{self.protocol_ceiling}"
                    ),
                ),
                [],
            )
        try:
            request = decode_request(line)
        except ReproError as error:
            return _failure_for_line(line, error), []
        if not isinstance(request, TaskRequest):
            return (
                TaskResult.failure(
                    request.request_id,
                    "this worker serves only 'task' lines; detection verbs "
                    "belong to freqywm serve",
                ),
                [],
            )
        if request.is_heartbeat:
            return TaskResult(request_id=request.request_id, ok=True), []
        self.served += 1
        try:
            await self._ensure_blobs(request, fetch_blob)
            spec = self._spec_from(request, frames)
        except Exception as error:  # noqa: BLE001 - typed failure on the wire
            return (
                TaskResult(
                    request_id=request.request_id,
                    ok=False,
                    error=str(error),
                    error_type=type(error).__name__,
                    fingerprint=request.fingerprint,
                ),
                [],
            )
        framed = version >= 4 and self.protocol_ceiling >= 4
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run, request, spec, framed
        )

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def handle_connection(
        self,
        conn_reader: asyncio.StreamReader,
        conn_writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection until EOF.

        The read loop alone consumes the byte stream: it parses each
        header line and reads its announced frames *before* dispatching,
        so concurrent per-line tasks (heartbeats answered mid-task, the
        self-pruning set the detection transports use) can never race
        for stream position. ``blob`` lines fulfil the connection's
        pending blob futures; everything else becomes a response.
        """
        write_lock = asyncio.Lock()
        blob_waits: Dict[str, asyncio.Future] = {}
        tasks: set = set()
        loop = asyncio.get_running_loop()

        async def send(message, version: int, out_frames: Sequence = ()) -> None:
            async with write_lock:
                conn_writer.write(
                    (encode_line(message, version=version) + "\n").encode("utf-8")
                )
                for frame in out_frames:
                    conn_writer.write(bytes(frame))
                await conn_writer.drain()

        async def fetch_blob(request_id: str, digest: str) -> BlobData:
            """Ask the client for ``digest`` (once per connection attempt)."""
            future = blob_waits.get(digest)
            if future is None:
                future = loop.create_future()
                blob_waits[digest] = future
                await send(
                    BlobRequest(request_id=request_id, digest=digest),
                    self.protocol_ceiling,
                )
            try:
                header, frames = await asyncio.wait_for(
                    asyncio.shield(future), timeout=BLOB_FETCH_TIMEOUT
                )
            except asyncio.TimeoutError:
                blob_waits.pop(digest, None)
                raise BlobNotFoundError(
                    f"client did not deliver blob {digest[:12]}… within "
                    f"{BLOB_FETCH_TIMEOUT:.0f}s",
                    digest=digest,
                ) from None
            blob_waits.pop(digest, None)
            if not header.get("ok"):
                raise BlobNotFoundError(
                    str(header.get("error") or f"client lost blob {digest[:12]}…"),
                    digest=digest,
                )
            return BlobData.from_frames(frames)

        async def handle(line: str, version: int, frames: List[bytes]) -> None:
            response, out_frames = await self.respond(
                line, version=version, frames=frames, fetch_blob=fetch_blob
            )
            await send(response, min(version, self.protocol_ceiling), out_frames)

        try:
            while True:
                raw = await conn_reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                header = _parse_header(line)
                sizes = _frame_sizes(header)
                if sizes is None:
                    # Unparseable frame announcement: the stream position
                    # is lost, so the connection cannot continue.
                    break
                frames = [await conn_reader.readexactly(size) for size in sizes]
                self.bytes_received += len(raw) + sum(sizes)
                if header is not None and header.get("op") == "blob":
                    digest = header.get("digest")
                    future = (
                        blob_waits.get(digest) if isinstance(digest, str) else None
                    )
                    if future is not None and not future.done():
                        future.set_result((header, frames))
                    continue
                task = asyncio.ensure_future(
                    handle(line, _line_version(header), frames)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*list(tasks))
        except asyncio.IncompleteReadError:
            pass  # client vanished mid-frame: nothing left to answer
        finally:
            for future in blob_waits.values():
                if not future.done():
                    future.cancel()
            conn_writer.close()

    # ------------------------------------------------------------------ #
    # Diagnostics + lifecycle
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, int]:
        """Counter snapshot: tasks served and data-plane byte movement."""
        return {
            "served": self.served,
            "bytes_received": self.bytes_received,
            "bytes_deduped": self.bytes_deduped,
            "blobs_cached": self.blobs.stats()["blobs"],
        }

    def summary_line(self) -> str:
        """One-line rendering of :meth:`summary` for shutdown stderr."""
        counters = self.summary()
        return (
            f"served={counters['served']} "
            f"bytes_received={counters['bytes_received']} "
            f"bytes_deduped={counters['bytes_deduped']} "
            f"blobs_cached={counters['blobs_cached']}"
        )

    def close(self) -> None:
        """Shut down the task executor (idempotent)."""
        self._executor.shutdown(wait=False)


async def serve_worker_unix(
    socket_path: Union[str, Path],
    *,
    server: Optional[TaskWorkerServer] = None,
    ready: Optional[asyncio.Event] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Serve scheduler tasks on a Unix domain socket until cancelled.

    ``ready`` is set — and ``announce`` called with
    ``"listening on unix:<path>"`` — once the socket accepts
    connections. The socket file is removed on shutdown.
    """
    worker = server if server is not None else TaskWorkerServer()
    path = Path(socket_path)
    listener = await asyncio.start_unix_server(
        worker.handle_connection, path=str(path), limit=MAX_LINE_BYTES
    )
    try:
        if announce is not None:
            announce(f"listening on unix:{path}")
        if ready is not None:
            ready.set()
        async with listener:
            await listener.serve_forever()
    finally:
        worker.close()
        if path.exists():
            path.unlink()


async def serve_worker_tcp(
    host: str,
    port: int,
    *,
    server: Optional[TaskWorkerServer] = None,
    ready: Optional[asyncio.Event] = None,
    announce: Optional[Callable[[str], None]] = None,
    bound: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> None:
    """Serve scheduler tasks on a TCP socket until cancelled.

    ``port=0`` binds an ephemeral port; the actual ``(host, port)`` is
    passed to ``bound`` and announced as ``"listening on tcp:<host>:<port>"``
    so spawners (tests, CI) can learn where to connect.
    """
    worker = server if server is not None else TaskWorkerServer()
    listener = await asyncio.start_server(
        worker.handle_connection, host, port, limit=MAX_LINE_BYTES
    )
    try:
        address = listener.sockets[0].getsockname()[:2]
        if bound is not None:
            bound((address[0], address[1]))
        if announce is not None:
            announce(f"listening on tcp:{address[0]}:{address[1]}")
        if ready is not None:
            ready.set()
        async with listener:
            await listener.serve_forever()
    finally:
        worker.close()


__all__ = [
    "BLOB_FETCH_TIMEOUT",
    "MAX_LINE_BYTES",
    "WIRE_CEILING_ENV",
    "TaskWorkerServer",
    "serve_worker_tcp",
    "serve_worker_unix",
]
