"""Shared chunk-size heuristic for every sharded dispatch layer.

Both sharded pools used to carry a private copy of the same arithmetic:
split ``n`` items into contiguous chunks sized so each worker receives a
target number of chunks, optionally capped so no single dispatch holds
too many items. Detection wants several small chunks per worker (suspect
files vary wildly in size, so slack load-balances) while embedding wants
one big chunk per worker (each chunk shares one modulus cache, so bigger
amortises more) — the *heuristic* is one function with two parameter
settings, not two functions.

``tests/test_exec_chunking.py`` pins the boundary behaviour: fewer items
than workers, ``chunk_size=1``, and the cap interacting with tiny
batches.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SchedulerError

#: Detection's default chunks dispatched per worker: small enough to
#: load-balance uneven datasets, large enough that each chunk amortises
#: the worker round-trip over one vectorized matrix pass.
DETECTION_CHUNKS_PER_WORKER = 4
#: Detection's cap on the derived chunk size: bounds how many suspects
#: are resident per dispatch (and per in-process fallback step).
DETECTION_MAX_CHUNK = 64


def derive_chunk_size(
    n_items: int,
    workers: int,
    *,
    chunk_size: Optional[int] = None,
    chunks_per_worker: int = 1,
    max_chunk: Optional[int] = None,
) -> int:
    """The chunk size one dispatch should use for ``n_items`` items.

    Parameters
    ----------
    n_items : int
        Number of items in the batch (>= 0).
    workers : int
        Worker count the batch is split across (>= 1).
    chunk_size : int, optional
        Explicit caller-chosen size; returned verbatim when given.
    chunks_per_worker : int, optional
        Target chunks per worker when deriving (default 1: one chunk per
        worker, embedding's setting; detection passes
        :data:`DETECTION_CHUNKS_PER_WORKER`).
    max_chunk : int, optional
        Upper bound applied to the *derived* size (never to an explicit
        ``chunk_size``); ``None`` leaves the derived size uncapped.

    Returns
    -------
    int
        A chunk size >= 1.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise SchedulerError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    if workers < 1:
        raise SchedulerError(f"workers must be >= 1, got {workers}")
    if chunks_per_worker < 1:
        raise SchedulerError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    size = max(1, -(-n_items // (workers * chunks_per_worker)))
    if max_chunk is not None:
        size = min(size, max_chunk)
    return max(1, size)


def chunk_spans(n_items: int, size: int) -> Iterator[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` spans covering ``range(n_items)`` in order.

    Ordered collection of sharded results relies on the spans being
    contiguous and emitted in input order.
    """
    if size < 1:
        raise SchedulerError(f"chunk size must be >= 1, got {size}")
    for start in range(0, n_items, size):
        yield start, min(start + size, n_items)


def split_chunks(items: Sequence, size: int) -> Iterator[List]:
    """The items of each :func:`chunk_spans` span, as lists, in order."""
    sequence = list(items)
    for start, stop in chunk_spans(len(sequence), size):
        yield sequence[start:stop]


__all__ = [
    "DETECTION_CHUNKS_PER_WORKER",
    "DETECTION_MAX_CHUNK",
    "chunk_spans",
    "derive_chunk_size",
    "split_chunks",
]
