"""Content-addressed data plane: task data by digest, not by value.

The scheduler (PR 8) separated task *metadata* (function names,
fingerprints) from task *code* (registries); this module separates it
from task *data*. A large immutable value — a shared secret, a detector
pair table, a materialised token chunk — is serialised **once** into a
:class:`BlobData` (a pickle-protocol-5 envelope: small metadata bytes
plus zero-copy out-of-band buffers), keyed by its SHA-256 digest, and
referenced from task payloads as a tiny :class:`BlobRef`. Transports
then move the bytes in whatever way is cheapest:

* **in-process** — the :class:`BlobStore` caches the original Python
  object next to its bytes, so the inline execution path resolves a ref
  back to the very object that was put (no serialisation at all);
* **local pool** — the scheduler copies each blob into one
  ``multiprocessing.shared_memory`` segment (:func:`export_shm_blob`)
  and replaces refs with :class:`ShmBlobHandle`\\ s; workers attach and
  reconstruct NumPy buffers **zero-copy** over the mapped segment;
* **remote** — the protocol-v4 wire ships each blob to each worker at
  most once (``blob-request`` / ``blob`` verbs, see
  :mod:`repro.exec.remote` / :mod:`repro.exec.worker`), cached in a
  bounded per-worker store.

The store is an in-process LRU bounded by byte capacity; evicted
entries optionally spill to disk with the run cache's atomic-write
pattern (temp file + ``os.replace``) and are reloaded transparently on
the next ``get``. ``pin``/``unpin`` exempt digests that must survive a
sweep. Everything is gated by the ``FREQYWM_DATAPLANE`` environment
variable: ``inline`` (or ``off``) disables blob-ification entirely and
every scheduler falls back to the historical inline payloads —
byte-identical results either way (``tests/test_dataplane.py``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import BlobError, BlobNotFoundError
from repro.obs.trace import span as trace_span, spans_active

#: Default in-memory byte capacity of a :class:`BlobStore` (256 MiB).
DEFAULT_CAPACITY = 256 * 1024 * 1024

#: Values whose serialised form is smaller than this stay inline: a
#: blob ref saves nothing on a payload that fits in one wire line.
MIN_BLOB_BYTES = 4096

#: Environment variable gating the data plane. ``inline`` / ``off`` /
#: ``0`` force the historical inline-payload path everywhere.
DATAPLANE_ENV = "FREQYWM_DATAPLANE"

#: Upper bound on a single frame read off the wire — a corrupted length
#: prefix must never convince a peer to allocate unbounded memory.
MAX_FRAME_BYTES = 1 << 31


def dataplane_enabled() -> bool:
    """Whether blob-ification is on (checked per call, so tests/CI can flip it).

    ``FREQYWM_DATAPLANE=inline`` (also ``off``/``0``/``false``) disables
    the data plane: payload builders ship values inline exactly as
    protocol v3 did. Any other value — including unset — enables it.
    """
    value = os.environ.get(DATAPLANE_ENV, "auto").strip().lower()
    return value not in {"inline", "off", "0", "false"}


# --------------------------------------------------------------------- #
# Serialised form + digests
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BlobData:
    """One blob's serialised form: pickle metadata + out-of-band buffers.

    ``meta`` is the protocol-5 pickle stream with every large buffer
    (NumPy arrays, bytes) extracted; ``buffers`` holds those raw buffer
    bodies in extraction order. Keeping the two apart is what makes
    zero-copy possible: a transport can place the buffers in shared
    memory (or ship them as binary frames) and reconstruct with
    ``pickle.loads(meta, buffers=...)`` without ever copying them
    through a text encoding.
    """

    meta: bytes
    buffers: Tuple[Union[bytes, memoryview], ...] = ()

    @property
    def size(self) -> int:
        """Total payload bytes (metadata plus every buffer)."""
        return len(self.meta) + sum(len(buffer) for buffer in self.buffers)

    def frames(self) -> List[Union[bytes, memoryview]]:
        """The wire frames for this blob: metadata first, then buffers."""
        return [self.meta, *self.buffers]

    @classmethod
    def from_frames(cls, frames: List[bytes]) -> "BlobData":
        """Rebuild from :meth:`frames` output (first frame is metadata)."""
        if not frames:
            raise BlobError("a blob needs at least a metadata frame")
        return cls(meta=bytes(frames[0]), buffers=tuple(frames[1:]))


def dumps_oob(value: Any) -> BlobData:
    """Serialise ``value`` with protocol-5 out-of-band buffer extraction."""
    buffers: List[memoryview] = []

    def grab(buffer: pickle.PickleBuffer) -> bool:
        view = buffer.raw()
        buffers.append(view.toreadonly() if not view.readonly else view)
        return False  # keep the body out of the metadata stream

    meta = pickle.dumps(value, protocol=5, buffer_callback=grab)
    return BlobData(meta=meta, buffers=tuple(buffers))


def loads_oob(data: BlobData) -> Any:
    """Invert :func:`dumps_oob` (zero-copy where the buffers allow it)."""
    return pickle.loads(data.meta, buffers=[memoryview(b) for b in data.buffers])


def blob_digest(data: BlobData) -> str:
    """SHA-256 digest over the length-prefixed metadata and buffers."""
    digest = hashlib.sha256()
    digest.update(struct.pack("<Q", len(data.meta)))
    digest.update(data.meta)
    for buffer in data.buffers:
        digest.update(struct.pack("<Q", len(buffer)))
        digest.update(buffer)
    return digest.hexdigest()


@dataclass(frozen=True)
class BlobRef:
    """A by-digest reference embedded in task payloads instead of a value."""

    digest: str

    def __post_init__(self) -> None:
        if len(self.digest) != 64:
            raise BlobError(f"blob digest must be 64 hex chars, got {self.digest!r}")


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #

_NO_VALUE = object()


@dataclass
class _Entry:
    """One resident blob: its bytes, size, and (optionally) the live object."""

    data: BlobData
    size: int
    value: Any = _NO_VALUE


class BlobStore:
    """Content-addressed blob cache: byte-capacity LRU with optional spill.

    Thread-safe. ``put`` computes (or verifies) the SHA-256 digest of
    the serialised form; ``get`` returns the bytes, ``get_object`` the
    deserialised value — preferring the cached original object so the
    in-process resolution path costs nothing. When ``spill_dir`` is
    given, LRU evictions write the blob to ``<digest>.blob`` with the
    run cache's atomic pattern (temp file + ``os.replace``) and a later
    ``get`` reloads it transparently; without it, an evicted digest
    raises :class:`~repro.exceptions.BlobNotFoundError`.

    Parameters
    ----------
    capacity : int, optional
        In-memory byte budget (default 256 MiB). A single blob larger
        than the budget is still admitted (it would otherwise be
        unusable); everything else is evicted around it.
    spill_dir : path-like, optional
        Directory for evicted blobs; created on first use.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        spill_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise BlobError(f"blob store capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        self._bytes = 0
        self.puts = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spills = 0
        self.spill_loads = 0

    # -- write side ---------------------------------------------------- #

    def put(self, data: BlobData, *, value: Any = _NO_VALUE) -> str:
        """Insert serialised ``data``; returns its digest (idempotent)."""
        if not spans_active():
            return self._put(data, value)
        with trace_span("blob.put", attributes={"bytes": data.size}):
            return self._put(data, value)

    def _put(self, data: BlobData, value: Any) -> str:
        """The :meth:`put` body (span-wrapped by the public method)."""
        digest = blob_digest(data)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                if entry.value is _NO_VALUE and value is not _NO_VALUE:
                    entry.value = value
                return digest
            self.puts += 1
            self._entries[digest] = _Entry(data=data, size=data.size, value=value)
            self._bytes += data.size
            self._shrink(keep=digest)
        return digest

    def put_object(self, value: Any) -> BlobRef:
        """Serialise and insert ``value``; returns its :class:`BlobRef`."""
        data = dumps_oob(value)
        return BlobRef(self.put(data, value=value))

    def pin(self, digest: str) -> None:
        """Exempt ``digest`` from eviction until :meth:`unpin` (counted)."""
        with self._lock:
            if digest not in self._entries and not self._spill_path(digest).exists():
                raise BlobNotFoundError(
                    f"cannot pin unknown blob {digest[:12]}…", digest=digest
                )
            self._pins[digest] = self._pins.get(digest, 0) + 1

    def unpin(self, digest: str) -> None:
        """Drop one pin on ``digest`` (no-op for unpinned digests)."""
        with self._lock:
            count = self._pins.get(digest, 0) - 1
            if count > 0:
                self._pins[digest] = count
            else:
                self._pins.pop(digest, None)

    # -- read side ----------------------------------------------------- #

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def size_of(self, digest: str) -> int:
        """Resident size of ``digest`` in bytes (0 when not in memory)."""
        with self._lock:
            entry = self._entries.get(digest)
            return entry.size if entry is not None else 0

    def get(self, digest: str) -> BlobData:
        """The serialised blob for ``digest`` (memory first, then spill)."""
        if not spans_active():
            return self._get(digest)
        with trace_span("blob.get", attributes={"digest": digest[:12]}):
            return self._get(digest)

    def _get(self, digest: str) -> BlobData:
        """The :meth:`get` body (span-wrapped by the public method)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
                return entry.data
            self.misses += 1
        data = self._load_spilled(digest)
        if data is None:
            raise BlobNotFoundError(
                f"blob {digest[:12]}… is not in this store "
                "(evicted without a spill directory, or never put)",
                digest=digest,
            )
        with self._lock:
            self.spill_loads += 1
            if digest not in self._entries:
                self._entries[digest] = _Entry(data=data, size=data.size)
                self._bytes += data.size
                self._shrink(keep=digest)
        return data

    def get_object(self, digest: str) -> Any:
        """The live value for ``digest`` — the original object when cached."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None and entry.value is not _NO_VALUE:
                self._entries.move_to_end(digest)
                self.hits += 1
                return entry.value
        data = self.get(digest)
        value = loads_oob(data)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None and entry.value is _NO_VALUE:
                entry.value = value
        return value

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (puts/hits/misses/evictions/spills and bytes)."""
        with self._lock:
            return {
                "blobs": len(self._entries),
                "bytes": self._bytes,
                "puts": self.puts,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "spills": self.spills,
                "spill_loads": self.spill_loads,
            }

    def clear(self) -> None:
        """Drop every in-memory entry and pin (spill files are kept)."""
        with self._lock:
            self._entries.clear()
            self._pins.clear()
            self._bytes = 0

    # -- internals ----------------------------------------------------- #

    def _shrink(self, *, keep: str) -> None:
        """Evict LRU unpinned entries (except ``keep``) down to capacity."""
        while self._bytes > self.capacity:
            victim = next(
                (
                    digest
                    for digest in self._entries
                    if digest != keep and digest not in self._pins
                ),
                None,
            )
            if victim is None:
                return  # everything left is pinned or the fresh entry
            entry = self._entries.pop(victim)
            self._bytes -= entry.size
            self.evictions += 1
            if self.spill_dir is not None:
                self._spill(victim, entry.data)

    def _spill_path(self, digest: str) -> Path:
        if self.spill_dir is None:
            return Path(os.devnull)
        return self.spill_dir / f"{digest}.blob"

    def _spill(self, digest: str, data: BlobData) -> None:
        """Write an evicted blob to disk atomically (temp + ``os.replace``)."""
        assert self.spill_dir is not None
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_path(digest)
        if path.exists():
            return
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(struct.pack("<Q", len(data.meta)))
            handle.write(data.meta)
            handle.write(struct.pack("<Q", len(data.buffers)))
            for buffer in data.buffers:
                handle.write(struct.pack("<Q", len(buffer)))
                handle.write(buffer)
        os.replace(temp, path)
        self.spills += 1

    def _load_spilled(self, digest: str) -> Optional[BlobData]:
        """Read a spilled blob back, verifying its digest."""
        if self.spill_dir is None:
            return None
        path = self._spill_path(digest)
        if not path.exists():
            return None
        with open(path, "rb") as handle:
            raw = handle.read()
        try:
            offset = 8
            (meta_len,) = struct.unpack_from("<Q", raw, 0)
            meta = raw[offset:offset + meta_len]
            offset += meta_len
            (count,) = struct.unpack_from("<Q", raw, offset)
            offset += 8
            buffers = []
            for _ in range(count):
                (length,) = struct.unpack_from("<Q", raw, offset)
                offset += 8
                buffers.append(raw[offset:offset + length])
                offset += length
        except struct.error as error:
            raise BlobError(f"spilled blob {path} is truncated: {error}") from error
        data = BlobData(meta=bytes(meta), buffers=tuple(buffers))
        if blob_digest(data) != digest:
            raise BlobError(f"spilled blob {path} fails its digest check")
        return data


# --------------------------------------------------------------------- #
# Process-wide default store
# --------------------------------------------------------------------- #

_DEFAULT_STORE: Optional[BlobStore] = None
_DEFAULT_LOCK = threading.Lock()


def default_blob_store() -> BlobStore:
    """The process-wide store payload builders and schedulers share.

    The store is registered (weakly) as the metrics registry's
    ``blobs`` view on creation, so telemetry snapshots carry its
    put/hit/eviction/spill counters alongside the scheduler's.
    """
    global _DEFAULT_STORE
    with _DEFAULT_LOCK:
        if _DEFAULT_STORE is None:
            from repro.obs.metrics import registry as metrics_registry

            _DEFAULT_STORE = BlobStore()
            metrics_registry().register_view(
                "blobs", _DEFAULT_STORE, lambda store: store.stats()
            )
        return _DEFAULT_STORE


def set_default_blob_store(store: Optional[BlobStore]) -> Optional[BlobStore]:
    """Swap the default store (tests); returns the previous one."""
    global _DEFAULT_STORE
    with _DEFAULT_LOCK:
        previous = _DEFAULT_STORE
        _DEFAULT_STORE = store
        return previous


def maybe_blob(
    value: Any,
    *,
    min_bytes: int = MIN_BLOB_BYTES,
    store: Optional[BlobStore] = None,
) -> Tuple[Any, Tuple[str, ...]]:
    """Blob-ify ``value`` when it is worth it.

    Returns ``(replacement, digests)``: a :class:`BlobRef` plus its
    one-element digest tuple when the serialised form reaches
    ``min_bytes``, or the untouched value and an empty tuple otherwise.
    This is the single call payload builders make, so the "is the data
    plane on, is this value big enough" policy lives in one place.
    """
    data = dumps_oob(value)
    if data.size < min_bytes:
        return value, ()
    target = store if store is not None else default_blob_store()
    digest = target.put(data, value=value)
    return BlobRef(digest), (digest,)


# --------------------------------------------------------------------- #
# Ref substitution in payload structures
# --------------------------------------------------------------------- #

_UNCHANGED = object()


def _transform(obj: Any, replace: Callable[[Any], Any], depth: int) -> Any:
    """Rebuild ``obj`` with ``replace`` applied; containers only, bounded.

    ``replace`` returns ``_UNCHANGED`` to leave a node alone. Container
    copies happen only on an actual change, so ref-free payloads pass
    through untouched (same object, no copying).
    """
    replacement = replace(obj)
    if replacement is not _UNCHANGED:
        return replacement
    if depth <= 0:
        return obj
    if type(obj) is tuple:
        items = [_transform(item, replace, depth - 1) for item in obj]
        if all(new is old for new, old in zip(items, obj)):
            return obj
        return tuple(items)
    if type(obj) is list:
        items = [_transform(item, replace, depth - 1) for item in obj]
        if all(new is old for new, old in zip(items, obj)):
            return obj
        return items
    if type(obj) is dict:
        values = {key: _transform(item, replace, depth - 1) for key, item in obj.items()}
        if all(values[key] is obj[key] for key in obj):
            return obj
        return values
    return obj


def rewrite_refs(obj: Any, mapping: Dict[str, Any], *, depth: int = 6) -> Any:
    """Replace every :class:`BlobRef` whose digest is in ``mapping``."""

    def replace(node: Any) -> Any:
        if isinstance(node, BlobRef) and node.digest in mapping:
            return mapping[node.digest]
        return _UNCHANGED

    return _transform(obj, replace, depth)


def resolve_refs(
    obj: Any,
    fetch: Optional[Callable[[str], Any]] = None,
    *,
    depth: int = 6,
) -> Any:
    """Materialise every :class:`BlobRef` / :class:`ShmBlobHandle` in ``obj``.

    ``fetch(digest)`` supplies ref values (default: the process-wide
    store's ``get_object``); shared-memory handles load themselves.
    Structures without refs come back unchanged — the same object.
    """
    lookup = fetch if fetch is not None else default_blob_store().get_object

    def replace(node: Any) -> Any:
        if isinstance(node, BlobRef):
            return lookup(node.digest)
        if isinstance(node, ShmBlobHandle):
            return node.load()
        return _UNCHANGED

    return _transform(obj, replace, depth)


def collect_refs(obj: Any, *, depth: int = 6) -> Tuple[str, ...]:
    """Every distinct :class:`BlobRef` digest in ``obj``, in first-seen order."""
    seen: Dict[str, None] = {}

    def replace(node: Any) -> Any:
        if isinstance(node, BlobRef):
            seen.setdefault(node.digest)
        return _UNCHANGED

    _transform(obj, replace, depth)
    return tuple(seen)


# --------------------------------------------------------------------- #
# Shared-memory transport (local pool)
# --------------------------------------------------------------------- #


def _attach_segment(name: str):
    """Attach to a shared-memory segment without claiming ownership.

    Python 3.13 grew ``track=False`` for attach-only opens. On older
    versions a plain attach re-registers the name with the family's
    shared ``resource_tracker`` — harmless, because the tracker's cache
    is a set (pool children inherit the parent's tracker, so the
    exporter's eventual ``unlink`` still balances the books), and safer
    than the unregister dance, which double-unregisters against the
    owner and makes the tracker warn.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class ShmBlobHandle:
    """A blob parked in a shared-memory segment, addressable by name.

    The local scheduler substitutes these for :class:`BlobRef`\\ s before
    pickling a spec to its pool: the pickled handle is a few dozen
    bytes, and the worker-side :meth:`load` attaches the segment and
    reconstructs the value with its NumPy buffers mapping the segment
    directly — zero copies of the array bodies. Workers must treat
    loaded values as immutable (the buffers are read-only views).
    """

    digest: str
    name: str
    meta_len: int
    buffer_lens: Tuple[int, ...]

    def load(self) -> Any:
        """Attach (cached) and deserialise this blob zero-copy."""
        return _load_shm_value(self)


#: Worker-side caches: attached segments by name, loaded values by
#: segment name (LRU-capped — values keep their segment mapped).
_ATTACHED: Dict[str, Any] = {}
_LOADED: "OrderedDict[str, Any]" = OrderedDict()
_LOADED_CAP = 32
_ATTACH_LOCK = threading.Lock()


def _load_shm_value(handle: ShmBlobHandle) -> Any:
    """Worker-side: segment -> value, cached per segment name."""
    with _ATTACH_LOCK:
        if handle.name in _LOADED:
            _LOADED.move_to_end(handle.name)
            return _LOADED[handle.name]
        segment = _ATTACHED.get(handle.name)
        if segment is None:
            try:
                segment = _attach_segment(handle.name)
            except FileNotFoundError as error:
                raise BlobNotFoundError(
                    f"shared-memory segment {handle.name} for blob "
                    f"{handle.digest[:12]}… is gone (released early?)",
                    digest=handle.digest,
                ) from error
            _ATTACHED[handle.name] = segment
        view = segment.buf
        meta = bytes(view[: handle.meta_len])
        buffers = []
        offset = handle.meta_len
        for length in handle.buffer_lens:
            buffers.append(view[offset:offset + length])
            offset += length
        value = pickle.loads(meta, buffers=buffers)
        _LOADED[handle.name] = value
        while len(_LOADED) > _LOADED_CAP:
            stale_name, _ = _LOADED.popitem(last=False)
            stale = _ATTACHED.pop(stale_name, None)
            if stale is not None:
                try:
                    stale.close()
                except BufferError:  # a live value still maps it: keep it
                    _ATTACHED[stale_name] = stale
        return value


def export_shm_blob(digest: str, data: BlobData) -> Tuple[ShmBlobHandle, Any]:
    """Copy ``data`` into a fresh shared-memory segment.

    Returns the worker-facing :class:`ShmBlobHandle` and the owning
    ``SharedMemory`` object — the caller is responsible for ``close()``
    and ``unlink()`` when the last referencing task completes (the local
    scheduler refcounts this). Raises ``OSError`` where shared memory
    is unavailable; callers fall back to inline payloads.
    """
    from multiprocessing import shared_memory

    total = max(1, data.size)
    segment = shared_memory.SharedMemory(create=True, size=total)
    view = segment.buf
    offset = 0
    view[: len(data.meta)] = data.meta
    offset += len(data.meta)
    for buffer in data.buffers:
        view[offset:offset + len(buffer)] = buffer
        offset += len(buffer)
    handle = ShmBlobHandle(
        digest=digest,
        name=segment.name,
        meta_len=len(data.meta),
        buffer_lens=tuple(len(buffer) for buffer in data.buffers),
    )
    return handle, segment


__all__ = [
    "DATAPLANE_ENV",
    "DEFAULT_CAPACITY",
    "MAX_FRAME_BYTES",
    "MIN_BLOB_BYTES",
    "BlobData",
    "BlobRef",
    "BlobStore",
    "ShmBlobHandle",
    "blob_digest",
    "collect_refs",
    "dataplane_enabled",
    "default_blob_store",
    "dumps_oob",
    "export_shm_blob",
    "loads_oob",
    "maybe_blob",
    "resolve_refs",
    "rewrite_refs",
    "set_default_blob_store",
]
