"""Pluggable task scheduler: one execution API behind every pool.

Before this module, three call sites hand-rolled the same
``multiprocessing.Pool`` dance —
:class:`~repro.core.sharding.ShardedDetectionPool`,
:class:`~repro.core.embedding.ShardedEmbeddingPool` and the experiment
executor each owned its own worker lifecycle, chunk math and
spawn-failure fallback. They are now thin clients of one abstraction:

* a **task** is a :class:`TaskSpec` — a registered *function name*, a
  picklable payload, a fingerprint for error reporting/retry, and an
  optional named *initializer* whose product (a detector, a generator)
  is cached worker-locally under ``init_key`` so expensive per-worker
  state is built once and reused across tasks and batches;
* a **scheduler** takes a list of tasks and returns their results **in
  submission order**, whatever completion order the workers produce;
* :class:`LocalScheduler` reproduces the historical in-machine behavior
  bit-for-bit — ``workers=1`` (or a single task) never spawns anything,
  a pool that cannot start falls back in-process with the caller's own
  warning, and a worker killed mid-task is retried a bounded number of
  times before surfacing as
  :class:`~repro.exceptions.WorkerCrashError`;
* :class:`~repro.exec.remote.RemoteScheduler` dispatches the very same
  tasks over the JSON-lines wire to ``freqywm worker`` processes — same
  API, same ordering, same typed crash error.

Functions and initializers are registered *by name* (module import
registers them; :func:`load_builtin_tasks` covers spawn-fresh
processes), so a task travels as strings + payload and never pickles
code. ``tests/test_scheduler.py`` pins the fault paths; the cross-
scheduler report parity lives in ``tests/test_scheduler_experiment.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SchedulerError, WorkerCrashError
from repro.exec.blobs import (
    dataplane_enabled,
    default_blob_store,
    export_shm_blob,
    resolve_refs,
    rewrite_refs,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import registry as metrics_registry
from repro.obs.profile import maybe_profile
from repro.obs.trace import (
    current_context,
    profile_active,
    span as trace_span,
    spans_active,
    tracer,
)

logger = get_logger(__name__)

#: How many distinct initializer products one worker keeps alive. Small:
#: states are detectors/generators holding derived moduli, and a worker
#: serving a sweep rarely alternates between more than a few secrets.
DEFAULT_STATE_CACHE = 8


# --------------------------------------------------------------------- #
# Task + registries
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work.

    Attributes
    ----------
    fingerprint:
        Stable identifier for this task, carried into
        :class:`~repro.exceptions.WorkerCrashError` and the remote wire
        so lost work is attributable and resubmittable. Content-hash
        fingerprints (the experiment cache's) are ideal; any unique
        string works.
    function:
        Registered task-function name (:func:`register_task_function`).
        The function is called as ``function(state, payload)`` where
        ``state`` is the initializer product (``None`` without one).
    payload:
        Picklable argument object for the function.
    initializer:
        Optional registered initializer name
        (:func:`register_initializer`) building the worker-local state.
    init_key:
        Cache key for the initializer product. Tasks sharing an
        ``init_key`` share one state per worker — the detector built for
        chunk 0 serves chunk 40. Must uniquely describe ``init_args``
        (a fingerprint of them), or workers would serve stale state.
    init_args:
        Picklable positional arguments for the initializer.
    blob_refs:
        Digests of every :class:`~repro.exec.blobs.BlobRef` embedded in
        ``payload``/``init_args``. Declaring them up front lets a
        scheduler plan transport — export shared-memory segments, ship
        blobs to remote workers once — without walking payloads. Empty
        for fully-inline tasks (the historical shape).
    trace:
        Optional propagated ``(trace_id, parent_span_id)`` pair. When
        set, :func:`run_task` records a span for this task parented
        under the dispatching span *even in a process that never
        enabled telemetry* — the scheduler that stamped the context
        asked for the trace, and the worker ships the span back with
        its result. ``None`` (the default) keeps the task invisible.
    """

    fingerprint: str
    function: str
    payload: Any = None
    initializer: Optional[str] = None
    init_key: str = ""
    init_args: Tuple[Any, ...] = ()
    blob_refs: Tuple[str, ...] = ()
    trace: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not self.function:
            raise SchedulerError("task function name must be non-empty")
        if self.initializer is not None and not self.init_key:
            raise SchedulerError(
                f"task {self.fingerprint!r} names initializer "
                f"{self.initializer!r} but no init_key to cache it under"
            )


_TASK_FUNCTIONS: Dict[str, Callable[[Any, Any], Any]] = {}
_INITIALIZERS: Dict[str, Callable[..., Any]] = {}
_BUILTINS_LOADED = False


def register_task_function(name: str, function: Callable[[Any, Any], Any]) -> None:
    """Register ``function`` under ``name`` for dispatch by TaskSpecs.

    Re-registering the same callable is a no-op; rebinding a name to a
    *different* callable raises — two call sites silently fighting over
    a name would make results depend on import order.
    """
    existing = _TASK_FUNCTIONS.get(name)
    if existing is not None and existing is not function:
        raise SchedulerError(f"task function {name!r} is already registered")
    _TASK_FUNCTIONS[name] = function


def register_initializer(name: str, function: Callable[..., Any]) -> None:
    """Register a named initializer building worker-local state."""
    existing = _INITIALIZERS.get(name)
    if existing is not None and existing is not function:
        raise SchedulerError(f"initializer {name!r} is already registered")
    _INITIALIZERS[name] = function


def load_builtin_tasks() -> None:
    """Import every module that registers built-in task functions.

    Spawn-started workers (and ``freqywm worker`` processes) begin with
    empty registries; importing the registering modules is what fills
    them. Idempotent and cheap after the first call.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.core.batch  # noqa: F401
    import repro.core.embedding  # noqa: F401
    import repro.core.sharding  # noqa: F401
    import repro.experiments.executor  # noqa: F401


def resolve_task_function(name: str) -> Callable[[Any, Any], Any]:
    """Look up a registered task function, loading builtins on a miss."""
    function = _TASK_FUNCTIONS.get(name)
    if function is None:
        load_builtin_tasks()
        function = _TASK_FUNCTIONS.get(name)
    if function is None:
        raise SchedulerError(f"unknown task function {name!r}")
    return function


def resolve_initializer(name: str) -> Callable[..., Any]:
    """Look up a registered initializer, loading builtins on a miss."""
    function = _INITIALIZERS.get(name)
    if function is None:
        load_builtin_tasks()
        function = _INITIALIZERS.get(name)
    if function is None:
        raise SchedulerError(f"unknown initializer {name!r}")
    return function


# --------------------------------------------------------------------- #
# Worker-side execution (runs inside pool workers and `freqywm worker`)
# --------------------------------------------------------------------- #

# Worker-local initializer products, LRU-bounded. Module-level so pool
# workers (which import this module once) and the remote worker server
# share one implementation.
_WORKER_STATE: "OrderedDict[str, Any]" = OrderedDict()
_WORKER_STATE_CAP = DEFAULT_STATE_CACHE


def set_state_cache_size(size: int) -> None:
    """Bound the worker-local state cache (``freqywm worker --max-state``)."""
    global _WORKER_STATE_CAP
    if size < 1:
        raise SchedulerError(f"state cache size must be >= 1, got {size}")
    _WORKER_STATE_CAP = size
    while len(_WORKER_STATE) > _WORKER_STATE_CAP:
        _WORKER_STATE.popitem(last=False)


def _ensure_worker_state(spec: TaskSpec, blob_fetch=None) -> Any:
    """Build-or-fetch the initializer product for ``spec`` (LRU).

    ``init_args`` blob refs are materialised only on a cache miss: tasks
    sharing an ``init_key`` pay the blob fetch once per worker, which is
    exactly the dedup the data plane exists for.
    """
    assert spec.initializer is not None
    state = _WORKER_STATE.get(spec.init_key)
    if state is None and spec.init_key not in _WORKER_STATE:
        init_args = resolve_refs(spec.init_args, blob_fetch)
        state = resolve_initializer(spec.initializer)(*init_args)
        _WORKER_STATE[spec.init_key] = state
        while len(_WORKER_STATE) > _WORKER_STATE_CAP:
            _WORKER_STATE.popitem(last=False)
    else:
        _WORKER_STATE.move_to_end(spec.init_key)
    return state


def _execute_task(spec: TaskSpec, blob_fetch=None) -> Any:
    """The bare task body: resolve function/state/blobs, then call."""
    function = resolve_task_function(spec.function)
    state = (
        _ensure_worker_state(spec, blob_fetch)
        if spec.initializer is not None
        else None
    )
    payload = resolve_refs(spec.payload, blob_fetch)
    return function(state, payload)


def run_task(spec: TaskSpec, *, blob_fetch=None) -> Any:
    """Execute one task in this process (the worker-side entry point).

    Resolves the function and (cached) initializer state, materialises
    any blob references in the payload — ``blob_fetch(digest)`` supplies
    values, defaulting to the process-wide blob store; shared-memory
    handles load themselves — then calls ``function(state, payload)``.
    Used verbatim by pool workers, the remote worker server, and the
    in-process fast path. Ref-free specs take no extra copies: payloads
    pass through untouched.

    When the spec carries a propagated trace context (or span recording
    is enabled locally), the execution is wrapped in a
    ``task:<function>`` span; with the ``profile`` feature on, a slow
    task additionally gets its top cProfile frames attached to that
    span. With telemetry fully off the body runs with zero overhead
    beyond one tuple check.
    """
    if spec.trace is None and not spans_active():
        return _execute_task(spec, blob_fetch)
    with trace_span(
        f"task:{spec.function}",
        parent=spec.trace,
        attributes={"fingerprint": spec.fingerprint},
    ) as task_span:
        with maybe_profile(task_span, profile_active()):
            return _execute_task(spec, blob_fetch)


@dataclass
class _SpanEnvelope:
    """A pool child's result plus the spans it recorded for the parent."""

    value: Any
    spans: Tuple[Dict[str, Any], ...]


def _pool_run(spec: TaskSpec) -> Any:
    """Top-level pool target (picklable by reference).

    A traced spec returns a :class:`_SpanEnvelope` so the child's spans
    travel back on the result channel; the parent's drain loop unwraps
    it and ingests the spans into its own tracer/sink.
    """
    value = run_task(spec)
    if spec.trace is not None:
        recorded = tracer().drain()
        if recorded:
            return _SpanEnvelope(value, tuple(recorded))
    return value


def default_worker_count() -> int:
    """Worker count used when ``workers`` is not given: the visible cores.

    Honours CPU affinity masks (cgroup-limited containers) where the
    platform exposes them; never less than 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


# --------------------------------------------------------------------- #
# Scheduler API
# --------------------------------------------------------------------- #


@dataclass
class SchedulerStats:
    """Data-plane accounting a scheduler accumulates across its runs.

    ``bytes_sent`` counts payload bytes the scheduler actually moved to
    workers (shared-memory segment sizes locally, wire bytes remotely);
    ``bytes_deduped`` counts bytes it *didn't* move because a referenced
    blob was already where it was needed. Their sum approximates what
    the pre-data-plane inline path would have shipped, so
    ``bytes_deduped / (bytes_sent + bytes_deduped)`` reads as the dedup
    ratio. Counters are cumulative; surface them via :meth:`summary`.
    """

    tasks: int = 0
    bytes_sent: int = 0
    bytes_deduped: int = 0
    blobs_sent: int = 0
    blobs_deduped: int = 0
    shm_segments: int = 0

    def summary(self) -> str:
        """One-line human-readable rendering for smoke tools and logs."""
        return (
            f"tasks={self.tasks} bytes_sent={self.bytes_sent} "
            f"bytes_deduped={self.bytes_deduped} blobs_sent={self.blobs_sent} "
            f"blobs_deduped={self.blobs_deduped} "
            f"shm_segments={self.shm_segments}"
        )

    def as_dict(self) -> Dict[str, int]:
        """Every counter as a plain dict (metrics views, telemetry.json)."""
        return {
            "tasks": self.tasks,
            "bytes_sent": self.bytes_sent,
            "bytes_deduped": self.bytes_deduped,
            "blobs_sent": self.blobs_sent,
            "blobs_deduped": self.blobs_deduped,
            "shm_segments": self.shm_segments,
        }


class Scheduler:
    """Protocol every scheduler implements: ordered fan-out of TaskSpecs.

    ``run`` takes tasks, returns results **in submission order**, and
    optionally streams each result to ``on_result(index, value)`` as it
    completes (out of order) — the hook the experiment executor uses to
    cache finished tasks at task granularity, not at batch barriers.
    Implementations surface a worker lost mid-task as
    :class:`~repro.exceptions.WorkerCrashError` after bounded retries.
    """

    #: Effective worker count (schedulers may lower it on fallback).
    workers: int = 1

    @property
    def stats(self) -> SchedulerStats:
        """Cumulative :class:`SchedulerStats` for this scheduler (lazy).

        The stats object is also registered (weakly) as the metrics
        registry's ``scheduler`` view, so ``freqywm stats`` and
        ``telemetry.json`` see the same counters the smoke tools print.
        """
        existing = self.__dict__.get("_stats")
        if existing is None:
            existing = self.__dict__["_stats"] = SchedulerStats()
            metrics_registry().register_view("scheduler", existing)
        return existing

    @property
    def ships_payloads(self) -> bool:
        """Whether payloads cross a process boundary on the way to workers.

        Payload builders consult this before blob-ifying: when execution
        is in-process (``LocalScheduler`` with one worker) a blob ref
        buys nothing and would add a serialisation round-trip, so large
        values stay inline exactly as before the data plane existed.
        """
        return False

    def run(
        self,
        tasks: Sequence[TaskSpec],
        *,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Execute ``tasks``; result ``i`` corresponds to ``tasks[i]``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Scheduler":
        """Context-manager entry: the scheduler itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release workers."""
        self.close()


@dataclass
class _Submission:
    """Book-keeping for one task's in-flight pool handles."""

    spec: TaskSpec
    attempts: int = 1
    handles: List[Any] = field(default_factory=list)


class _ShmExporter:
    """Parks each referenced blob in one shared-memory segment, refcounted.

    One segment per distinct digest per ``run`` call, however many tasks
    reference it — that is the local dedup. Each task holds a refcount
    on its digests from :meth:`prepare` until :meth:`release` (task
    completed); the segment is unlinked when its count hits zero, and
    :meth:`close` (always reached, crash paths included) unlinks
    whatever is left. Retried tasks are never released early: a task's
    refs drop only when its result actually landed, so resubmitted specs
    always find their segments alive.
    """

    def __init__(self, store, stats: SchedulerStats) -> None:
        self._store = store
        self._stats = stats
        self._segments: Dict[str, Tuple[Any, Any, int]] = {}
        self._counts: Dict[str, int] = {}
        self._task_refs: Dict[int, Tuple[str, ...]] = {}

    def prepare(self, index: int, spec: TaskSpec) -> TaskSpec:
        """Rewrite ``spec``'s blob refs to shared-memory handles.

        Raises ``OSError`` when a segment cannot be created (no
        ``/dev/shm``); the caller falls back to inline payloads.
        """
        mapping: Dict[str, Any] = {}
        for digest in spec.blob_refs:
            entry = self._segments.get(digest)
            if entry is None:
                data = self._store.get(digest)
                with trace_span(
                    "blob.ship",
                    attributes={"transport": "shm", "bytes": data.size},
                ):
                    handle, segment = export_shm_blob(digest, data)
                entry = (handle, segment, data.size)
                self._segments[digest] = entry
                self._counts[digest] = 0
                self._stats.bytes_sent += data.size
                self._stats.blobs_sent += 1
                self._stats.shm_segments += 1
            else:
                self._stats.bytes_deduped += entry[2]
                self._stats.blobs_deduped += 1
            mapping[digest] = entry[0]
            self._counts[digest] += 1
        self._task_refs[index] = tuple(mapping)
        return replace(
            spec,
            payload=rewrite_refs(spec.payload, mapping),
            init_args=rewrite_refs(spec.init_args, mapping),
            blob_refs=(),
        )

    def release(self, index: int) -> None:
        """Drop the completed task's refs; unlink segments at zero."""
        for digest in self._task_refs.pop(index, ()):
            count = self._counts.get(digest, 0) - 1
            if count > 0:
                self._counts[digest] = count
            else:
                self._counts.pop(digest, None)
                self._unlink(digest)

    def close(self) -> None:
        """Unlink every remaining segment (idempotent; crash-safe path)."""
        self._task_refs.clear()
        self._counts.clear()
        for digest in list(self._segments):
            self._unlink(digest)

    def _unlink(self, digest: str) -> None:
        entry = self._segments.pop(digest, None)
        if entry is None:
            return
        _, segment, _ = entry
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class LocalScheduler(Scheduler):
    """In-machine scheduler over a ``multiprocessing`` pool.

    Preserves the historical pool contracts the sharding layers exposed:

    * ``workers=1`` — or a single submitted task — executes inline in
      the calling process; no worker is ever spawned;
    * a pool that cannot start (restricted sandboxes: no ``/dev/shm``,
      seccomp'd fork) degrades to inline execution *loudly*, via the
      ``on_spawn_failure`` hook so each call site keeps its established
      log/warning wording, and ``workers`` drops to 1;
    * a worker killed mid-task is detected (the pool auto-replaces the
      process but its in-flight task is lost), the lost tasks are
      resubmitted up to ``max_retries`` times, and persistent crashers
      surface as :class:`~repro.exceptions.WorkerCrashError` carrying
      the task fingerprint;
    * results always come back in submission order.

    Parameters
    ----------
    workers : int, optional
        Worker process count; ``None`` uses :func:`default_worker_count`.
    start_method : str, optional
        ``multiprocessing`` start method; ``None`` = platform default.
    size_to_batch : bool, optional
        When True the pool is created per ``run`` call sized
        ``min(workers, len(tasks))`` and closed afterwards (the
        experiment executor's per-level behavior); when False (default)
        one persistent ``workers``-sized pool serves every run.
    on_spawn_failure : callable, optional
        ``hook(error)`` invoked when the pool cannot start, before the
        inline fallback; defaults to a generic logged warning plus
        ``RuntimeWarning``.
    max_retries : int, optional
        Crash-of-worker resubmissions per task (default 1: retried
        exactly once, then raised).
    crash_grace : float, optional
        Seconds to let straggler results land after a crash before
        declaring still-unfinished tasks lost.
    inline_state : dict, optional
        Prebuilt initializer products keyed by ``init_key`` for the
        inline path — how a pool's existing local detector is reused
        instead of rebuilt.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        size_to_batch: bool = False,
        on_spawn_failure: Optional[Callable[[BaseException], None]] = None,
        max_retries: int = 1,
        crash_grace: float = 0.5,
        inline_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SchedulerError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise SchedulerError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers if workers is not None else default_worker_count()
        self.start_method = start_method
        self.size_to_batch = size_to_batch
        self.on_spawn_failure = on_spawn_failure
        self.max_retries = max_retries
        self.crash_grace = crash_grace
        self.inline_state: Dict[str, Any] = dict(inline_state or {})
        self._pool = None
        self._poll_interval = 0.005

    @property
    def ships_payloads(self) -> bool:
        """True once a pool is in play: payloads get pickled to children."""
        return self.workers > 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down the worker processes (idempotent; pool recreates lazily)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _spawn_pool(self, processes: int):
        """Create a pool or fall back: hook fires, ``workers`` drops to 1."""
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        try:
            if dataplane_enabled():
                # Start the resource tracker *before* forking so workers
                # inherit it: an attach in a worker then re-registers a
                # segment with the shared tracker (a set, so a no-op)
                # instead of spawning a private tracker that would
                # miscount the parent's unlink as a leak at shutdown.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            return context.Pool(processes=processes)
        except (OSError, ValueError, RuntimeError, PermissionError) as error:
            if self.on_spawn_failure is not None:
                self.on_spawn_failure(error)
            else:
                logger.warning(
                    "cannot start scheduler workers (%s: %s); "
                    "falling back to in-process execution",
                    type(error).__name__,
                    error,
                )
                warnings.warn(
                    f"cannot start scheduler workers ({error}); "
                    "falling back to in-process execution",
                    RuntimeWarning,
                    stacklevel=4,
                )
            self.workers = 1
            return None

    def _ensure_pool(self):
        """The persistent pool, created lazily; None when unavailable."""
        if self._pool is None:
            self._pool = self._spawn_pool(self.workers)
        return self._pool

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        tasks: Sequence[TaskSpec],
        *,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Execute ``tasks``, inline or sharded, results in submission order."""
        specs = list(tasks)
        if not specs:
            return []
        self.stats.tasks += len(specs)
        with trace_span(
            "scheduler.run",
            attributes={"scheduler": "local", "tasks": len(specs)},
        ) as run_span:
            context = run_span.context
            if context is not None:
                specs = [
                    replace(spec, trace=context) if spec.trace is None else spec
                    for spec in specs
                ]
            if self.workers > 1 and len(specs) > 1:
                if self.size_to_batch:
                    pool = self._spawn_pool(min(self.workers, len(specs)))
                    if pool is not None:
                        with pool:
                            return self._run_pool(pool, specs, on_result)
                else:
                    pool = self._ensure_pool()
                    if pool is not None:
                        return self._run_pool(pool, specs, on_result)
            return self._run_inline(specs, on_result)

    def _run_inline(
        self,
        specs: List[TaskSpec],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> List[Any]:
        """Execute every task in this process, reusing ``inline_state``.

        Blob refs resolve against the process-wide store, whose value
        cache returns the *original* objects — so a builder that
        blob-ified for a pool that then fell back inline still runs with
        zero extra copies.
        """
        results: List[Any] = []
        for index, spec in enumerate(specs):
            function = resolve_task_function(spec.function)
            state = None
            if spec.initializer is not None:
                state = self.inline_state.get(spec.init_key)
                if state is None and spec.init_key not in self.inline_state:
                    init_args = resolve_refs(spec.init_args)
                    state = resolve_initializer(spec.initializer)(*init_args)
                    self.inline_state[spec.init_key] = state
            with trace_span(
                f"task:{spec.function}",
                parent=spec.trace,
                attributes={"fingerprint": spec.fingerprint},
            ) as task_span:
                with maybe_profile(task_span, profile_active()):
                    value = function(state, resolve_refs(spec.payload))
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results

    @staticmethod
    def _pool_pids(pool) -> Optional[frozenset]:
        """Live worker pids, or None when the pool does not expose them.

        ``Pool._pool`` is stdlib-private but stable across supported
        Pythons; when a future version hides it, crash detection
        degrades to "hung forever" rather than misfiring — hence the
        defensive None.
        """
        processes = getattr(pool, "_pool", None)
        if processes is None:
            return None
        try:
            return frozenset(proc.pid for proc in processes)
        except (AttributeError, TypeError):  # pragma: no cover - defensive
            return None

    def _run_pool(
        self,
        pool,
        specs: List[TaskSpec],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> List[Any]:
        """Drain ``specs`` through ``pool`` with crash detection + retry.

        Tasks are submitted individually (``apply_async``) so a lost
        worker costs only its in-flight tasks. The pool replaces a
        killed process by itself but silently drops what it was running;
        the drain loop watches the worker pid-set, and on a change waits
        ``crash_grace`` for stragglers, then resubmits every unfinished
        task. Duplicate completions are harmless — scheduler tasks are
        pure by contract (the first result wins). A task that out-lives
        ``max_retries`` resubmissions raises
        :class:`~repro.exceptions.WorkerCrashError` with its
        fingerprint.

        Specs carrying blob refs go through the shared-memory exporter
        first: each distinct blob becomes one segment shared by every
        referencing task, released (and unlinked) as tasks complete,
        with the remainder torn down in the ``finally`` whatever path —
        crash, task exception, retry exhaustion — exits this method.
        """
        exporter, prepared = self._prepare_pool_specs(specs)
        try:
            return self._drain_pool(pool, prepared, on_result, exporter)
        finally:
            if exporter is not None:
                exporter.close()

    def _prepare_pool_specs(
        self, specs: List[TaskSpec]
    ) -> Tuple[Optional[_ShmExporter], List[TaskSpec]]:
        """Swap blob refs for shm handles (or inline values on fallback)."""
        if not any(spec.blob_refs for spec in specs):
            return None, specs
        if dataplane_enabled():
            exporter = _ShmExporter(default_blob_store(), self.stats)
            prepared: List[TaskSpec] = []
            try:
                for index, spec in enumerate(specs):
                    prepared.append(
                        exporter.prepare(index, spec) if spec.blob_refs else spec
                    )
                return exporter, prepared
            except OSError as error:
                logger.warning(
                    "shared-memory export unavailable (%s: %s); "
                    "shipping payloads inline",
                    type(error).__name__,
                    error,
                )
                exporter.close()
        return None, [self._resolve_spec(spec) for spec in specs]

    @staticmethod
    def _resolve_spec(spec: TaskSpec) -> TaskSpec:
        """Materialise a spec's blob refs back into inline values."""
        if not spec.blob_refs:
            return spec
        return replace(
            spec,
            payload=resolve_refs(spec.payload),
            init_args=resolve_refs(spec.init_args),
            blob_refs=(),
        )

    def _drain_pool(
        self,
        pool,
        specs: List[TaskSpec],
        on_result: Optional[Callable[[int, Any], None]],
        exporter: Optional[_ShmExporter],
    ) -> List[Any]:
        """The submission/harvest/crash-retry loop behind :meth:`_run_pool`."""
        submissions = [_Submission(spec) for spec in specs]
        for submission in submissions:
            submission.handles.append(pool.apply_async(_pool_run, (submission.spec,)))
        unfinished = set(range(len(specs)))
        results: List[Any] = [None] * len(specs)
        known_pids = self._pool_pids(pool)

        def collect_ready() -> bool:
            """Harvest every ready handle; True when any result landed."""
            progressed = False
            for index in sorted(unfinished):
                submission = submissions[index]
                ready = next(
                    (handle for handle in submission.handles if handle.ready()), None
                )
                if ready is None:
                    continue
                value = ready.get()  # task exceptions propagate as-is
                if isinstance(value, _SpanEnvelope):
                    tracer().ingest(value.spans)
                    value = value.value
                results[index] = value
                unfinished.discard(index)
                progressed = True
                if exporter is not None:
                    exporter.release(index)
                if on_result is not None:
                    on_result(index, value)
            return progressed

        while unfinished:
            progressed = collect_ready()
            if not unfinished:
                break
            pids = self._pool_pids(pool)
            if pids is not None and known_pids is not None and pids - known_pids:
                # At least one replacement pid appeared: a worker died.
                known_pids = pids
                deadline = time.monotonic() + self.crash_grace
                while unfinished and time.monotonic() < deadline:
                    if collect_ready():
                        deadline = time.monotonic() + self.crash_grace
                    time.sleep(self._poll_interval)
                for index in sorted(unfinished):
                    submission = submissions[index]
                    if submission.attempts > self.max_retries:
                        raise WorkerCrashError(
                            f"worker crashed running task "
                            f"{submission.spec.fingerprint!r} "
                            f"({submission.attempts} attempts, retries "
                            "exhausted)",
                            fingerprint=submission.spec.fingerprint,
                            attempts=submission.attempts,
                        )
                    submission.attempts += 1
                    logger.warning(
                        "worker crash lost task %s; resubmitting (attempt %d)",
                        submission.spec.fingerprint,
                        submission.attempts,
                    )
                    submission.handles.append(
                        pool.apply_async(_pool_run, (submission.spec,))
                    )
            elif pids is not None:
                known_pids = pids
            if not progressed:
                time.sleep(self._poll_interval)
        return results


# --------------------------------------------------------------------- #
# Factory
# --------------------------------------------------------------------- #


def _local_factory(policy, **kwargs) -> Scheduler:
    """Build a :class:`LocalScheduler` from an execution policy."""
    return LocalScheduler(
        policy.workers, start_method=policy.start_method, **kwargs
    )


def _remote_factory(policy, **kwargs) -> Scheduler:
    """Build a :class:`~repro.exec.remote.RemoteScheduler` from a policy."""
    from repro.exec.remote import RemoteScheduler

    kwargs.pop("start_method", None)
    kwargs.pop("size_to_batch", None)
    kwargs.pop("on_spawn_failure", None)
    kwargs.pop("inline_state", None)
    return RemoteScheduler(policy.addresses, **kwargs)


_SCHEDULER_FACTORIES: Dict[str, Callable[..., Scheduler]] = {
    "local": _local_factory,
    "remote": _remote_factory,
}


def register_scheduler(name: str, factory: Callable[..., Scheduler]) -> None:
    """Register a scheduler factory ``factory(policy, **kwargs)`` by name."""
    existing = _SCHEDULER_FACTORIES.get(name)
    if existing is not None and existing is not factory:
        raise SchedulerError(f"scheduler {name!r} is already registered")
    _SCHEDULER_FACTORIES[name] = factory


def create_scheduler(policy, **kwargs) -> Scheduler:
    """Build the scheduler an :class:`~repro.exec.policy.ExecutionPolicy` names.

    Extra keyword arguments go to the factory (the local factory accepts
    every :class:`LocalScheduler` knob; the remote factory silently
    drops the local-only ones so call sites can pass a uniform set).
    """
    factory = _SCHEDULER_FACTORIES.get(policy.scheduler)
    if factory is None:
        raise SchedulerError(
            f"unknown scheduler {policy.scheduler!r} (registered: "
            f"{sorted(_SCHEDULER_FACTORIES)})"
        )
    return factory(policy, **kwargs)


__all__ = [
    "DEFAULT_STATE_CACHE",
    "LocalScheduler",
    "Scheduler",
    "SchedulerStats",
    "TaskSpec",
    "create_scheduler",
    "default_worker_count",
    "load_builtin_tasks",
    "register_initializer",
    "register_scheduler",
    "register_task_function",
    "resolve_initializer",
    "resolve_task_function",
    "run_task",
    "set_state_cache_size",
]
