"""Distributed scheduler leg: tasks over the JSON-lines wire.

:class:`RemoteScheduler` implements the same
:class:`~repro.exec.scheduler.Scheduler` API as the in-machine pool,
but dispatches each :class:`~repro.exec.scheduler.TaskSpec` as one
``task`` line (protocol version 3, :mod:`repro.service.wire`) to a
``freqywm worker`` process reachable by Unix socket or TCP, and reads
one ``result`` line back. The distribution model is deliberately plain:

* one client thread per worker address pulls indices off a shared work
  queue, so a fast worker simply takes more tasks (work stealing by
  construction, no partitioning step);
* while a task runs remotely, the client probes liveness with
  ``__heartbeat__`` task lines — the worker answers them on its event
  loop even mid-task. A connection that stays silent past the heartbeat
  timeout (or drops) marks that worker **dead**: its in-flight
  fingerprint is *not* lost but re-queued, and another worker picks it
  up, up to ``max_retries`` resubmissions before
  :class:`~repro.exceptions.WorkerCrashError` surfaces — the same
  bounded-retry contract as the local scheduler;
* results are gathered **in submission order** regardless of which
  worker answered first.

Task data rides the **v4 data plane** when the worker speaks it: the
client probes each worker's protocol version at connect time, and a v4
worker gets payloads as length-prefixed binary frames after the JSON
header (pickle protocol 5, no base64 tax) with shared values referenced
by digest — the worker ``blob-request``\\ s each digest it has not
cached, once, so a sweep ships a shared secret per *worker*, not per
*task*. A v3 worker (or ``FREQYWM_DATAPLANE=inline``) transparently
gets the historical base64-pickled payloads (:func:`pickle_b64`).
Either way the wire carries exactly what a ``multiprocessing`` pool
would pickle anyway, so the trust model is unchanged — run workers only
on hosts you would run a pool on. ``docs/scheduler.md`` spells this
out.
"""

from __future__ import annotations

import base64
import itertools
import json
import pickle
import socket
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import repro.exceptions as _exceptions
from repro.exceptions import (
    BlobNotFoundError,
    ReproError,
    SchedulerError,
    WorkerCrashError,
)
from repro.exec.blobs import (
    BlobData,
    dataplane_enabled,
    default_blob_store,
    dumps_oob,
    loads_oob,
    resolve_refs,
)
from repro.exec.scheduler import Scheduler, TaskSpec
from repro.obs.trace import span as trace_span, tracer
from repro.service.wire import (
    HEARTBEAT_FUNCTION,
    PROTOCOL_VERSION,
    BlobRequest,
    BlobResponse,
    TaskRequest,
    TaskResult,
    decode_response,
    encode_line,
)

# --------------------------------------------------------------------- #
# Payload codec + spec <-> wire conversion
# --------------------------------------------------------------------- #


def pickle_b64(value: Any) -> str:
    """Pickle ``value`` and encode it as base64 text for the JSON wire."""
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def unpickle_b64(text: str) -> Any:
    """Invert :func:`pickle_b64` (trusted input only — see module doc)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def spec_to_request(spec: TaskSpec, request_id: str) -> TaskRequest:
    """Encode a task spec as one ``task`` wire request."""
    return TaskRequest(
        request_id=request_id,
        function=spec.function,
        payload=pickle_b64(spec.payload),
        initializer=spec.initializer,
        init_key=spec.init_key,
        init_args=pickle_b64(spec.init_args) if spec.init_args else None,
        fingerprint=spec.fingerprint,
        trace=spec.trace,
    )


def spec_from_request(request: TaskRequest) -> TaskSpec:
    """Decode a ``task`` wire request back into a runnable spec."""
    return TaskSpec(
        fingerprint=request.fingerprint or request.request_id,
        function=request.function,
        payload=unpickle_b64(request.payload) if request.payload is not None else None,
        initializer=request.initializer,
        init_key=request.init_key,
        init_args=tuple(unpickle_b64(request.init_args))
        if request.init_args is not None
        else (),
        trace=request.trace,
    )


def parse_address(address: str) -> Tuple[str, Any]:
    """Parse a worker address into ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted forms: ``unix:/path/to.sock``, ``tcp:host:port`` and the
    bare ``host:port`` shorthand.
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise SchedulerError(f"unix address {address!r} is missing a path")
        return "unix", path
    spec = address[len("tcp:"):] if address.startswith("tcp:") else address
    host, separator, port_text = spec.rpartition(":")
    if not separator or not host:
        raise SchedulerError(
            f"worker address {address!r} is not 'unix:PATH', 'tcp:HOST:PORT' "
            "or 'HOST:PORT'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SchedulerError(
            f"worker address {address!r} has a non-integer port"
        ) from None
    if not 0 < port < 65536:
        raise SchedulerError(f"worker address {address!r} port out of range")
    return "tcp", (host, port)


def _remote_error(result: TaskResult) -> ReproError:
    """Rebuild a typed error from a failed ``result`` line.

    The wire carries the exception's *type name* and message, never a
    pickled exception object. Known :mod:`repro.exceptions` types are
    re-raised as themselves so remote failures stay catchable exactly
    like local ones; anything else degrades to ``SchedulerError``.
    """
    error_type = result.error_type or ""
    message = result.error or "remote task failed"
    candidate = getattr(_exceptions, error_type, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, ReproError)
        and candidate is not WorkerCrashError
    ):
        return candidate(message)
    prefix = f"{error_type}: " if error_type else ""
    return SchedulerError(f"remote task {result.fingerprint!r} failed: {prefix}{message}")


class _WorkerDied(Exception):
    """Internal: the connection to one worker is gone (retry elsewhere)."""


class _RetryInline(Exception):
    """Internal: the worker misses a blob the client evicted.

    The task itself never ran — re-queue it with the inline-payload
    flag so the resubmission carries full values, under the same
    bounded-attempt budget as a crash.
    """


class _LineChannel:
    """Blocking JSON-lines channel over one socket, with recv timeouts.

    v4 adds binary frames: :meth:`send_payload` writes a header line
    followed by raw frame bytes, and :meth:`recv_exact` reads a frame
    body announced by a decoded header. Line and frame reads share one
    buffer, so interleaving them never loses stream position.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    def send_line(self, line: str) -> int:
        """Write one line (appending the newline delimiter); bytes sent."""
        data = line.encode("utf-8") + b"\n"
        try:
            self._sock.sendall(data)
        except OSError as error:
            raise _WorkerDied(f"send failed: {error}") from error
        return len(data)

    def send_payload(self, line: str, frames: Sequence[Union[bytes, memoryview]]) -> int:
        """Write a header line plus its binary frames; total bytes sent.

        Frames go out with separate ``sendall`` calls so large NumPy
        buffers are never copied into a joined bytestring first.
        """
        total = self.send_line(line)
        try:
            for frame in frames:
                self._sock.sendall(frame)
                total += len(frame)
        except OSError as error:
            raise _WorkerDied(f"send failed: {error}") from error
        return total

    def recv_exact(self, count: int, timeout: float) -> bytes:
        """Exactly ``count`` frame bytes, or :class:`_WorkerDied`.

        A timeout mid-frame is fatal for the connection (the stream
        position is unrecoverable), unlike :meth:`recv_line`'s soft
        ``None`` — the caller treats the worker as lost.
        """
        deadline = time.monotonic() + timeout
        while len(self._buffer) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerDied(
                    f"worker stalled mid-frame ({len(self._buffer)}/{count} bytes)"
                )
            self._sock.settimeout(remaining)
            try:
                data = self._sock.recv(max(65536, count - len(self._buffer)))
            except (TimeoutError, socket.timeout):
                continue
            except OSError as error:
                raise _WorkerDied(f"recv failed: {error}") from error
            if not data:
                raise _WorkerDied("worker closed the connection mid-frame")
            self._buffer.extend(data)
        frame = bytes(self._buffer[:count])
        del self._buffer[:count]
        return frame

    def recv_line(self, timeout: float) -> Optional[str]:
        """One decoded line, or None when ``timeout`` elapses first."""
        while b"\n" not in self._buffer:
            self._sock.settimeout(timeout)
            try:
                data = self._sock.recv(65536)
            except (TimeoutError, socket.timeout):
                return None
            except OSError as error:
                raise _WorkerDied(f"recv failed: {error}") from error
            if not data:
                raise _WorkerDied("worker closed the connection")
            self._buffer.extend(data)
        line, _, rest = bytes(self._buffer).partition(b"\n")
        self._buffer = bytearray(rest)
        return line.decode("utf-8")

    def close(self) -> None:
        """Close the underlying socket (idempotent, errors swallowed)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class RemoteScheduler(Scheduler):
    """Dispatch fingerprinted tasks to ``freqywm worker`` processes.

    Parameters
    ----------
    addresses : Sequence[str]
        Worker addresses (:func:`parse_address` forms). One client
        thread serves each; ``workers`` equals the address count.
    max_retries : int, optional
        Resubmissions per task after a worker is lost (default 1 —
        retried exactly once, matching the local scheduler).
    heartbeat_interval : float, optional
        Seconds of silence before a liveness probe is sent.
    heartbeat_timeout : float, optional
        Seconds of *total* silence (no result, no probe answer) after
        which a worker is declared dead.
    connect_timeout : float, optional
        Seconds allowed for the initial connection per worker.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        max_retries: int = 1,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        connect_timeout: float = 10.0,
    ) -> None:
        if not addresses:
            raise SchedulerError("RemoteScheduler needs at least one worker address")
        if max_retries < 0:
            raise SchedulerError(f"max_retries must be >= 0, got {max_retries}")
        if heartbeat_timeout <= 0 or heartbeat_interval <= 0:
            raise SchedulerError("heartbeat interval/timeout must be positive")
        self.addresses = tuple(addresses)
        for address in self.addresses:
            parse_address(address)  # fail fast on malformed addresses
        self.workers = len(self.addresses)
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self._channels: Dict[str, _LineChannel] = {}
        self._dead: set = set()
        self._sequence = itertools.count()
        #: Negotiated wire version per address (connect-time probe).
        self._versions: Dict[str, int] = {}
        #: Digests each worker already holds (shipped or announced).
        self._shipped: Dict[str, set] = {}
        self._stats_lock = threading.Lock()
        # Per-run state, guarded by _cond's lock.
        self._cond = threading.Condition()
        self._specs: List[TaskSpec] = []
        self._queue: deque = deque()
        self._attempts: List[int] = []
        self._results: Dict[int, Any] = {}
        self._failure: Optional[BaseException] = None
        self._on_result: Optional[Callable[[int, Any], None]] = None
        #: Task indices forced onto the inline-payload path after a
        #: blob miss (the client evicted a digest a worker asked for).
        self._inline_only: set = set()

    @property
    def ships_payloads(self) -> bool:
        """Always true: every task crosses a socket to another host."""
        return True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop every worker connection (idempotent)."""
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()

    def _connect(self, address: str) -> _LineChannel:
        """The (cached) channel to one worker, connecting on first use."""
        channel = self._channels.get(address)
        if channel is not None:
            return channel
        kind, target = parse_address(address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=self.connect_timeout)
        channel = _LineChannel(sock)
        self._versions[address] = self._negotiate(channel, address)
        self._shipped[address] = set()
        self._channels[address] = channel
        return channel

    def _negotiate(self, channel: _LineChannel, address: str) -> int:
        """Probe the worker's protocol version with a heartbeat line.

        The probe is a v4-stamped heartbeat. A v4 worker answers it OK
        with its own ``v`` stamp; a v3 worker *rejects* the line (it
        speaks a newer version than the worker understands) but still
        preserves the request id and answers a failure stamped ``v: 3``
        — either way, the response's stamp is the worker's ceiling, and
        the channel speaks ``min(theirs, ours)`` from then on. Binary
        frames are never sent before this completes, so an old worker
        never sees bytes it would misparse as lines.
        """
        probe_id = f"hb-probe-{next(self._sequence)}"
        channel.send_line(
            encode_line(
                TaskRequest(request_id=probe_id, function=HEARTBEAT_FUNCTION)
            )
        )
        # A connected-but-silent peer is the heartbeat machinery's case,
        # not the connect path's, so the probe waits at most the
        # heartbeat timeout (a healthy worker answers immediately).
        budget = max(0.1, min(self.connect_timeout, self.heartbeat_timeout))
        deadline = time.monotonic() + budget
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerDied(
                    f"worker {address} did not answer the version probe "
                    f"within {budget:.1f}s"
                )
            line = channel.recv_line(timeout=remaining)
            if line is None:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(payload, dict) or payload.get("id") != probe_id:
                continue
            version = payload.get("v", 1)
            if isinstance(version, bool) or not isinstance(version, int) or version < 1:
                version = 1
            return min(version, PROTOCOL_VERSION)

    def _drop(self, address: str) -> None:
        """Forget a dead worker's connection."""
        channel = self._channels.pop(address, None)
        if channel is not None:
            channel.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        tasks: Sequence[TaskSpec],
        *,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Fan ``tasks`` out to the workers; results in submission order."""
        specs = list(tasks)
        if not specs:
            return []
        self.stats.tasks += len(specs)
        with trace_span(
            "scheduler.run",
            attributes={"scheduler": "remote", "tasks": len(specs)},
        ) as run_span:
            context = run_span.context
            if context is not None:
                specs = [
                    replace(spec, trace=context) if spec.trace is None else spec
                    for spec in specs
                ]
            return self._run_traced(specs, on_result)

    def _run_traced(
        self,
        specs: List[TaskSpec],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> List[Any]:
        """The fan-out body behind :meth:`run` (specs already stamped)."""
        live = [address for address in self.addresses if address not in self._dead]
        if not live:
            raise SchedulerError(
                "no live remote workers left "
                f"(all of {list(self.addresses)} marked dead)"
            )
        with self._cond:
            self._specs = specs
            self._queue = deque(range(len(specs)))
            self._attempts = [1] * len(specs)
            self._results = {}
            self._failure = None
            self._on_result = on_result
            self._inline_only = set()
        threads = [
            threading.Thread(
                target=self._serve, args=(address,), daemon=True,
                name=f"repro-remote-{address}",
            )
            for address in live
        ]
        for thread in threads:
            thread.start()
        with self._cond:
            while not self._finished():
                self._cond.wait(0.05)
            failure = self._failure
        for thread in threads:
            thread.join(timeout=self.heartbeat_timeout + 1.0)
        if failure is not None:
            raise failure
        return [self._results[index] for index in range(len(specs))]

    def _finished(self) -> bool:
        """Run-complete predicate (callers hold the condition's lock)."""
        return self._failure is not None or len(self._results) >= len(self._specs)

    def _serve(self, address: str) -> None:
        """One worker's client loop: pull indices, dispatch, collect."""
        try:
            channel = self._connect(address)
        except (OSError, _WorkerDied) as error:
            self._drop(address)
            self._lose_worker(address, None, f"cannot connect: {error}")
            return
        while True:
            with self._cond:
                while not self._queue and not self._finished():
                    # Idle but the run is live: another worker may still
                    # crash and re-queue its in-flight task, so poll.
                    self._cond.wait(0.05)
                if self._finished():
                    return
                index = self._queue.popleft()
                attempt = self._attempts[index]
            try:
                value = self._execute(channel, address, index, attempt)
            except _RetryInline as error:
                # The worker is healthy; the client side evicted a blob
                # it asked for. Re-queue the task on the inline-payload
                # path under the same bounded-attempt budget a crash
                # gets, and keep serving.
                with self._cond:
                    if self._attempts[index] > self.max_retries:
                        if self._failure is None:
                            spec = self._specs[index]
                            self._failure = WorkerCrashError(
                                f"task {spec.fingerprint!r} lost to a blob "
                                f"miss ({self._attempts[index]} attempts, "
                                f"retries exhausted): {error}",
                                fingerprint=spec.fingerprint,
                                attempts=self._attempts[index],
                            )
                        self._cond.notify_all()
                        return
                    self._attempts[index] += 1
                    self._inline_only.add(index)
                    self._queue.append(index)
                    self._cond.notify_all()
                continue
            except _WorkerDied as error:
                self._drop(address)
                self._lose_worker(address, index, str(error))
                return
            except ReproError as error:
                # The task itself failed remotely: a typed library error,
                # not an infrastructure loss. Propagate, no retry — the
                # same task would fail the same way anywhere.
                with self._cond:
                    if self._failure is None:
                        self._failure = error
                    self._cond.notify_all()
                return
            except Exception as error:  # noqa: BLE001 - must never hang run()
                # A client-side bug (malformed wire line, codec error)
                # must surface as the run's failure, not as a silently
                # dead thread that leaves run() waiting forever.
                with self._cond:
                    if self._failure is None:
                        self._failure = SchedulerError(
                            f"worker client for {address} failed: "
                            f"{type(error).__name__}: {error}"
                        )
                    self._cond.notify_all()
                return
            with self._cond:
                if index not in self._results:
                    self._results[index] = value
                    if self._on_result is not None:
                        self._on_result(index, value)
                self._cond.notify_all()

    def _send_task(
        self, channel: _LineChannel, address: str, index: int, request_id: str
    ) -> None:
        """Ship one task line, framed (v4) or inline base64 (v3/fallback)."""
        spec = self._specs[index]
        version = self._versions.get(address, PROTOCOL_VERSION)
        framed = (
            version >= 4
            and dataplane_enabled()
            and index not in self._inline_only
        )
        if not framed:
            inline = self._inline_spec(spec)
            sent = channel.send_line(
                encode_line(spec_to_request(inline, request_id), version=version)
            )
            with self._stats_lock:
                self.stats.bytes_sent += sent
            return
        payload_data = dumps_oob(spec.payload)
        init_data = dumps_oob(spec.init_args) if spec.init_args else None
        frames: List[Any] = payload_data.frames()
        payload_count = len(frames)
        init_count = 0
        if init_data is not None:
            init_frames = init_data.frames()
            init_count = len(init_frames)
            frames = frames + init_frames
        request = TaskRequest(
            request_id=request_id,
            function=spec.function,
            initializer=spec.initializer,
            init_key=spec.init_key,
            fingerprint=spec.fingerprint,
            blob_refs=spec.blob_refs,
            frames=tuple(len(frame) for frame in frames),
            payload_frames=payload_count,
            init_frames=init_count,
            trace=spec.trace,
        )
        sent = channel.send_payload(encode_line(request), frames)
        store = default_blob_store()
        shipped = self._shipped.setdefault(address, set())
        with self._stats_lock:
            self.stats.bytes_sent += sent
            for digest in spec.blob_refs:
                if digest in shipped:
                    # The worker holds this blob already: the inline wire
                    # would have re-shipped its full serialised size.
                    self.stats.bytes_deduped += store.size_of(digest)
                    self.stats.blobs_deduped += 1

    @staticmethod
    def _inline_spec(spec: TaskSpec) -> TaskSpec:
        """A spec with its blob refs materialised back into values."""
        if not spec.blob_refs:
            return spec
        return replace(
            spec,
            payload=resolve_refs(spec.payload),
            init_args=resolve_refs(spec.init_args),
            blob_refs=(),
        )

    def _answer_blob_request(
        self, channel: _LineChannel, address: str, request: BlobRequest
    ) -> None:
        """Serve a worker's ``blob-request`` from the process-wide store."""
        try:
            data = default_blob_store().get(request.digest)
        except BlobNotFoundError as error:
            channel.send_line(
                encode_line(
                    BlobResponse(
                        request_id=request.request_id,
                        digest=request.digest,
                        ok=False,
                        error=str(error),
                        error_type="BlobNotFoundError",
                    )
                )
            )
            return
        frames = data.frames()
        line = encode_line(
            BlobResponse(
                request_id=request.request_id,
                digest=request.digest,
                ok=True,
                frames=tuple(len(frame) for frame in frames),
            )
        )
        with trace_span(
            "blob.ship", attributes={"transport": "wire", "bytes": data.size}
        ):
            sent = channel.send_payload(line, frames)
        self._shipped.setdefault(address, set()).add(request.digest)
        with self._stats_lock:
            self.stats.bytes_sent += sent
            self.stats.blobs_sent += 1

    def _execute(
        self, channel: _LineChannel, address: str, index: int, attempt: int
    ) -> Any:
        """Send one task and await its result, heartbeating in between.

        Mid-flight the worker may interleave ``blob-request`` lines
        (answered inline from the blob store) and framed results. A
        framed result's frames are consumed *immediately* after its
        header — before the request-id match check — because skipping
        them would desynchronise the byte stream.
        """
        spec = self._specs[index]
        version = self._versions.get(address, PROTOCOL_VERSION)
        request_id = f"task-{index}-{attempt}-{next(self._sequence)}"
        self._send_task(channel, address, index, request_id)
        last_heard = time.monotonic()
        while True:
            line = channel.recv_line(timeout=self.heartbeat_interval)
            now = time.monotonic()
            if line is None:
                if now - last_heard >= self.heartbeat_timeout:
                    raise _WorkerDied(
                        f"worker {address} silent for more than "
                        f"{self.heartbeat_timeout:.1f}s (task "
                        f"{spec.fingerprint!r} in flight)"
                    )
                channel.send_line(
                    encode_line(
                        TaskRequest(
                            request_id=f"hb-{next(self._sequence)}",
                            function=HEARTBEAT_FUNCTION,
                        ),
                        version=version,
                    )
                )
                continue
            last_heard = now
            response = decode_response(line)
            if isinstance(response, BlobRequest):
                self._answer_blob_request(channel, address, response)
                continue
            if not isinstance(response, TaskResult):
                continue  # not ours (future wire chatter): liveness only
            frame_bytes: List[bytes] = []
            if response.frames:
                # Consume the announced frames unconditionally to keep
                # the stream in sync, even for a stale duplicate.
                frame_bytes = [
                    channel.recv_exact(size, self.heartbeat_timeout)
                    for size in response.frames
                ]
            if response.request_id != request_id:
                continue  # heartbeat acks and stale duplicates
            if response.spans:
                tracer().ingest(response.spans)
            if response.ok:
                if frame_bytes:
                    return loads_oob(BlobData.from_frames(frame_bytes))
                return (
                    unpickle_b64(response.result)
                    if response.result is not None
                    else None
                )
            if response.error_type == "BlobNotFoundError":
                raise _RetryInline(response.error or "worker missed a blob")
            raise _remote_error(response)

    def _lose_worker(self, address: str, index: Optional[int], reason: str) -> None:
        """Mark a worker dead; re-queue (or fail) its in-flight task."""
        with self._cond:
            self._dead.add(address)
            if index is not None:
                spec = self._specs[index]
                if self._attempts[index] > self.max_retries:
                    if self._failure is None:
                        self._failure = WorkerCrashError(
                            f"remote worker {address} lost running task "
                            f"{spec.fingerprint!r} "
                            f"({self._attempts[index]} attempts, retries "
                            "exhausted): " + reason,
                            fingerprint=spec.fingerprint,
                            attempts=self._attempts[index],
                        )
                else:
                    self._attempts[index] += 1
                    self._queue.append(index)
            still_live = [
                a for a in self.addresses if a not in self._dead
            ]
            if not still_live and not self._finished():
                if self._failure is None:
                    self._failure = SchedulerError(
                        f"all remote workers died; last loss at {address}: "
                        + reason
                    )
            self._cond.notify_all()


__all__ = [
    "RemoteScheduler",
    "parse_address",
    "pickle_b64",
    "spec_from_request",
    "spec_to_request",
    "unpickle_b64",
]
