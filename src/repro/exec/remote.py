"""Distributed scheduler leg: tasks over the JSON-lines wire.

:class:`RemoteScheduler` implements the same
:class:`~repro.exec.scheduler.Scheduler` API as the in-machine pool,
but dispatches each :class:`~repro.exec.scheduler.TaskSpec` as one
``task`` line (protocol version 3, :mod:`repro.service.wire`) to a
``freqywm worker`` process reachable by Unix socket or TCP, and reads
one ``result`` line back. The distribution model is deliberately plain:

* one client thread per worker address pulls indices off a shared work
  queue, so a fast worker simply takes more tasks (work stealing by
  construction, no partitioning step);
* while a task runs remotely, the client probes liveness with
  ``__heartbeat__`` task lines — the worker answers them on its event
  loop even mid-task. A connection that stays silent past the heartbeat
  timeout (or drops) marks that worker **dead**: its in-flight
  fingerprint is *not* lost but re-queued, and another worker picks it
  up, up to ``max_retries`` resubmissions before
  :class:`~repro.exceptions.WorkerCrashError` surfaces — the same
  bounded-retry contract as the local scheduler;
* results are gathered **in submission order** regardless of which
  worker answered first.

Task payloads travel base64-pickled (:func:`pickle_b64`): the wire
carries exactly what a ``multiprocessing`` pool would pickle anyway, so
the trust model is unchanged — run workers only on hosts you would run
a pool on. ``docs/scheduler.md`` spells this out.
"""

from __future__ import annotations

import base64
import itertools
import pickle
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import repro.exceptions as _exceptions
from repro.exceptions import ReproError, SchedulerError, WorkerCrashError
from repro.exec.scheduler import Scheduler, TaskSpec
from repro.service.wire import (
    HEARTBEAT_FUNCTION,
    TaskRequest,
    TaskResult,
    decode_response,
    encode_line,
)

# --------------------------------------------------------------------- #
# Payload codec + spec <-> wire conversion
# --------------------------------------------------------------------- #


def pickle_b64(value: Any) -> str:
    """Pickle ``value`` and encode it as base64 text for the JSON wire."""
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def unpickle_b64(text: str) -> Any:
    """Invert :func:`pickle_b64` (trusted input only — see module doc)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def spec_to_request(spec: TaskSpec, request_id: str) -> TaskRequest:
    """Encode a task spec as one ``task`` wire request."""
    return TaskRequest(
        request_id=request_id,
        function=spec.function,
        payload=pickle_b64(spec.payload),
        initializer=spec.initializer,
        init_key=spec.init_key,
        init_args=pickle_b64(spec.init_args) if spec.init_args else None,
        fingerprint=spec.fingerprint,
    )


def spec_from_request(request: TaskRequest) -> TaskSpec:
    """Decode a ``task`` wire request back into a runnable spec."""
    return TaskSpec(
        fingerprint=request.fingerprint or request.request_id,
        function=request.function,
        payload=unpickle_b64(request.payload) if request.payload is not None else None,
        initializer=request.initializer,
        init_key=request.init_key,
        init_args=tuple(unpickle_b64(request.init_args))
        if request.init_args is not None
        else (),
    )


def parse_address(address: str) -> Tuple[str, Any]:
    """Parse a worker address into ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted forms: ``unix:/path/to.sock``, ``tcp:host:port`` and the
    bare ``host:port`` shorthand.
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise SchedulerError(f"unix address {address!r} is missing a path")
        return "unix", path
    spec = address[len("tcp:"):] if address.startswith("tcp:") else address
    host, separator, port_text = spec.rpartition(":")
    if not separator or not host:
        raise SchedulerError(
            f"worker address {address!r} is not 'unix:PATH', 'tcp:HOST:PORT' "
            "or 'HOST:PORT'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SchedulerError(
            f"worker address {address!r} has a non-integer port"
        ) from None
    if not 0 < port < 65536:
        raise SchedulerError(f"worker address {address!r} port out of range")
    return "tcp", (host, port)


def _remote_error(result: TaskResult) -> ReproError:
    """Rebuild a typed error from a failed ``result`` line.

    The wire carries the exception's *type name* and message, never a
    pickled exception object. Known :mod:`repro.exceptions` types are
    re-raised as themselves so remote failures stay catchable exactly
    like local ones; anything else degrades to ``SchedulerError``.
    """
    error_type = result.error_type or ""
    message = result.error or "remote task failed"
    candidate = getattr(_exceptions, error_type, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, ReproError)
        and candidate is not WorkerCrashError
    ):
        return candidate(message)
    prefix = f"{error_type}: " if error_type else ""
    return SchedulerError(f"remote task {result.fingerprint!r} failed: {prefix}{message}")


class _WorkerDied(Exception):
    """Internal: the connection to one worker is gone (retry elsewhere)."""


class _LineChannel:
    """Blocking JSON-lines channel over one socket, with recv timeouts."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    def send_line(self, line: str) -> None:
        """Write one line (appending the newline delimiter)."""
        try:
            self._sock.sendall(line.encode("utf-8") + b"\n")
        except OSError as error:
            raise _WorkerDied(f"send failed: {error}") from error

    def recv_line(self, timeout: float) -> Optional[str]:
        """One decoded line, or None when ``timeout`` elapses first."""
        while b"\n" not in self._buffer:
            self._sock.settimeout(timeout)
            try:
                data = self._sock.recv(65536)
            except (TimeoutError, socket.timeout):
                return None
            except OSError as error:
                raise _WorkerDied(f"recv failed: {error}") from error
            if not data:
                raise _WorkerDied("worker closed the connection")
            self._buffer.extend(data)
        line, _, rest = bytes(self._buffer).partition(b"\n")
        self._buffer = bytearray(rest)
        return line.decode("utf-8")

    def close(self) -> None:
        """Close the underlying socket (idempotent, errors swallowed)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class RemoteScheduler(Scheduler):
    """Dispatch fingerprinted tasks to ``freqywm worker`` processes.

    Parameters
    ----------
    addresses : Sequence[str]
        Worker addresses (:func:`parse_address` forms). One client
        thread serves each; ``workers`` equals the address count.
    max_retries : int, optional
        Resubmissions per task after a worker is lost (default 1 —
        retried exactly once, matching the local scheduler).
    heartbeat_interval : float, optional
        Seconds of silence before a liveness probe is sent.
    heartbeat_timeout : float, optional
        Seconds of *total* silence (no result, no probe answer) after
        which a worker is declared dead.
    connect_timeout : float, optional
        Seconds allowed for the initial connection per worker.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        max_retries: int = 1,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        connect_timeout: float = 10.0,
    ) -> None:
        if not addresses:
            raise SchedulerError("RemoteScheduler needs at least one worker address")
        if max_retries < 0:
            raise SchedulerError(f"max_retries must be >= 0, got {max_retries}")
        if heartbeat_timeout <= 0 or heartbeat_interval <= 0:
            raise SchedulerError("heartbeat interval/timeout must be positive")
        self.addresses = tuple(addresses)
        for address in self.addresses:
            parse_address(address)  # fail fast on malformed addresses
        self.workers = len(self.addresses)
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self._channels: Dict[str, _LineChannel] = {}
        self._dead: set = set()
        self._sequence = itertools.count()
        # Per-run state, guarded by _cond's lock.
        self._cond = threading.Condition()
        self._specs: List[TaskSpec] = []
        self._queue: deque = deque()
        self._attempts: List[int] = []
        self._results: Dict[int, Any] = {}
        self._failure: Optional[BaseException] = None
        self._on_result: Optional[Callable[[int, Any], None]] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop every worker connection (idempotent)."""
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()

    def _connect(self, address: str) -> _LineChannel:
        """The (cached) channel to one worker, connecting on first use."""
        channel = self._channels.get(address)
        if channel is not None:
            return channel
        kind, target = parse_address(address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=self.connect_timeout)
        channel = _LineChannel(sock)
        self._channels[address] = channel
        return channel

    def _drop(self, address: str) -> None:
        """Forget a dead worker's connection."""
        channel = self._channels.pop(address, None)
        if channel is not None:
            channel.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        tasks: Sequence[TaskSpec],
        *,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Fan ``tasks`` out to the workers; results in submission order."""
        specs = list(tasks)
        if not specs:
            return []
        live = [address for address in self.addresses if address not in self._dead]
        if not live:
            raise SchedulerError(
                "no live remote workers left "
                f"(all of {list(self.addresses)} marked dead)"
            )
        with self._cond:
            self._specs = specs
            self._queue = deque(range(len(specs)))
            self._attempts = [1] * len(specs)
            self._results = {}
            self._failure = None
            self._on_result = on_result
        threads = [
            threading.Thread(
                target=self._serve, args=(address,), daemon=True,
                name=f"repro-remote-{address}",
            )
            for address in live
        ]
        for thread in threads:
            thread.start()
        with self._cond:
            while not self._finished():
                self._cond.wait(0.05)
            failure = self._failure
        for thread in threads:
            thread.join(timeout=self.heartbeat_timeout + 1.0)
        if failure is not None:
            raise failure
        return [self._results[index] for index in range(len(specs))]

    def _finished(self) -> bool:
        """Run-complete predicate (callers hold the condition's lock)."""
        return self._failure is not None or len(self._results) >= len(self._specs)

    def _serve(self, address: str) -> None:
        """One worker's client loop: pull indices, dispatch, collect."""
        try:
            channel = self._connect(address)
        except OSError as error:
            self._lose_worker(address, None, f"cannot connect: {error}")
            return
        while True:
            with self._cond:
                while not self._queue and not self._finished():
                    # Idle but the run is live: another worker may still
                    # crash and re-queue its in-flight task, so poll.
                    self._cond.wait(0.05)
                if self._finished():
                    return
                index = self._queue.popleft()
                attempt = self._attempts[index]
            try:
                value = self._execute(channel, address, index, attempt)
            except _WorkerDied as error:
                self._drop(address)
                self._lose_worker(address, index, str(error))
                return
            except ReproError as error:
                # The task itself failed remotely: a typed library error,
                # not an infrastructure loss. Propagate, no retry — the
                # same task would fail the same way anywhere.
                with self._cond:
                    if self._failure is None:
                        self._failure = error
                    self._cond.notify_all()
                return
            except Exception as error:  # noqa: BLE001 - must never hang run()
                # A client-side bug (malformed wire line, codec error)
                # must surface as the run's failure, not as a silently
                # dead thread that leaves run() waiting forever.
                with self._cond:
                    if self._failure is None:
                        self._failure = SchedulerError(
                            f"worker client for {address} failed: "
                            f"{type(error).__name__}: {error}"
                        )
                    self._cond.notify_all()
                return
            with self._cond:
                if index not in self._results:
                    self._results[index] = value
                    if self._on_result is not None:
                        self._on_result(index, value)
                self._cond.notify_all()

    def _execute(
        self, channel: _LineChannel, address: str, index: int, attempt: int
    ) -> Any:
        """Send one task and await its result, heartbeating in between."""
        spec = self._specs[index]
        request_id = f"task-{index}-{attempt}-{next(self._sequence)}"
        channel.send_line(encode_line(spec_to_request(spec, request_id)))
        last_heard = time.monotonic()
        while True:
            line = channel.recv_line(timeout=self.heartbeat_interval)
            now = time.monotonic()
            if line is None:
                if now - last_heard >= self.heartbeat_timeout:
                    raise _WorkerDied(
                        f"worker {address} silent for more than "
                        f"{self.heartbeat_timeout:.1f}s (task "
                        f"{spec.fingerprint!r} in flight)"
                    )
                channel.send_line(
                    encode_line(
                        TaskRequest(
                            request_id=f"hb-{next(self._sequence)}",
                            function=HEARTBEAT_FUNCTION,
                        )
                    )
                )
                continue
            last_heard = now
            response = decode_response(line)
            if not isinstance(response, TaskResult):
                continue  # not ours (future wire chatter): liveness only
            if response.request_id != request_id:
                continue  # heartbeat acks and stale duplicates
            if response.ok:
                return (
                    unpickle_b64(response.result)
                    if response.result is not None
                    else None
                )
            raise _remote_error(response)

    def _lose_worker(self, address: str, index: Optional[int], reason: str) -> None:
        """Mark a worker dead; re-queue (or fail) its in-flight task."""
        with self._cond:
            self._dead.add(address)
            if index is not None:
                spec = self._specs[index]
                if self._attempts[index] > self.max_retries:
                    if self._failure is None:
                        self._failure = WorkerCrashError(
                            f"remote worker {address} lost running task "
                            f"{spec.fingerprint!r} "
                            f"({self._attempts[index]} attempts, retries "
                            "exhausted): " + reason,
                            fingerprint=spec.fingerprint,
                            attempts=self._attempts[index],
                        )
                else:
                    self._attempts[index] += 1
                    self._queue.append(index)
            still_live = [
                a for a in self.addresses if a not in self._dead
            ]
            if not still_live and not self._finished():
                if self._failure is None:
                    self._failure = SchedulerError(
                        f"all remote workers died; last loss at {address}: "
                        + reason
                    )
            self._cond.notify_all()


__all__ = [
    "RemoteScheduler",
    "parse_address",
    "pickle_b64",
    "spec_from_request",
    "spec_to_request",
    "unpickle_b64",
]
