"""Synthetic power-law token datasets (Section IV-A workload).

The paper's synthetic experiments draw 1 M token occurrences over 1 000
distinct tokens from a power-law (Zipf-like) distribution whose skewness
``alpha`` is swept over ``{0.05, 0.2, 0.5, 0.7, 0.9, 1.0}``:

* ``alpha = 0`` is the uniform distribution (no eligible pairs — FreqyWM
  explicitly does not apply);
* increasing ``alpha`` widens the gaps between consecutive frequencies,
  creating more eligible pairs, until the long tail itself becomes flat.

Token *probabilities* follow ``p_i ∝ 1 / i^alpha`` over ranks
``i = 1..n_tokens``. Two sampling modes are offered: multinomial sampling
(the realistic, noisy option) and an "expected counts" mode that assigns
each token its expected frequency directly, which makes experiments
deterministic given the seed and much faster for large sample sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.histogram import TokenHistogram
from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class PowerLawSpec:
    """Specification of one synthetic power-law dataset.

    Attributes
    ----------
    alpha:
        Skewness parameter in ``[0, ~1.5]``; 0 is uniform.
    n_tokens:
        Number of distinct tokens (the paper uses 1 000).
    sample_size:
        Total number of token occurrences (the paper uses 1 000 000).
    token_prefix:
        Prefix of the generated token names (``tok-0000`` style), useful
        when several synthetic datasets must not share a token space.
    """

    alpha: float
    n_tokens: int = 1000
    sample_size: int = 1_000_000
    token_prefix: str = "tok"

    def __post_init__(self) -> None:
        require_in_range("alpha", self.alpha, 0.0, 5.0)
        require_positive("n_tokens", self.n_tokens)
        require_positive("sample_size", self.sample_size)


def power_law_probabilities(alpha: float, n_tokens: int) -> np.ndarray:
    """Normalised token probabilities ``p_i ∝ 1 / i^alpha``, rank-ordered."""
    require_in_range("alpha", alpha, 0.0, 5.0)
    require_positive("n_tokens", n_tokens)
    ranks = np.arange(1, n_tokens + 1, dtype=float)
    weights = ranks ** (-float(alpha))
    return weights / weights.sum()


def token_names(n_tokens: int, prefix: str = "tok") -> List[str]:
    """Deterministic token names ``prefix-0000 .. prefix-(n-1)``."""
    width = max(4, len(str(n_tokens - 1)))
    return [f"{prefix}-{index:0{width}d}" for index in range(n_tokens)]


def expected_counts(spec: PowerLawSpec) -> Dict[str, int]:
    """Expected (rounded) frequency of each token under ``spec``.

    Rounding keeps at least one occurrence per token so the histogram
    support always has ``n_tokens`` entries; the total may therefore differ
    from ``sample_size`` by a small amount, which is irrelevant to the
    watermarking behaviour.
    """
    probabilities = power_law_probabilities(spec.alpha, spec.n_tokens)
    names = token_names(spec.n_tokens, spec.token_prefix)
    counts = np.maximum(1, np.round(probabilities * spec.sample_size).astype(int))
    return dict(zip(names, counts.tolist()))


def sampled_counts(spec: PowerLawSpec, rng: RngLike = None) -> Dict[str, int]:
    """Multinomially sampled frequencies of each token under ``spec``."""
    generator = ensure_rng(rng)
    probabilities = power_law_probabilities(spec.alpha, spec.n_tokens)
    names = token_names(spec.n_tokens, spec.token_prefix)
    draws = generator.multinomial(spec.sample_size, probabilities)
    return {name: int(count) for name, count in zip(names, draws) if count > 0}


def generate_power_law_histogram(
    alpha: float,
    *,
    n_tokens: int = 1000,
    sample_size: int = 1_000_000,
    mode: str = "expected",
    rng: RngLike = None,
    token_prefix: str = "tok",
) -> TokenHistogram:
    """Generate the synthetic histogram used by the Figure 2 experiments.

    ``mode="expected"`` (default) assigns expected counts — deterministic
    and fast; ``mode="sampled"`` draws a true multinomial sample.
    """
    spec = PowerLawSpec(
        alpha=alpha, n_tokens=n_tokens, sample_size=sample_size, token_prefix=token_prefix
    )
    if mode == "expected":
        counts = expected_counts(spec)
    elif mode == "sampled":
        counts = sampled_counts(spec, rng)
    else:
        raise DatasetError(f"mode must be 'expected' or 'sampled', got {mode!r}")
    return TokenHistogram.from_counts(counts)


def generate_power_law_tokens(
    alpha: float,
    *,
    n_tokens: int = 1000,
    sample_size: int = 100_000,
    rng: RngLike = None,
    token_prefix: str = "tok",
) -> List[str]:
    """Generate a raw token occurrence sequence (shuffled) under the spec.

    Used when an experiment needs an actual dataset (for sampling attacks
    on raw data, transformation tests, examples) rather than a histogram.
    """
    spec = PowerLawSpec(
        alpha=alpha, n_tokens=n_tokens, sample_size=sample_size, token_prefix=token_prefix
    )
    generator = ensure_rng(rng)
    probabilities = power_law_probabilities(spec.alpha, spec.n_tokens)
    names = token_names(spec.n_tokens, spec.token_prefix)
    indices = generator.choice(spec.n_tokens, size=spec.sample_size, p=probabilities)
    return [names[int(index)] for index in indices]


def uniform_histogram(
    n_tokens: int = 100, count_per_token: int = 100, *, token_prefix: str = "uni"
) -> TokenHistogram:
    """A perfectly uniform histogram — the regime where FreqyWM cannot embed."""
    names = token_names(n_tokens, token_prefix)
    return TokenHistogram.from_counts({name: count_per_token for name in names})


#: The skewness sweep used throughout the paper's synthetic evaluation.
PAPER_ALPHA_SWEEP: Tuple[float, ...] = (0.05, 0.2, 0.5, 0.7, 0.9, 1.0)


__all__ = [
    "PowerLawSpec",
    "power_law_probabilities",
    "token_names",
    "expected_counts",
    "sampled_counts",
    "generate_power_law_histogram",
    "generate_power_law_tokens",
    "uniform_histogram",
    "PAPER_ALPHA_SWEEP",
]
