"""A minimal, dependency-free tabular dataset container.

The multi-dimensional watermarking path (Section IV-C) and the synthetic
stand-ins for the paper's real datasets (Chicago Taxi, eyeWnder, Adult)
all need a small relational substrate: ordered columns, a list of row
dictionaries, selection by predicate, column projection and CSV
round-tripping. Rather than depending on pandas (not available offline in
this environment) the package ships this purpose-built container.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import DatasetError

Row = Dict[str, object]


@dataclass
class TabularDataset:
    """An ordered-column, row-oriented table.

    Attributes
    ----------
    columns:
        Column names in presentation order.
    rows:
        Row dictionaries; every row must provide a value for every column.
    """

    columns: Tuple[str, ...]
    rows: List[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        if len(set(self.columns)) != len(self.columns):
            raise DatasetError(f"duplicate column names in {self.columns!r}")
        for row in self.rows:
            self._check_row(row)

    def _check_row(self, row: Mapping[str, object]) -> None:
        missing = [column for column in self.columns if column not in row]
        if missing:
            raise DatasetError(f"row is missing columns {missing!r}: {row!r}")

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TabularDataset):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabularDataset(columns={list(self.columns)}, rows={len(self.rows)})"

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #

    def append(self, row: Mapping[str, object]) -> None:
        """Append a row, validating it carries every column."""
        self._check_row(row)
        self.rows.append(dict(row))

    def column(self, name: str) -> List[object]:
        """Project a single column as a list of values."""
        if name not in self.columns:
            raise DatasetError(f"unknown column {name!r}; columns: {list(self.columns)!r}")
        return [row[name] for row in self.rows]

    def project(self, names: Sequence[str]) -> "TabularDataset":
        """Return a new dataset with only ``names`` columns."""
        for name in names:
            if name not in self.columns:
                raise DatasetError(f"unknown column {name!r}")
        return TabularDataset(
            columns=tuple(names),
            rows=[{name: row[name] for name in names} for row in self.rows],
        )

    def select(self, predicate: Callable[[Row], bool]) -> "TabularDataset":
        """Return a new dataset with only rows matching ``predicate``."""
        return TabularDataset(
            columns=self.columns, rows=[dict(row) for row in self.rows if predicate(row)]
        )

    def rows_matching(self, values: Mapping[str, object]) -> List[Row]:
        """All rows whose columns equal ``values`` (string comparison).

        Comparison is on the stringified values so that CSV round-trips
        (where everything becomes a string) still match.
        """
        matches: List[Row] = []
        for row in self.rows:
            if all(str(row[column]) == str(value) for column, value in values.items()):
                matches.append(row)
        return matches

    def value_counts(self, column: str) -> Dict[str, int]:
        """Frequency of each (stringified) value in ``column``."""
        counts: Dict[str, int] = {}
        for value in self.column(column):
            key = str(value)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def sample(self, fraction: float, rng) -> "TabularDataset":
        """Uniform random subsample keeping roughly ``fraction`` of the rows."""
        if not 0.0 < fraction <= 1.0:
            raise DatasetError(f"sample fraction must be in (0, 1], got {fraction}")
        size = max(1, int(round(fraction * len(self.rows))))
        indices = rng.choice(len(self.rows), size=size, replace=False)
        return TabularDataset(
            columns=self.columns, rows=[dict(self.rows[int(i)]) for i in sorted(indices)]
        )

    def copy(self) -> "TabularDataset":
        """Deep-enough copy (rows are copied, values are shared)."""
        return TabularDataset(columns=self.columns, rows=[dict(row) for row in self.rows])

    # ------------------------------------------------------------------ #
    # CSV round trip
    # ------------------------------------------------------------------ #

    def to_csv(self, path: Union[str, Path, None] = None) -> Optional[str]:
        """Write the dataset as CSV to ``path``, or return the CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns))
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row[column] for column in self.columns})
        text = buffer.getvalue()
        if path is None:
            return text
        Path(path).write_text(text, encoding="utf-8")
        return None

    @classmethod
    def from_csv(cls, source: Union[str, Path]) -> "TabularDataset":
        """Read a dataset from a CSV file path or CSV text."""
        if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and Path(source).exists()):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        reader = csv.DictReader(io.StringIO(text))
        if reader.fieldnames is None:
            raise DatasetError("CSV input has no header row")
        rows = [dict(row) for row in reader]
        return cls(columns=tuple(reader.fieldnames), rows=rows)

    @classmethod
    def from_records(
        cls, columns: Sequence[str], records: Iterable[Sequence[object]]
    ) -> "TabularDataset":
        """Build a dataset from positional records."""
        columns = tuple(columns)
        rows = [dict(zip(columns, record)) for record in records]
        return cls(columns=columns, rows=rows)


__all__ = ["Row", "TabularDataset"]
