"""Synthetic census dataset (stand-in for the UCI Adult dataset).

The paper's smallest validation dataset is UCI Adult (~32 k rows, 4 MB)
with two token choices:

* ``Age`` alone — 73 distinct values, 72 eligible pairs, 21 optimal pairs;
* ``[Age, WorkClass]`` — 481 distinct composite tokens, 20 chosen pairs
  (the Section IV-C multi-dimensional experiment).

The synthetic stand-in reproduces the relevant structure: an age histogram
that is smooth and single-peaked (so consecutive ranks have small gaps and
only a moderate number of pairs are eligible), a WorkClass marginal close
to the real one, and the usual auxiliary columns so the tabular and
multi-dimensional code paths have something to copy when synthesising
rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.tabular import TabularDataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive

_WORKCLASSES = (
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
)
_WORKCLASS_PROBS = (0.70, 0.08, 0.04, 0.03, 0.07, 0.05, 0.03)

_EDUCATION = ("HS-grad", "Some-college", "Bachelors", "Masters", "Assoc", "Doctorate", "11th")
_EDUCATION_PROBS = (0.32, 0.23, 0.17, 0.06, 0.08, 0.02, 0.12)

_OCCUPATIONS = (
    "Prof-specialty",
    "Craft-repair",
    "Exec-managerial",
    "Adm-clerical",
    "Sales",
    "Other-service",
    "Machine-op-inspct",
    "Transport-moving",
)

_SEX = ("Male", "Female")


@dataclass(frozen=True)
class AdultSpec:
    """Parameters of the synthetic census generator."""

    n_rows: int = 32_000
    min_age: int = 17
    max_age: int = 90

    def __post_init__(self) -> None:
        require_positive("n_rows", self.n_rows)
        if not self.min_age < self.max_age:
            raise ValueError("min_age must be below max_age")


def _age_distribution(spec: AdultSpec) -> np.ndarray:
    """Single-peaked age distribution resembling the census age marginal."""
    ages = np.arange(spec.min_age, spec.max_age + 1, dtype=float)
    # Log-normal-ish bump peaking in the mid 30s with a long right tail.
    density = np.exp(-0.5 * ((np.log(ages) - np.log(37.0)) / 0.35) ** 2) / ages
    density /= density.sum()
    return density


def generate_adult_dataset(
    spec: Optional[AdultSpec] = None,
    *,
    rng: RngLike = None,
) -> TabularDataset:
    """Generate a synthetic census table.

    Columns: ``age``, ``workclass``, ``education``, ``occupation``,
    ``sex``, ``hours_per_week``, ``income``.
    """
    spec = spec or AdultSpec()
    generator = ensure_rng(rng)
    ages_domain = np.arange(spec.min_age, spec.max_age + 1)
    age_probs = _age_distribution(spec)

    ages = generator.choice(ages_domain, size=spec.n_rows, p=age_probs)
    workclasses = generator.choice(len(_WORKCLASSES), size=spec.n_rows, p=_WORKCLASS_PROBS)
    education = generator.choice(len(_EDUCATION), size=spec.n_rows, p=_EDUCATION_PROBS)
    occupations = generator.integers(0, len(_OCCUPATIONS), size=spec.n_rows)
    sexes = generator.choice(len(_SEX), size=spec.n_rows, p=(0.67, 0.33))
    hours = np.clip(generator.normal(40, 10, size=spec.n_rows).round().astype(int), 1, 99)

    rows: List[Dict[str, object]] = []
    for index in range(spec.n_rows):
        age = int(ages[index])
        education_name = _EDUCATION[int(education[index])]
        high_income_logit = (
            0.04 * (age - 30)
            + (1.2 if education_name in ("Bachelors", "Masters", "Doctorate") else 0.0)
            + 0.03 * (int(hours[index]) - 40)
            - 1.5
        )
        income = ">50K" if generator.random() < 1.0 / (1.0 + np.exp(-high_income_logit)) else "<=50K"
        rows.append(
            {
                "age": age,
                "workclass": _WORKCLASSES[int(workclasses[index])],
                "education": education_name,
                "occupation": _OCCUPATIONS[int(occupations[index])],
                "sex": _SEX[int(sexes[index])],
                "hours_per_week": int(hours[index]),
                "income": income,
            }
        )
    return TabularDataset(
        columns=("age", "workclass", "education", "occupation", "sex", "hours_per_week", "income"),
        rows=rows,
    )


def adult_age_tokens(dataset: TabularDataset) -> List[str]:
    """Project the census table onto its Age tokens (single-dimension case)."""
    return [str(value) for value in dataset.column("age")]


__all__ = ["AdultSpec", "generate_adult_dataset", "adult_age_tokens"]
