"""Loading and saving token datasets and tables.

The watermarking pipeline consumes either a raw token sequence (one token
per line / per row value) or a :class:`TabularDataset`. These helpers read
and write both forms so the CLI and examples can work with files on disk,
and they are the natural extension point for users who want to plug in
their own data sources.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.core.histogram import TokenHistogram
from repro.core.streaming import (
    DEFAULT_CHUNK_SIZE,
    StreamingHistogramBuilder,
    iter_batches,
)
from repro.datasets.tabular import TabularDataset
from repro.exceptions import DatasetError

PathLike = Union[str, Path]


def load_token_file(path: PathLike) -> List[str]:
    """Read a token-per-line text file into a token list.

    Blank lines are skipped; surrounding whitespace is stripped. This is
    the natural on-disk form for single-dimensional datasets such as a
    list of visited URLs.
    """
    text = Path(path).read_text(encoding="utf-8")
    tokens = [line.strip() for line in text.splitlines() if line.strip()]
    if not tokens:
        raise DatasetError(f"token file {path!s} contains no tokens")
    return tokens


def save_token_file(tokens: Iterable[str], path: PathLike) -> None:
    """Write a token iterable as a token-per-line text file, atomically.

    The tokens are written incrementally, so a lazy stream (for example
    the output of
    :func:`repro.core.transform.apply_deltas_streaming`) is persisted in
    bounded memory. The write goes to a same-directory temporary file
    that replaces ``path`` only on success, so an exception mid-stream
    (or an empty stream, which is rejected) never truncates or corrupts
    a pre-existing file at ``path``.
    """
    path = Path(path)
    scratch = path.with_name(path.name + ".tmp-write")
    wrote_any = False
    try:
        with scratch.open("w", encoding="utf-8") as handle:
            for token in tokens:
                handle.write(f"{token}\n")
                wrote_any = True
        if not wrote_any:
            raise DatasetError(f"refusing to write an empty token file to {path!s}")
        scratch.replace(path)
    finally:
        scratch.unlink(missing_ok=True)


def iter_tokens(path: PathLike) -> Iterator[str]:
    """Lazily iterate the tokens of a token-per-line text file.

    The streaming counterpart of :func:`load_token_file`: the file is
    read line by line, blank lines are skipped and surrounding
    whitespace is stripped, but the token list is never materialised —
    memory stays constant regardless of file size.

    Parameters
    ----------
    path : PathLike
        Token-per-line text file.

    Yields
    ------
    str
        One token per non-blank line, in file order.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            token = line.strip()
            if token:
                yield token


def iter_token_chunks(
    path: PathLike, *, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[List[str]]:
    """Read a token-per-line file as a lazy sequence of token chunks.

    Parameters
    ----------
    path : PathLike
        Token-per-line text file.
    chunk_size : int, optional
        Maximum tokens per yielded chunk (default
        :data:`repro.core.streaming.DEFAULT_CHUNK_SIZE`).

    Yields
    ------
    List[str]
        Consecutive chunks of at most ``chunk_size`` tokens; only one
        chunk is ever resident at a time.
    """
    if chunk_size < 1:
        raise DatasetError(f"chunk_size must be >= 1, got {chunk_size}")
    yield from iter_batches(iter_tokens(path), chunk_size)


def load_histogram_streaming(
    path: PathLike, *, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> TokenHistogram:
    """Build a histogram from a token file without loading it whole.

    Chunked one-pass ingestion through
    :class:`~repro.core.streaming.StreamingHistogramBuilder`: memory is
    bounded by ``chunk_size`` plus one counter per distinct token, and
    the result is bit-identical to
    ``TokenHistogram.from_tokens(load_token_file(path))``.

    Parameters
    ----------
    path : PathLike
        Token-per-line text file.
    chunk_size : int, optional
        Tokens ingested per chunk.

    Returns
    -------
    TokenHistogram
        The descending-frequency histogram of the file.
    """
    builder = StreamingHistogramBuilder(chunk_size=chunk_size)
    for chunk in iter_token_chunks(path, chunk_size=chunk_size):
        builder.add_tokens(chunk)
    if not builder:
        raise DatasetError(f"token file {path!s} contains no tokens")
    return builder.build()


def load_histogram_json(path: PathLike) -> TokenHistogram:
    """Read a token->count JSON mapping into a :class:`TokenHistogram`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise DatasetError(f"histogram file {path!s} must contain a JSON object")
    return TokenHistogram.from_counts({str(key): int(value) for key, value in payload.items()})


def save_histogram_json(histogram: TokenHistogram, path: PathLike) -> None:
    """Write a histogram as a token->count JSON mapping."""
    Path(path).write_text(
        json.dumps(histogram.as_dict(), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_table_csv(path: PathLike) -> TabularDataset:
    """Read a CSV file into a :class:`TabularDataset`."""
    return TabularDataset.from_csv(Path(path))


def save_table_csv(dataset: TabularDataset, path: PathLike) -> None:
    """Write a :class:`TabularDataset` to a CSV file."""
    dataset.to_csv(Path(path))


def tokens_from_table(
    dataset: TabularDataset, token_columns: List[str]
) -> List[str]:
    """Project a table onto (possibly composite) tokens.

    Single-column projections return the stringified column values;
    multi-column projections compose the values with
    :func:`repro.core.tokens.compose_token`.
    """
    from repro.core.tokens import compose_token

    if not token_columns:
        raise DatasetError("token_columns must name at least one column")
    if len(token_columns) == 1:
        return [str(value) for value in dataset.column(token_columns[0])]
    return [
        compose_token(tuple(str(row[column]) for column in token_columns))
        for row in dataset
    ]


__all__ = [
    "load_token_file",
    "save_token_file",
    "iter_tokens",
    "iter_token_chunks",
    "load_histogram_streaming",
    "load_histogram_json",
    "save_histogram_json",
    "load_table_csv",
    "save_table_csv",
    "tokens_from_table",
]
