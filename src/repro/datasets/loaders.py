"""Loading and saving token datasets and tables.

The watermarking pipeline consumes either a raw token sequence (one token
per line / per row value) or a :class:`TabularDataset`. These helpers read
and write both forms so the CLI and examples can work with files on disk,
and they are the natural extension point for users who want to plug in
their own data sources.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.core.histogram import TokenHistogram
from repro.datasets.tabular import TabularDataset
from repro.exceptions import DatasetError

PathLike = Union[str, Path]


def load_token_file(path: PathLike) -> List[str]:
    """Read a token-per-line text file into a token list.

    Blank lines are skipped; surrounding whitespace is stripped. This is
    the natural on-disk form for single-dimensional datasets such as a
    list of visited URLs.
    """
    text = Path(path).read_text(encoding="utf-8")
    tokens = [line.strip() for line in text.splitlines() if line.strip()]
    if not tokens:
        raise DatasetError(f"token file {path!s} contains no tokens")
    return tokens


def save_token_file(tokens: Iterable[str], path: PathLike) -> None:
    """Write a token list as a token-per-line text file."""
    Path(path).write_text("\n".join(str(token) for token in tokens) + "\n", encoding="utf-8")


def load_histogram_json(path: PathLike) -> TokenHistogram:
    """Read a token->count JSON mapping into a :class:`TokenHistogram`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise DatasetError(f"histogram file {path!s} must contain a JSON object")
    return TokenHistogram.from_counts({str(key): int(value) for key, value in payload.items()})


def save_histogram_json(histogram: TokenHistogram, path: PathLike) -> None:
    """Write a histogram as a token->count JSON mapping."""
    Path(path).write_text(
        json.dumps(histogram.as_dict(), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_table_csv(path: PathLike) -> TabularDataset:
    """Read a CSV file into a :class:`TabularDataset`."""
    return TabularDataset.from_csv(Path(path))


def save_table_csv(dataset: TabularDataset, path: PathLike) -> None:
    """Write a :class:`TabularDataset` to a CSV file."""
    dataset.to_csv(Path(path))


def tokens_from_table(
    dataset: TabularDataset, token_columns: List[str]
) -> List[str]:
    """Project a table onto (possibly composite) tokens.

    Single-column projections return the stringified column values;
    multi-column projections compose the values with
    :func:`repro.core.tokens.compose_token`.
    """
    from repro.core.tokens import compose_token

    if not token_columns:
        raise DatasetError("token_columns must name at least one column")
    if len(token_columns) == 1:
        return [str(value) for value in dataset.column(token_columns[0])]
    return [
        compose_token(tuple(str(row[column]) for column in token_columns))
        for row in dataset
    ]


__all__ = [
    "load_token_file",
    "save_token_file",
    "load_histogram_json",
    "save_histogram_json",
    "load_table_csv",
    "save_table_csv",
    "tokens_from_table",
]
