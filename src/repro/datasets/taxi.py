"""Synthetic taxi-trip dataset (stand-in for the Chicago Taxi dataset).

The paper's largest validation dataset is the Chicago Taxi Trips table
(9.68 GB) with *Taxi ID* as the watermarking token: 6 573 distinct taxis,
33 308 eligible pairs, and 805 optimally chosen pairs at ``z = 131``,
``b = 2``. The defining property for FreqyWM is the Taxi-ID frequency
histogram: thousands of distinct tokens whose trip counts follow a
heavy-tailed distribution with plenty of gaps between consecutive ranks.

This generator produces a trip table with that histogram shape plus
realistic auxiliary columns (trip seconds, miles, fare, payment type,
pickup area) so the multi-dimensional and tabular code paths can be
exercised on it as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.tabular import TabularDataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive

_PAYMENT_TYPES = ("Cash", "Credit Card", "Mobile", "Prcard", "Unknown")
_COMMUNITY_AREAS = tuple(f"area-{index:02d}" for index in range(1, 78))


@dataclass(frozen=True)
class TaxiSpec:
    """Parameters of the synthetic taxi-trip generator.

    The defaults are scaled down (number of trips) from the real dataset
    so the full benchmark suite runs in minutes; the number of distinct
    taxis and the skew of the trips-per-taxi distribution follow the real
    dataset's regime.
    """

    n_taxis: int = 1500
    n_trips: int = 120_000
    activity_exponent: float = 0.9

    def __post_init__(self) -> None:
        require_positive("n_taxis", self.n_taxis)
        require_positive("n_trips", self.n_trips)
        require_positive("activity_exponent", self.activity_exponent)


def generate_taxi_dataset(
    spec: Optional[TaxiSpec] = None,
    *,
    rng: RngLike = None,
) -> TabularDataset:
    """Generate a synthetic taxi-trip table.

    Columns: ``taxi_id``, ``trip_seconds``, ``trip_miles``, ``fare``,
    ``payment_type``, ``pickup_area``.
    """
    spec = spec or TaxiSpec()
    generator = ensure_rng(rng)

    ranks = np.arange(1, spec.n_taxis + 1, dtype=float)
    activity = ranks ** (-spec.activity_exponent)
    activity /= activity.sum()
    taxi_ids = [f"taxi-{index:05d}" for index in range(spec.n_taxis)]

    taxi_choices = generator.choice(spec.n_taxis, size=spec.n_trips, p=activity)
    trip_seconds = np.maximum(60, generator.gamma(2.0, 400.0, size=spec.n_trips)).astype(int)
    trip_miles = np.round(np.maximum(0.1, generator.gamma(1.5, 2.2, size=spec.n_trips)), 2)
    fares = np.round(3.25 + 2.25 * trip_miles + 0.35 * trip_seconds / 60.0, 2)
    payments = generator.choice(len(_PAYMENT_TYPES), size=spec.n_trips, p=(0.4, 0.45, 0.1, 0.03, 0.02))
    areas = generator.integers(0, len(_COMMUNITY_AREAS), size=spec.n_trips)

    rows: List[Dict[str, object]] = []
    for index in range(spec.n_trips):
        rows.append(
            {
                "taxi_id": taxi_ids[int(taxi_choices[index])],
                "trip_seconds": int(trip_seconds[index]),
                "trip_miles": float(trip_miles[index]),
                "fare": float(fares[index]),
                "payment_type": _PAYMENT_TYPES[int(payments[index])],
                "pickup_area": _COMMUNITY_AREAS[int(areas[index])],
            }
        )
    return TabularDataset(
        columns=(
            "taxi_id",
            "trip_seconds",
            "trip_miles",
            "fare",
            "payment_type",
            "pickup_area",
        ),
        rows=rows,
    )


def taxi_tokens(dataset: TabularDataset) -> List[str]:
    """Project the trip table onto its Taxi-ID tokens (the paper's choice)."""
    return [str(value) for value in dataset.column("taxi_id")]


__all__ = ["TaxiSpec", "generate_taxi_dataset", "taxi_tokens"]
