"""Synthetic click-stream dataset (stand-in for the eyeWnder dataset).

The paper's second validation dataset is a real click-stream of URLs
visited by users of the eyeWnder advertisement-detection add-on: 247 MB,
token = URL, 11 479 distinct tokens, and timestamps that the Section VI
analysis decomposes into trend / seasonality / residuals and feeds to a
next-URL sequence model.

We cannot ship the proprietary trace, so this module generates a synthetic
click-stream with the same *shape*:

* a Zipf-distributed URL popularity over a configurable number of distinct
  domains (default scaled down from 11 479 for test speed),
* per-user browsing sessions so consecutive URLs are correlated (needed
  for the sequence-model experiment to be non-trivial),
* timestamps with daily and weekly seasonality plus a mild upward trend,
  so the decomposition analysis has structure to find.

The watermarking pipeline itself only sees the URL token frequencies, so
the eligible-pair / matching / budget behaviour matches what the real
trace would produce for a histogram of similar skew and cardinality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.tabular import TabularDataset
from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive

_TLDS = ("com", "org", "net", "io", "co", "es", "de", "fr", "tv", "news")
_THEMES = (
    "video", "social", "search", "mail", "shop", "news", "sport", "music",
    "travel", "bank", "food", "games", "weather", "maps", "cloud", "photo",
)


@dataclass(frozen=True)
class ClickstreamSpec:
    """Parameters of the synthetic click-stream generator."""

    n_urls: int = 2000
    n_users: int = 200
    n_events: int = 100_000
    zipf_exponent: float = 1.1
    days: int = 28
    session_length_mean: float = 8.0

    def __post_init__(self) -> None:
        require_positive("n_urls", self.n_urls)
        require_positive("n_users", self.n_users)
        require_positive("n_events", self.n_events)
        require_positive("days", self.days)
        require_positive("session_length_mean", self.session_length_mean)
        if self.zipf_exponent < 0:
            raise DatasetError("zipf_exponent must be non-negative")


def url_catalogue(n_urls: int, rng: RngLike = None) -> List[str]:
    """Deterministically build ``n_urls`` plausible domain names."""
    generator = ensure_rng(rng)
    urls: List[str] = []
    for index in range(n_urls):
        theme = _THEMES[index % len(_THEMES)]
        tld = _TLDS[int(generator.integers(0, len(_TLDS)))]
        urls.append(f"{theme}{index}.{tld}")
    return urls


def _hour_weight(hour: int) -> float:
    """Diurnal activity profile: quiet nights, evening peak."""
    return 0.2 + 0.8 * (math.sin(math.pi * (hour - 6) / 24.0) ** 2 if 6 <= hour <= 23 else 0.05)


def _day_weight(day_of_week: int) -> float:
    """Weekly activity profile: weekends ~30% busier."""
    return 1.3 if day_of_week >= 5 else 1.0


def generate_clickstream(
    spec: Optional[ClickstreamSpec] = None,
    *,
    rng: RngLike = None,
) -> TabularDataset:
    """Generate a synthetic click-stream table.

    Columns: ``timestamp`` (epoch seconds), ``user_id``, ``url``,
    ``session_id``. Events are emitted in timestamp order.
    """
    spec = spec or ClickstreamSpec()
    generator = ensure_rng(rng)
    urls = url_catalogue(spec.n_urls, generator)

    ranks = np.arange(1, spec.n_urls + 1, dtype=float)
    popularity = ranks ** (-spec.zipf_exponent)
    popularity /= popularity.sum()

    # Per-user interest profile: each user mostly browses a personal subset.
    user_focus = [
        generator.choice(spec.n_urls, size=min(50, spec.n_urls), replace=False, p=popularity)
        for _ in range(spec.n_users)
    ]

    seconds_per_day = 86_400
    base_epoch = 1_700_000_000  # fixed reference so outputs are reproducible
    rows: List[Dict[str, object]] = []
    session_counter = 0
    # Distribute events over days with trend + seasonality weights.
    day_weights = np.array(
        [
            (1.0 + 0.01 * day) * _day_weight(day % 7)
            for day in range(spec.days)
        ]
    )
    day_weights /= day_weights.sum()
    events_per_day = generator.multinomial(spec.n_events, day_weights)

    hour_weights = np.array([_hour_weight(hour) for hour in range(24)])
    hour_weights /= hour_weights.sum()

    for day, day_events in enumerate(events_per_day):
        emitted = 0
        while emitted < day_events:
            user = int(generator.integers(0, spec.n_users))
            session_counter += 1
            session_length = max(1, int(generator.poisson(spec.session_length_mean)))
            session_length = min(session_length, int(day_events) - emitted)
            hour = int(generator.choice(24, p=hour_weights))
            start_second = (
                base_epoch
                + day * seconds_per_day
                + hour * 3600
                + int(generator.integers(0, 3600))
            )
            focus = user_focus[user]
            for step in range(session_length):
                if generator.random() < 0.7:
                    url_index = int(focus[int(generator.integers(0, len(focus)))])
                else:
                    url_index = int(generator.choice(spec.n_urls, p=popularity))
                rows.append(
                    {
                        "timestamp": start_second + step * int(generator.integers(5, 120)),
                        "user_id": f"user-{user:04d}",
                        "url": urls[url_index],
                        "session_id": f"session-{session_counter:07d}",
                    }
                )
            emitted += session_length
    rows.sort(key=lambda row: row["timestamp"])
    return TabularDataset(columns=("timestamp", "user_id", "url", "session_id"), rows=rows)


def clickstream_tokens(dataset: TabularDataset) -> List[str]:
    """Project the click-stream onto its URL tokens (the paper's token choice)."""
    return [str(url) for url in dataset.column("url")]


def daily_visit_series(dataset: TabularDataset) -> Tuple[List[int], List[int]]:
    """Aggregate visits per day: returns (day indices, visit counts).

    Used by the trend/seasonality/residual analysis of Section VI.
    """
    timestamps = [int(value) for value in dataset.column("timestamp")]
    if not timestamps:
        raise DatasetError("cannot aggregate an empty click-stream")
    start = min(timestamps)
    counts: Dict[int, int] = {}
    for timestamp in timestamps:
        day = (timestamp - start) // 86_400
        counts[day] = counts.get(day, 0) + 1
    days = sorted(counts)
    return days, [counts[day] for day in days]


def url_sequences_by_user(dataset: TabularDataset) -> List[List[str]]:
    """Per-user chronological URL sequences for the sequence-model experiment."""
    by_user: Dict[str, List[Tuple[int, str]]] = {}
    for row in dataset:
        by_user.setdefault(str(row["user_id"]), []).append(
            (int(row["timestamp"]), str(row["url"]))
        )
    sequences = []
    for user in sorted(by_user):
        events = sorted(by_user[user])
        sequences.append([url for _ts, url in events])
    return sequences


__all__ = [
    "ClickstreamSpec",
    "url_catalogue",
    "generate_clickstream",
    "clickstream_tokens",
    "daily_visit_series",
    "url_sequences_by_user",
]
