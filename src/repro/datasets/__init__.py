"""Dataset substrates: synthetic workloads and stand-ins for the paper's data."""

from repro.datasets.adult import AdultSpec, adult_age_tokens, generate_adult_dataset
from repro.datasets.clickstream import (
    ClickstreamSpec,
    clickstream_tokens,
    daily_visit_series,
    generate_clickstream,
    url_sequences_by_user,
)
from repro.datasets.loaders import (
    iter_token_chunks,
    iter_tokens,
    load_histogram_json,
    load_histogram_streaming,
    load_table_csv,
    load_token_file,
    save_histogram_json,
    save_table_csv,
    save_token_file,
    tokens_from_table,
)
from repro.datasets.synthetic import (
    PAPER_ALPHA_SWEEP,
    PowerLawSpec,
    generate_power_law_histogram,
    generate_power_law_tokens,
    uniform_histogram,
)
from repro.datasets.tabular import TabularDataset
from repro.datasets.taxi import TaxiSpec, generate_taxi_dataset, taxi_tokens

__all__ = [
    "AdultSpec",
    "adult_age_tokens",
    "generate_adult_dataset",
    "ClickstreamSpec",
    "clickstream_tokens",
    "daily_visit_series",
    "generate_clickstream",
    "url_sequences_by_user",
    "iter_token_chunks",
    "iter_tokens",
    "load_histogram_json",
    "load_histogram_streaming",
    "load_table_csv",
    "load_token_file",
    "save_histogram_json",
    "save_table_csv",
    "save_token_file",
    "tokens_from_table",
    "PAPER_ALPHA_SWEEP",
    "PowerLawSpec",
    "generate_power_law_histogram",
    "generate_power_law_tokens",
    "uniform_histogram",
    "TabularDataset",
    "TaxiSpec",
    "generate_taxi_dataset",
    "taxi_tokens",
]
