"""FreqyWM core: watermark generation, detection, and supporting stages."""

from repro.core.arrays import HistogramArrays
from repro.core.backend import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    BackendError,
    CupyBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.batch import (
    BatchDetectionReport,
    BatchEmbeddingReport,
    detect_many,
    detect_many_secrets,
    embed_many,
)
from repro.core.cache import DEFAULT_CACHE_CAPACITY, CacheStats, DetectorCache
from repro.core.config import DetectionConfig, GenerationConfig
from repro.core.detector import (
    DetectionResult,
    WatermarkDetector,
    detect_watermark,
    detector_fingerprint,
)
from repro.core.eligibility import (
    EligiblePair,
    EligibilityContext,
    generate_eligible_pairs,
)
from repro.core.embedding import ShardedEmbeddingPool
from repro.core.generator import WatermarkGenerator, WatermarkResult, generate_watermark
from repro.core.hashing import PairModulusCache
from repro.core.histogram import TokenHistogram
from repro.core.matching import SelectionResult, select_pairs
from repro.core.multiwatermark import MultiWatermarker, ProvenanceChain
from repro.core.streaming import (
    StreamingHistogramBuilder,
    histogram_from_chunks,
    histogram_from_stream,
)
from repro.core.secrets import WatermarkSecret
from repro.core.sharding import ShardedDetectionPool, default_worker_count
from repro.core.similarity import (
    SimilarityTracker,
    distortion_percent,
    histogram_similarity,
    rank_changes,
    ranking_preserved,
    similarity_percent,
)
from repro.core.tokens import TokenPair, canonical_token, compose_token

__all__ = [
    "HistogramArrays",
    "BACKEND_ENV_VAR",
    "ArrayBackend",
    "BackendError",
    "CupyBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "BatchDetectionReport",
    "BatchEmbeddingReport",
    "detect_many",
    "detect_many_secrets",
    "embed_many",
    "DEFAULT_CACHE_CAPACITY",
    "CacheStats",
    "DetectorCache",
    "DetectionConfig",
    "GenerationConfig",
    "DetectionResult",
    "WatermarkDetector",
    "detect_watermark",
    "detector_fingerprint",
    "EligiblePair",
    "EligibilityContext",
    "generate_eligible_pairs",
    "PairModulusCache",
    "ShardedEmbeddingPool",
    "WatermarkGenerator",
    "WatermarkResult",
    "generate_watermark",
    "TokenHistogram",
    "SelectionResult",
    "select_pairs",
    "MultiWatermarker",
    "ProvenanceChain",
    "StreamingHistogramBuilder",
    "histogram_from_chunks",
    "histogram_from_stream",
    "ShardedDetectionPool",
    "default_worker_count",
    "WatermarkSecret",
    "SimilarityTracker",
    "distortion_percent",
    "histogram_similarity",
    "rank_changes",
    "ranking_preserved",
    "similarity_percent",
    "TokenPair",
    "canonical_token",
    "compose_token",
]
