"""Pluggable array-compute backend for the FreqyWM hot paths.

The detector's stacked-modulo passes, :class:`~repro.core.eligibility.PairScanPlan`'s
vectorized eligibility scan, histogram delta application and the Monte-Carlo
false-positive simulation are all dense array kernels. This module extracts
them behind a small backend protocol so they can run on NumPy (default) or on
any array library exposing the NumPy API — CuPy ships as the optional GPU
backend.

Design (after the PyQMRI exemplar):

* :class:`ArrayBackend` carries an ``xp`` array namespace plus explicit
  host/device transfer hooks (:meth:`~ArrayBackend.from_host` /
  :meth:`~ArrayBackend.to_host`). Long-lived operands — detector moduli,
  eligibility plan indices — are uploaded **once** at construction and reused
  across calls; per-call inputs move through ``xp.asarray``.
* The fused kernels (:meth:`~ArrayBackend.stacked_modulo`,
  :meth:`~ArrayBackend.pair_scan`, :meth:`~ArrayBackend.boundary_slack`,
  :meth:`~ArrayBackend.plan_deltas`, :meth:`~ArrayBackend.apply_deltas`,
  :meth:`~ArrayBackend.monte_carlo_accept`) are written once against
  ``self.xp`` and shared by every backend; a backend only overrides the
  transfer hooks (and may override a kernel with a hand-fused device
  implementation).
* Every kernel returns **host** NumPy arrays, and every kernel is
  value-transparent: bit-identical to the pure-dict reference implementations
  in :mod:`repro.core.reference` regardless of backend.
  ``tests/backend_harness.py`` enforces this differentially.

Selection: :func:`get_backend` resolves an explicit name, else the
``FREQYWM_BACKEND`` environment variable, else ``"numpy"``. Backend instances
are cached per name; the CuPy import happens lazily so the default path never
pays for (or requires) a GPU stack.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import BackendError

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "ArrayBackend",
    "BackendError",
    "CupyBackend",
    "NumpyBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "FREQYWM_BACKEND"

#: Backend used when neither an argument nor the environment selects one.
DEFAULT_BACKEND = "numpy"


class ArrayBackend:
    """An ``xp`` array namespace plus the fused FreqyWM kernels.

    Subclasses set :attr:`name` and the array namespace, and implement the
    host/device transfer pair. The kernels below are generic over the
    namespace: any library with NumPy semantics (NumPy itself, CuPy) runs
    them unchanged, which is what keeps the bit-parity contract auditable —
    there is exactly one arithmetic expression per kernel, shared by every
    backend.
    """

    #: Registry / fingerprint identifier (e.g. ``"numpy"``, ``"cupy"``).
    name: str = "abstract"

    def __init__(self, xp) -> None:
        self.xp = xp

    # -- host/device transfers ------------------------------------------- #

    def from_host(self, array: np.ndarray):
        """Move a host NumPy array to this backend's device memory.

        Used for long-lived operands uploaded once (detector moduli,
        eligibility plan indices). The NumPy backend returns the array
        unchanged, so the default path has zero transfer overhead.
        """
        raise NotImplementedError

    def to_host(self, array) -> np.ndarray:
        """Move a device array back to host NumPy memory."""
        raise NotImplementedError

    # -- fused kernels ---------------------------------------------------- #

    def boundary_slack(self, counts, *, unbounded: int):
        """Upper/lower modification boundaries of a sorted histogram.

        ``upper[i]`` is the increase token ``i`` tolerates before passing its
        left neighbour (``unbounded`` for the head token); ``lower[i]`` the
        decrease before being passed by its right neighbour (the count itself
        for the tail token). Both are ``int64`` host arrays.
        """
        xp = self.xp
        counts = xp.asarray(counts)
        size = int(counts.shape[0])
        upper = xp.empty(size, dtype=xp.int64)
        lower = xp.empty(size, dtype=xp.int64)
        if size:
            gaps = counts[:-1] - counts[1:]
            upper[0] = unbounded
            upper[1:] = gaps
            lower[-1] = counts[-1]
            lower[:-1] = gaps
        return self.to_host(upper), self.to_host(lower)

    def stacked_modulo(
        self,
        first,
        second,
        *,
        safe_moduli,
        valid,
        thresholds,
        symmetric_tolerance: bool,
    ):
        """The detector's acceptance rule over stacked frequency rows.

        ``first``/``second`` are per-pair frequency arrays (1-D for a single
        suspect, 2-D ``(datasets, pairs)`` for a batch; ``safe_moduli`` /
        ``valid`` / ``thresholds`` broadcast along the last axis). Returns
        ``(accepted, present, remainder)`` host arrays where ``remainder``
        is ``(first - second) mod safe_moduli`` and acceptance requires both
        tokens present, a usable modulus and the (optionally symmetric)
        residue within threshold.
        """
        xp = self.xp
        first = xp.asarray(first)
        second = xp.asarray(second)
        safe_moduli = xp.asarray(safe_moduli)
        valid = xp.asarray(valid)
        thresholds = xp.asarray(thresholds)
        present = (first > 0) & (second > 0)
        remainder = (first - second) % safe_moduli
        if symmetric_tolerance:
            residue = xp.minimum(remainder, safe_moduli - remainder)
        else:
            residue = remainder
        accepted = present & valid & (residue <= thresholds)
        return (
            self.to_host(accepted),
            self.to_host(present),
            self.to_host(remainder),
        )

    def pair_scan(
        self,
        counts,
        slack,
        *,
        first_index,
        second_index,
        need,
        safe_moduli,
        valid,
        require_modification: bool,
    ):
        """Eligibility scan over a :class:`PairScanPlan`'s candidate pairs.

        ``counts``/``slack`` are per-candidate host arrays; the remaining
        operands are the plan's (possibly device-resident) pair arrays. A
        pair survives when its modulus is usable and both members carry at
        least ``ceil(modulus / 2)`` slack; ``require_modification``
        additionally drops already-aligned pairs. Returns
        ``(survivors, remainder, difference)`` — survivor positions into the
        plan's pair arrays plus the gathered remainder/difference values.
        """
        xp = self.xp
        counts = xp.asarray(counts)
        slack = xp.asarray(slack)
        first = counts[first_index]
        second = counts[second_index]
        keep = valid & (slack[first_index] >= need) & (slack[second_index] >= need)
        difference = first - second
        remainder = difference % safe_moduli
        if require_modification:
            keep = keep & (remainder != 0)
        survivors = xp.nonzero(keep)[0]
        return (
            self.to_host(survivors),
            self.to_host(remainder[survivors]),
            self.to_host(difference[survivors]),
        )

    def plan_deltas(self, first, second, moduli):
        """Vectorized adjustment planning for aligned-pair embedding.

        For each pair, split the cheaper of the shrink distance ``r`` and
        the growth distance ``modulus - r`` across both tokens (first token
        gets the ``ceil`` half) so that ``(f_i - f_j) mod modulus == 0``
        afterwards. Already-aligned pairs get zero deltas. Mirrors
        :func:`repro.core.modification.plan_adjustment` bit for bit.
        """
        xp = self.xp
        first = xp.asarray(first)
        second = xp.asarray(second)
        moduli = xp.asarray(moduli)
        remainder = (first - second) % moduli
        growth = moduli - remainder
        shrink = remainder <= moduli // 2
        delta_first = xp.where(shrink, -((remainder + 1) // 2), (growth + 1) // 2)
        delta_second = xp.where(shrink, remainder + delta_first, delta_first - growth)
        aligned = remainder == 0
        zero = xp.zeros_like(delta_first)
        delta_first = xp.where(aligned, zero, delta_first)
        delta_second = xp.where(aligned, zero, delta_second)
        return self.to_host(delta_first), self.to_host(delta_second)

    def apply_deltas(self, counts, positions, deltas):
        """Scatter-add ``deltas`` into a copy of ``counts`` at ``positions``.

        ``positions`` must be unique (one entry per token, as produced from
        a delta mapping) — the kernel uses fancy-index assignment, which is
        well-defined only without duplicates, and that contract is what lets
        CuPy run it as a single scatter instead of a serialised ``add.at``.
        """
        xp = self.xp
        updated = xp.asarray(counts).copy()
        positions = xp.asarray(positions)
        updated[positions] = updated[positions] + xp.asarray(deltas)
        return self.to_host(updated)

    def monte_carlo_accept(self, remainders, threshold: int, required: int) -> int:
        """Count Monte-Carlo trials that clear the acceptance rule.

        ``remainders`` is a ``(trials, pairs)`` matrix of simulated residues;
        a trial is a false positive when at least ``required`` residues fall
        within ``threshold``. Returns the number of such trials.
        """
        xp = self.xp
        draws = xp.asarray(remainders)
        accepted = (draws <= threshold).sum(axis=1)
        return int(self.to_host((accepted >= required).sum()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(ArrayBackend):
    """The default CPU backend: plain NumPy, identity transfers."""

    name = "numpy"

    def __init__(self) -> None:
        super().__init__(np)

    def from_host(self, array: np.ndarray) -> np.ndarray:
        return array

    def to_host(self, array) -> np.ndarray:
        return array


class CupyBackend(ArrayBackend):
    """Optional GPU backend over CuPy.

    The ``cupy`` import happens here, at construction, so merely importing
    :mod:`repro` (or running the default NumPy path) never touches the GPU
    stack. Construction fails with :class:`BackendError` when CuPy is not
    installed; :func:`available_backends` additionally probes that a device
    is actually usable before advertising it.
    """

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy  # noqa: PLC0415 - deliberate lazy import
        except ImportError as error:  # pragma: no cover - env dependent
            raise BackendError(
                "the 'cupy' backend requires CuPy, which is not installed; "
                "install the wheel matching your CUDA toolkit "
                "(e.g. 'pip install cupy-cuda12x') or select "
                "FREQYWM_BACKEND=numpy"
            ) from error
        super().__init__(cupy)
        self._cupy = cupy

    def from_host(self, array: np.ndarray):
        return self._cupy.asarray(array)

    def to_host(self, array) -> np.ndarray:
        return self._cupy.asnumpy(array)


# --------------------------------------------------------------------------- #
# Registry and resolution
# --------------------------------------------------------------------------- #

_LOCK = threading.Lock()
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    NumpyBackend.name: NumpyBackend,
    CupyBackend.name: CupyBackend,
}
_INSTANCES: Dict[str, ArrayBackend] = {}
_PROBED: Dict[str, bool] = {}

BackendLike = Union[None, str, ArrayBackend]


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    Third-party array libraries with NumPy semantics can hook in here; the
    differential harness picks registered backends up automatically via
    :func:`available_backends`.
    """
    cleaned = str(name).strip().lower()
    if not cleaned:
        raise BackendError("backend name must be a non-empty string")
    with _LOCK:
        _FACTORIES[cleaned] = factory
        _INSTANCES.pop(cleaned, None)
        _PROBED.pop(cleaned, None)


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, available or not."""
    with _LOCK:
        return tuple(_FACTORIES)


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve a backend instance by name.

    Resolution order: explicit ``name`` argument, then the
    ``FREQYWM_BACKEND`` environment variable, then ``"numpy"``. Instances
    are cached per name, so repeated resolution is cheap and every caller
    naming the same backend shares one instance (and therefore one set of
    device buffers).
    """
    resolved = (name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND)
    resolved = str(resolved).strip().lower()
    with _LOCK:
        instance = _INSTANCES.get(resolved)
        if instance is not None:
            return instance
        factory = _FACTORIES.get(resolved)
    if factory is None:
        known = ", ".join(sorted(backend_names()))
        raise BackendError(
            f"unknown compute backend {resolved!r}; registered backends: {known}"
        )
    try:
        instance = factory()
    except BackendError:
        raise
    except Exception as error:
        raise BackendError(
            f"compute backend {resolved!r} failed to initialise: {error!r}"
        ) from error
    with _LOCK:
        return _INSTANCES.setdefault(resolved, instance)


def resolve_backend(backend: BackendLike = None) -> ArrayBackend:
    """Accept ``None`` / a name / an instance and return an instance."""
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


def backend_name(backend: BackendLike = None) -> str:
    """The resolved name for a backend argument (used in fingerprints)."""
    return resolve_backend(backend).name


def _probe(instance: ArrayBackend) -> bool:
    """Run one tiny kernel and check it against known-good values.

    A backend only counts as *available* when it can actually execute a
    kernel round trip — CuPy imports fine on machines without a GPU, but
    fails at the first allocation, and the differential harness (as well as
    the CI CuPy leg) must skip cleanly there instead of erroring.
    """
    try:
        accepted, present, remainder = instance.stacked_modulo(
            np.array([5, 3, 0], dtype=np.int64),
            np.array([3, 3, 1], dtype=np.int64),
            safe_moduli=np.array([2, 7, 3], dtype=np.int64),
            valid=np.array([True, True, True]),
            thresholds=np.array([0, 1, 1], dtype=np.int64),
            symmetric_tolerance=False,
        )
    except Exception:
        return False
    return (
        np.array_equal(np.asarray(accepted), [True, True, False])
        and np.array_equal(np.asarray(present), [True, True, False])
        and np.array_equal(np.asarray(remainder), [0, 0, 2])
    )


def available_backends() -> Tuple[str, ...]:
    """Registered backends that construct and pass the self-check probe.

    ``"numpy"`` is always first. Probe results are cached, so the (slow)
    CuPy construction attempt happens at most once per process.
    """
    names = []
    for name in backend_names():
        with _LOCK:
            cached = _PROBED.get(name)
        if cached is None:
            try:
                cached = _probe(get_backend(name))
            except BackendError:
                cached = False
            with _LOCK:
                _PROBED[name] = cached
        if cached:
            names.append(name)
    ordered = sorted(names, key=lambda entry: (entry != DEFAULT_BACKEND, entry))
    return tuple(ordered)
