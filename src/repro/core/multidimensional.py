"""Watermarking multi-dimensional (tabular) datasets — Section IV-C.

A token does not have to be a single column: the paper watermarks the
Adult dataset with the composite token ``[Age, WorkClass]``. For such
datasets, *removing* an appearance of a token is as easy as in the
single-dimensional case (drop one matching row), but *adding* one is more
involved: the new row must also carry values for every attribute that is
not part of the token. The paper's pragmatic answer — copy the non-token
attributes from a randomly chosen existing row with the same token value —
is implemented here as the default :class:`CopyRowSynthesizer`; callers
with domain knowledge can plug in their own synthesizer to avoid semantic
inconsistencies (the concern the paper raises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.config import GenerationConfig
from repro.core.generator import WatermarkGenerator, WatermarkResult
from repro.core.histogram import TokenHistogram
from repro.core.tokens import compose_token
from repro.datasets.tabular import TabularDataset
from repro.exceptions import GenerationError
from repro.utils.rng import RngLike, ensure_rng

Row = Dict[str, object]


class RowSynthesizer(Protocol):
    """Strategy for materialising a new row carrying a given token value."""

    def synthesize(
        self,
        dataset: TabularDataset,
        token_columns: Sequence[str],
        token_values: Tuple[str, ...],
        rng,
    ) -> Row:
        """Return a full row whose token columns equal ``token_values``."""


class CopyRowSynthesizer:
    """Default synthesizer: clone a random existing row with the same token.

    This is the naive approach described in the paper. It guarantees the
    token columns are correct and the remaining attributes come from a
    real row, at the cost of possibly duplicating rare attribute
    combinations.
    """

    def synthesize(
        self,
        dataset: TabularDataset,
        token_columns: Sequence[str],
        token_values: Tuple[str, ...],
        rng,
    ) -> Row:
        matches = dataset.rows_matching(dict(zip(token_columns, token_values)))
        if not matches:
            raise GenerationError(
                f"cannot synthesize a row for unseen token value {token_values!r}"
            )
        template = matches[int(rng.integers(0, len(matches)))]
        return dict(template)


@dataclass(frozen=True)
class TabularWatermarkResult:
    """Result of watermarking a tabular dataset on a (composite) token.

    Wraps the core :class:`WatermarkResult` (which operates on the token
    histogram) together with the edited tabular dataset.
    """

    core: WatermarkResult
    watermarked_dataset: TabularDataset
    token_columns: Tuple[str, ...]

    @property
    def pair_count(self) -> int:
        """Number of watermarked pairs."""
        return self.core.pair_count

    @property
    def similarity_percent(self) -> float:
        """Histogram similarity between original and watermarked data."""
        return self.core.similarity_percent


class TabularWatermarker:
    """Watermark a :class:`TabularDataset` using one or more token columns.

    Parameters
    ----------
    token_columns:
        The attribute(s) whose combination forms the token, e.g.
        ``["Age"]`` or ``["Age", "WorkClass"]``.
    config:
        Core generation configuration.
    synthesizer:
        Strategy used to build rows for added token appearances; defaults
        to :class:`CopyRowSynthesizer`.
    """

    def __init__(
        self,
        token_columns: Sequence[str],
        config: Optional[GenerationConfig] = None,
        *,
        synthesizer: Optional[RowSynthesizer] = None,
        rng: RngLike = None,
    ) -> None:
        if not token_columns:
            raise GenerationError("token_columns must name at least one attribute")
        self.token_columns = tuple(token_columns)
        self.config = config or GenerationConfig()
        self.synthesizer: RowSynthesizer = synthesizer or CopyRowSynthesizer()
        self._rng_source = rng

    # ------------------------------------------------------------------ #

    def tokenize(self, dataset: TabularDataset) -> List[str]:
        """Project every row onto its (composite) token string."""
        missing = [column for column in self.token_columns if column not in dataset.columns]
        if missing:
            raise GenerationError(
                f"token columns {missing!r} are not present in the dataset "
                f"(columns: {list(dataset.columns)!r})"
            )
        return [
            compose_token(tuple(str(row[column]) for column in self.token_columns))
            for row in dataset
        ]

    def watermark(self, dataset: TabularDataset) -> TabularWatermarkResult:
        """Generate a watermark and apply the row edits to ``dataset``."""
        rng = ensure_rng(self._rng_source)
        tokens = self.tokenize(dataset)
        generator = WatermarkGenerator(self.config, rng=self._rng_source)
        core = generator.generate(TokenHistogram.from_tokens(tokens))

        deltas: Dict[str, int] = {}
        for token in set(core.original_histogram.as_dict()) | set(
            core.watermarked_histogram.as_dict()
        ):
            delta = core.watermarked_histogram.frequency(token) - core.original_histogram.frequency(token)
            if delta != 0:
                deltas[token] = delta

        edited = self._apply_row_deltas(dataset, tokens, deltas, rng)
        return TabularWatermarkResult(
            core=core,
            watermarked_dataset=edited,
            token_columns=self.token_columns,
        )

    # ------------------------------------------------------------------ #

    def _apply_row_deltas(
        self,
        dataset: TabularDataset,
        tokens: Sequence[str],
        deltas: Mapping[str, int],
        rng,
    ) -> TabularDataset:
        """Apply token-count deltas by deleting and synthesising rows."""
        from repro.core.tokens import decompose_token

        rows = list(dataset.rows)
        removal_indices: set = set()
        for token, delta in deltas.items():
            if delta >= 0:
                continue
            positions = [index for index, value in enumerate(tokens) if value == token]
            if len(positions) < -delta:
                raise GenerationError(
                    f"cannot remove {-delta} rows for token {token!r}: only "
                    f"{len(positions)} rows carry it"
                )
            chosen = rng.choice(len(positions), size=-delta, replace=False)
            removal_indices.update(positions[i] for i in chosen)

        kept = [row for index, row in enumerate(rows) if index not in removal_indices]

        additions: List[Row] = []
        for token, delta in deltas.items():
            if delta <= 0:
                continue
            token_values = decompose_token(token)
            for _ in range(delta):
                additions.append(
                    self.synthesizer.synthesize(dataset, self.token_columns, token_values, rng)
                )

        # Insert the new rows at random positions so row order reveals nothing.
        for row in additions:
            position = int(rng.integers(0, len(kept) + 1))
            kept.insert(position, row)
        return TabularDataset(columns=dataset.columns, rows=kept)


def watermark_table(
    dataset: TabularDataset,
    token_columns: Sequence[str],
    *,
    budget_percent: float = 2.0,
    modulus_cap: int = 131,
    strategy: str = "optimal",
    rng: RngLike = None,
) -> TabularWatermarkResult:
    """One-shot helper mirroring :func:`repro.core.generator.generate_watermark`."""
    config = GenerationConfig(
        budget_percent=budget_percent, modulus_cap=modulus_cap, strategy=strategy
    )
    return TabularWatermarker(token_columns, config, rng=rng).watermark(dataset)


__all__ = [
    "Row",
    "RowSynthesizer",
    "CopyRowSynthesizer",
    "TabularWatermarkResult",
    "TabularWatermarker",
    "watermark_table",
]
