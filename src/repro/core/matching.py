"""Pair-selection strategies: optimal (MWM + QKP), greedy, and random.

The paper evaluates three ways of turning the eligible-pair list ``L_e``
into the watermarked-pair list ``L_wm`` under the distortion budget ``b``:

* **Optimal** — build the eligible-pair graph, run Maximum Weight Matching
  (many pairs, minimal total remainder), then run the equally-valued 0/1
  knapsack over the matched edges so the similarity budget is respected.
* **Greedy** — sort all eligible pairs by their remainder (embedding
  cost) ascending and keep adding pairs, skipping any that would reuse a
  token or exceed the budget.
* **Random** — like greedy but visiting eligible pairs in random order.

All strategies return a :class:`SelectionResult`; the matcher registry at
the bottom lets the generator, the CLI and the benchmarks refer to them by
name ("optimal", "greedy", "random").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.eligibility import EligiblePair
from repro.core.graph import build_pair_graph, matching_is_valid, maximum_weight_matching
from repro.core.histogram import TokenHistogram
from repro.core.knapsack import select_within_budget
from repro.core.modification import PairAdjustment
from repro.exceptions import MatchingError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a pair-selection strategy.

    Attributes
    ----------
    strategy:
        Name of the strategy that produced the result.
    selected:
        The final watermarked pairs ``L_wm`` (vertex-disjoint, within budget).
    adjustments:
        Planned frequency adjustment per selected pair.
    eligible_count:
        Size of the eligible list the strategy started from.
    matched_count:
        Pairs proposed before the budget stage (MWM output size for the
        optimal strategy; equals ``len(selected) + skipped`` for heuristics).
    similarity_percent:
        Similarity of the adjusted histogram versus the original.
    """

    strategy: str
    selected: Tuple[EligiblePair, ...]
    adjustments: Tuple[PairAdjustment, ...]
    eligible_count: int
    matched_count: int
    similarity_percent: float

    def __len__(self) -> int:
        return len(self.selected)


MatcherFunction = Callable[..., SelectionResult]


def vertex_disjoint(pairs: Sequence[EligiblePair]) -> List[EligiblePair]:
    """Filter ``pairs`` keeping only pairs that do not reuse a token.

    First-come-first-kept over the given order — the shared helper behind
    the greedy/random heuristics, the parity tests and the benchmarks.
    """
    used: set = set()
    kept: List[EligiblePair] = []
    for item in pairs:
        if item.pair.first in used or item.pair.second in used:
            continue
        used.add(item.pair.first)
        used.add(item.pair.second)
        kept.append(item)
    return kept


def optimal_matching(
    histogram: TokenHistogram,
    eligible: Sequence[EligiblePair],
    budget: float,
    *,
    metric: str = "cosine",
    rng: RngLike = None,
    max_pairs: Optional[int] = None,
) -> SelectionResult:
    """Optimal selection: Maximum Weight Matching followed by the knapsack."""
    if not eligible:
        return SelectionResult(
            strategy="optimal",
            selected=(),
            adjustments=(),
            eligible_count=0,
            matched_count=0,
            similarity_percent=100.0,
        )
    graph = build_pair_graph(eligible)
    matched = maximum_weight_matching(graph)
    if not matching_is_valid(matched):
        raise MatchingError("maximum weight matching produced overlapping pairs")
    selection = select_within_budget(
        histogram, matched, budget, metric=metric, max_pairs=max_pairs
    )
    return SelectionResult(
        strategy="optimal",
        selected=selection.selected,
        adjustments=selection.adjustments,
        eligible_count=len(eligible),
        matched_count=len(matched),
        similarity_percent=selection.similarity_percent,
    )


def greedy_matching(
    histogram: TokenHistogram,
    eligible: Sequence[EligiblePair],
    budget: float,
    *,
    metric: str = "cosine",
    rng: RngLike = None,
    max_pairs: Optional[int] = None,
) -> SelectionResult:
    """Greedy heuristic: ascending-remainder scan with vertex-disjoint filter."""
    ordered = sorted(eligible, key=lambda item: (item.cost, item.pair))
    disjoint = vertex_disjoint(ordered)
    selection = select_within_budget(
        histogram, disjoint, budget, metric=metric, order_by_cost=True, max_pairs=max_pairs
    )
    return SelectionResult(
        strategy="greedy",
        selected=selection.selected,
        adjustments=selection.adjustments,
        eligible_count=len(eligible),
        matched_count=len(disjoint),
        similarity_percent=selection.similarity_percent,
    )


def random_matching(
    histogram: TokenHistogram,
    eligible: Sequence[EligiblePair],
    budget: float,
    *,
    metric: str = "cosine",
    rng: RngLike = None,
    max_pairs: Optional[int] = None,
) -> SelectionResult:
    """Random heuristic: like greedy but in a random visiting order."""
    generator = ensure_rng(rng)
    shuffled = list(eligible)
    generator.shuffle(shuffled)
    disjoint = vertex_disjoint(shuffled)
    selection = select_within_budget(
        histogram, disjoint, budget, metric=metric, order_by_cost=False, max_pairs=max_pairs
    )
    return SelectionResult(
        strategy="random",
        selected=selection.selected,
        adjustments=selection.adjustments,
        eligible_count=len(eligible),
        matched_count=len(disjoint),
        similarity_percent=selection.similarity_percent,
    )


_MATCHERS: Dict[str, MatcherFunction] = {
    "optimal": optimal_matching,
    "greedy": greedy_matching,
    "random": random_matching,
}


def available_strategies() -> Tuple[str, ...]:
    """Names of the registered selection strategies."""
    return tuple(sorted(_MATCHERS))


def get_matcher(name: str) -> MatcherFunction:
    """Look up a selection strategy by name."""
    try:
        return _MATCHERS[name.lower()]
    except KeyError:
        raise MatchingError(
            f"unknown selection strategy {name!r}; available: {available_strategies()}"
        ) from None


def select_pairs(
    histogram: TokenHistogram,
    eligible: Sequence[EligiblePair],
    budget: float,
    *,
    strategy: str = "optimal",
    metric: str = "cosine",
    rng: RngLike = None,
    max_pairs: Optional[int] = None,
) -> SelectionResult:
    """Run the named selection strategy (``OptMatch`` in Algorithm I)."""
    matcher = get_matcher(strategy)
    return matcher(histogram, eligible, budget, metric=metric, rng=rng, max_pairs=max_pairs)


__all__ = [
    "SelectionResult",
    "vertex_disjoint",
    "optimal_matching",
    "greedy_matching",
    "random_matching",
    "available_strategies",
    "get_matcher",
    "select_pairs",
]
