"""Configuration dataclasses for watermark generation and detection.

The paper exposes a small number of user-facing knobs:

* generation: budget ``b``, modulus cap ``z``, selection strategy,
  similarity metric, security parameter for ``R``;
* detection: per-pair threshold ``t`` (absolute or as a fraction of each
  pair's modulus) and minimum accepted pair count ``k`` (absolute or as a
  fraction of the stored pairs).

Grouping them into frozen dataclasses keeps the generator/detector call
signatures small and gives one obvious place where parameter validation
lives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.utils.validation import require, require_in_range, require_positive

#: Default modulus cap used throughout the paper's real-data validation.
DEFAULT_MODULUS_CAP = 131
#: Default distortion budget (percent) used throughout the evaluation.
DEFAULT_BUDGET_PERCENT = 2.0
#: Default security parameter (bits of entropy in ``R``).
DEFAULT_SECRET_BITS = 256


@dataclass(frozen=True)
class GenerationConfig:
    """Parameters of ``WM_Generate``.

    Attributes
    ----------
    budget_percent:
        The distortion budget ``b``: the watermarked histogram must stay
        within ``(100 - b)%`` similarity of the original.
    modulus_cap:
        The integer ``z`` capping every pair modulus ``s_ij``.
    strategy:
        Pair-selection strategy: ``"optimal"``, ``"greedy"`` or ``"random"``.
    metric:
        Similarity metric used for the budget (default cosine).
    secret_bits:
        Entropy of the high-entropy secret ``R``.
    max_candidates:
        Optional cap on the tokens scanned for eligible pairs (keeps the
        quadratic candidate enumeration bounded for very wide histograms).
    excluded_tokens:
        Tokens whose frequency must not be touched (paper footnote 3).
    require_modification:
        Hardening extension beyond the paper: exclude pairs that are
        already aligned (zero remainder) in the original data, so every
        watermarked pair embeds actual evidence. Recommended whenever the
        watermark must discriminate between dataset versions (ownership
        disputes, provenance chains, per-buyer fingerprints); see
        DESIGN.md for the rationale.
    max_pairs:
        Optional cap on the number of watermarked pairs. The paper's
        objective is the maximum number of pairs within the budget; owners
        that embed many watermarks into the same dataset (provenance
        chains, per-buyer fingerprints) may prefer a small fixed size per
        watermark so the token space is not exhausted.
    """

    budget_percent: float = DEFAULT_BUDGET_PERCENT
    modulus_cap: int = DEFAULT_MODULUS_CAP
    strategy: str = "optimal"
    metric: str = "cosine"
    secret_bits: int = DEFAULT_SECRET_BITS
    max_candidates: Optional[int] = None
    excluded_tokens: Sequence[str] = field(default_factory=tuple)
    require_modification: bool = False
    max_pairs: Optional[int] = None

    def __post_init__(self) -> None:
        require_in_range("budget_percent (b)", self.budget_percent, 0.0, 100.0)
        require(
            isinstance(self.modulus_cap, int) and self.modulus_cap >= 2,
            f"modulus_cap (z) must be an integer >= 2, got {self.modulus_cap!r}",
        )
        require_positive("secret_bits", self.secret_bits)
        if self.max_candidates is not None:
            require_positive("max_candidates", self.max_candidates)
        if self.max_pairs is not None:
            require_positive("max_pairs", self.max_pairs)
        require(
            self.strategy.lower() in {"optimal", "greedy", "random"},
            f"strategy must be one of optimal/greedy/random, got {self.strategy!r}",
        )


@dataclass(frozen=True)
class DetectionConfig:
    """Parameters of ``WM_Detect``.

    Exactly one of ``pair_threshold`` / ``pair_threshold_fraction`` and one
    of ``min_accepted_pairs`` / ``min_accepted_fraction`` is used:

    * ``pair_threshold`` (``t``) — a pair verifies when
      ``(f_i - f_j) mod s_ij <= t``. Setting ``pair_threshold_fraction``
      instead makes ``t`` proportional to each pair's modulus
      (``t = fraction * s_ij``), the "percentage tolerance" variant the
      paper sketches in Section IV-A2.
    * ``min_accepted_pairs`` (``k``) — the dataset is declared watermarked
      when at least ``k`` pairs verify. ``min_accepted_fraction`` expresses
      ``k`` as a fraction of the stored pair count instead.

    ``symmetric_tolerance`` is an extension beyond the paper: when True a
    pair also verifies if its remainder is within ``t`` *below* the next
    multiple of ``s_ij`` (i.e. the residue is close to zero from either
    side). The paper's rule — and the default here — only tolerates
    remainders at or below ``t``.
    """

    pair_threshold: int = 0
    pair_threshold_fraction: Optional[float] = None
    min_accepted_pairs: Optional[int] = None
    min_accepted_fraction: float = 0.5
    symmetric_tolerance: bool = False

    def __post_init__(self) -> None:
        require(
            self.pair_threshold >= 0,
            f"pair_threshold (t) must be >= 0, got {self.pair_threshold}",
        )
        if self.pair_threshold_fraction is not None:
            require_in_range(
                "pair_threshold_fraction", self.pair_threshold_fraction, 0.0, 1.0
            )
        if self.min_accepted_pairs is not None:
            require(
                self.min_accepted_pairs >= 1,
                f"min_accepted_pairs (k) must be >= 1, got {self.min_accepted_pairs}",
            )
        require_in_range("min_accepted_fraction", self.min_accepted_fraction, 0.0, 1.0)

    def fingerprint(self) -> str:
        """Stable key of the threshold knobs, for detector caching.

        Two configurations resolve every pair threshold and the required
        pair count identically iff their fingerprints are equal, so
        :class:`repro.service.cache.DetectorCache` can key constructed
        detectors on ``(secret fingerprint, config fingerprint)``.
        """
        return (
            f"t={self.pair_threshold};tf={self.pair_threshold_fraction};"
            f"k={self.min_accepted_pairs};kf={self.min_accepted_fraction};"
            f"sym={int(self.symmetric_tolerance)}"
        )

    def threshold_for(self, modulus: int) -> int:
        """Resolve the per-pair threshold ``t`` for a pair with ``modulus``."""
        if self.pair_threshold_fraction is not None:
            return int(math.floor(self.pair_threshold_fraction * modulus))
        return self.pair_threshold

    def required_pairs(self, stored_pairs: int) -> int:
        """Resolve the minimum number of accepted pairs ``k``."""
        if stored_pairs <= 0:
            raise ConfigurationError("cannot detect a watermark with zero stored pairs")
        if self.min_accepted_pairs is not None:
            return min(self.min_accepted_pairs, stored_pairs)
        return max(1, math.ceil(self.min_accepted_fraction * stored_pairs))


__all__ = [
    "DEFAULT_MODULUS_CAP",
    "DEFAULT_BUDGET_PERCENT",
    "DEFAULT_SECRET_BITS",
    "GenerationConfig",
    "DetectionConfig",
]
