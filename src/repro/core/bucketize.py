"""Bucketisation of wide-range values — Section VI "challenging datasets".

FreqyWM needs *repeating* tokens: a column of, say, sales amounts with many
decimals has almost no repeated value and therefore an almost-flat
histogram with no eligible pairs. The paper's suggested remedy is to first
bucketise (cluster) the wide-range values and watermark at the bucket
level. This module provides the two natural bucketisation schemes plus a
round-trip helper that maps raw values to bucket tokens and back to
representative values, so the watermarked dataset can still be emitted in
the original value domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class Bucket:
    """A half-open value interval ``[low, high)`` acting as one token."""

    index: int
    low: float
    high: float

    @property
    def label(self) -> str:
        """Canonical token string for this bucket."""
        return f"bucket[{self.index}]({self.low:.6g},{self.high:.6g})"

    @property
    def midpoint(self) -> float:
        """Representative value used when materialising added appearances."""
        return (self.low + self.high) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls into this bucket."""
        return self.low <= value < self.high


class Bucketizer:
    """Maps continuous values to bucket tokens and back.

    Two strategies are supported:

    * ``"width"`` — equal-width buckets across the observed range;
    * ``"quantile"`` — equal-frequency buckets (each bucket holds roughly
      the same number of observations), which keeps the bucket histogram
      informative even for heavily skewed value distributions.
    """

    def __init__(
        self,
        n_buckets: int,
        *,
        strategy: str = "quantile",
    ) -> None:
        require_positive("n_buckets", n_buckets)
        if strategy not in {"width", "quantile"}:
            raise DatasetError(
                f"bucketisation strategy must be 'width' or 'quantile', got {strategy!r}"
            )
        self.n_buckets = int(n_buckets)
        self.strategy = strategy
        self._buckets: Optional[List[Bucket]] = None

    # ------------------------------------------------------------------ #

    @property
    def buckets(self) -> List[Bucket]:
        """Fitted buckets (raises if :meth:`fit` has not been called)."""
        if self._buckets is None:
            raise DatasetError("bucketizer has not been fitted yet")
        return list(self._buckets)

    def fit(self, values: Sequence[float]) -> "Bucketizer":
        """Learn bucket edges from ``values``."""
        if len(values) == 0:
            raise DatasetError("cannot fit a bucketizer on an empty value sequence")
        data = np.asarray(values, dtype=float)
        if np.any(~np.isfinite(data)):
            raise DatasetError("values must be finite to bucketise")
        if self.strategy == "width":
            edges = np.linspace(data.min(), data.max(), self.n_buckets + 1)
        else:
            quantiles = np.linspace(0.0, 1.0, self.n_buckets + 1)
            edges = np.quantile(data, quantiles)
            edges = np.unique(edges)
        # Make the last edge inclusive by nudging it upward.
        edges = np.asarray(edges, dtype=float)
        if len(edges) < 2:
            edges = np.array([data.min(), data.max() + 1.0])
        edges[-1] = math.nextafter(float(edges[-1]), math.inf)
        self._buckets = [
            Bucket(index=i, low=float(edges[i]), high=float(edges[i + 1]))
            for i in range(len(edges) - 1)
        ]
        return self

    def transform(self, values: Sequence[float]) -> List[str]:
        """Map raw values to bucket token labels."""
        buckets = self.buckets
        edges = np.array([bucket.low for bucket in buckets] + [buckets[-1].high])
        data = np.asarray(values, dtype=float)
        indices = np.clip(np.searchsorted(edges, data, side="right") - 1, 0, len(buckets) - 1)
        return [buckets[int(index)].label for index in indices]

    def fit_transform(self, values: Sequence[float]) -> List[str]:
        """Convenience: fit on ``values`` then transform them."""
        return self.fit(values).transform(values)

    def representative(self, label: str) -> float:
        """Midpoint value for a bucket token label (for added appearances)."""
        for bucket in self.buckets:
            if bucket.label == label:
                return bucket.midpoint
        raise DatasetError(f"unknown bucket label {label!r}")

    def bucket_of(self, value: float) -> Bucket:
        """The fitted bucket containing ``value``."""
        for bucket in self.buckets:
            if bucket.contains(value):
                return bucket
        # Values outside the fitted range clamp to the nearest bucket.
        buckets = self.buckets
        return buckets[0] if value < buckets[0].low else buckets[-1]


def bucketize_values(
    values: Sequence[float],
    n_buckets: int,
    *,
    strategy: str = "quantile",
) -> Tuple[List[str], Bucketizer]:
    """One-shot helper returning bucket tokens and the fitted bucketizer."""
    bucketizer = Bucketizer(n_buckets, strategy=strategy)
    return bucketizer.fit_transform(values), bucketizer


__all__ = ["Bucket", "Bucketizer", "bucketize_values"]
