"""Watermarking secrets: the list ``L_sc = {L_wm, R, z}``.

Watermark generation outputs, besides the watermarked dataset, a secret
list that the owner must store to later prove ownership:

* ``L_wm`` — the ordered list of watermarked token pairs,
* ``R``    — the high-entropy secret used inside the hash,
* ``z``    — the modulus cap.

Detection replays the hash construction over the stored pairs, so the
secret must serialise losslessly; this module provides a dataclass with
JSON (de)serialisation, plus a commitment fingerprint that can be lodged
in the watermark registry (the paper's immutable index) without revealing
the secret itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.core.hashing import keyed_fingerprint, pair_modulus
from repro.core.tokens import TokenPair, as_token_pair
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class WatermarkSecret:
    """The owner's secret list ``L_sc`` produced by watermark generation.

    Attributes
    ----------
    pairs:
        The watermarked token pairs ``L_wm`` in selection order; each pair
        stores its higher-frequency member first.
    secret:
        The high-entropy integer secret ``R``.
    modulus_cap:
        The integer ``z`` that caps every per-pair modulus ``s_ij``.
    metadata:
        Free-form provenance information (owner id, buyer id, creation
        round, original dataset size) carried along for registry lookups;
        it plays no role in detection itself.
    """

    pairs: Tuple[TokenPair, ...]
    secret: int
    modulus_cap: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.modulus_cap < 2:
            raise ConfigurationError(
                f"modulus cap z must be at least 2, got {self.modulus_cap}"
            )
        if self.secret < 0:
            raise ConfigurationError("secret R must be a non-negative integer")

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_moduli(self) -> Dict[TokenPair, int]:
        """Recompute ``s_ij`` for every stored pair."""
        return {
            pair: pair_modulus(pair.first, pair.second, self.secret, self.modulus_cap)
            for pair in self.pairs
        }

    def fingerprint(self) -> str:
        """Keyed commitment to this watermark (pairs + parameters).

        Two different watermarks (different pairs, secret, or modulus cap)
        produce different fingerprints except with negligible probability,
        while the fingerprint reveals nothing about the pairs to a party
        that does not hold ``R``. Memoised per instance: the detection
        service computes it on every cache lookup.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        fields: List[Union[str, int]] = [self.modulus_cap, len(self.pairs)]
        for pair in self.pairs:
            fields.append(pair.first)
            fields.append(pair.second)
        value = keyed_fingerprint(self.secret, *fields)
        object.__setattr__(self, "_fingerprint", value)
        return value

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the secret material, dropping the fingerprint memo.

        The memoised HMAC fingerprint is pure derived state; shipping it
        across the sharded-embedding process boundary would bloat every
        :class:`~repro.core.generator.WatermarkResult` payload for a
        value the receiver can recompute lazily.
        """
        return {
            "pairs": self.pairs,
            "secret": self.secret,
            "modulus_cap": self.modulus_cap,
            "metadata": self.metadata,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation of the secret list."""
        return {
            "version": 1,
            "pairs": [[pair.first, pair.second] for pair in self.pairs],
            "secret": str(self.secret),
            "modulus_cap": self.modulus_cap,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WatermarkSecret":
        """Rebuild a secret list from :meth:`to_dict` output."""
        try:
            raw_pairs = payload["pairs"]
            secret = int(str(payload["secret"]))
            modulus_cap = int(payload["modulus_cap"])  # type: ignore[arg-type]
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigurationError(f"malformed watermark secret payload: {exc}") from exc
        pairs = tuple(as_token_pair((first, second)) for first, second in raw_pairs)
        metadata = dict(payload.get("metadata", {}))  # type: ignore[arg-type]
        return cls(pairs=pairs, secret=secret, modulus_cap=modulus_cap, metadata=metadata)

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WatermarkSecret":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        """Write the secret list to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WatermarkSecret":
        """Read a secret list previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        pairs: Iterable[Union[TokenPair, Tuple[str, str]]],
        secret: int,
        modulus_cap: int,
        **metadata: object,
    ) -> "WatermarkSecret":
        """Build a secret list coercing plain tuples into :class:`TokenPair`."""
        return cls(
            pairs=tuple(as_token_pair(pair) for pair in pairs),
            secret=secret,
            modulus_cap=modulus_cap,
            metadata=dict(metadata),
        )

    def with_metadata(self, **metadata: object) -> "WatermarkSecret":
        """Return a copy with additional metadata entries."""
        merged = dict(self.metadata)
        merged.update(metadata)
        return WatermarkSecret(
            pairs=self.pairs,
            secret=self.secret,
            modulus_cap=self.modulus_cap,
            metadata=merged,
        )


def max_modulus_cap(frequencies: Sequence[int]) -> int:
    """Upper bound ``r_max`` on the modulus cap ``z`` for a histogram.

    Section IV-A1: the largest useful remainder for any pair is the gap
    between the most and least frequent tokens, so ``z`` should be chosen
    from ``(2, r_max)``. For degenerate histograms (a single token, or all
    counts equal) the bound collapses and 2 is returned.
    """
    if not frequencies:
        raise ConfigurationError("cannot bound z for an empty histogram")
    spread = max(frequencies) - min(frequencies)
    return max(2, spread)


__all__ = ["WatermarkSecret", "max_modulus_cap"]
