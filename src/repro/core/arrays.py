"""Array backing for token histograms: the vectorized compute layer.

The FreqyWM hot paths (boundary computation, eligibility pre-filtering,
similarity, pair verification) all reduce to arithmetic over the
descending-frequency count vector. :class:`HistogramArrays` is the shared
array view those stages operate on: a token↔index vocabulary plus NumPy
count and boundary arrays, built once per histogram and reused by every
stage.

The mapping-style API of :class:`repro.core.histogram.TokenHistogram`
remains the public data structure; it exposes its backing
:class:`HistogramArrays` through ``TokenHistogram.arrays()``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import get_backend

#: Sentinel stored in integer boundary arrays for "no upper boundary"
#: (the top-ranked token may grow without limit). Kept as a huge but
#: finite int64 so boundary arrays stay integer-typed; the dataclass API
#: (:class:`repro.core.histogram.TokenBoundaries`) still reports the
#: mathematical ``inf``.
UNBOUNDED = np.iinfo(np.int64).max


def sort_histogram(
    tokens: Sequence[str], counts: np.ndarray
) -> Tuple[List[str], np.ndarray]:
    """Sort ``(tokens, counts)`` by descending count, lexicographic tie-break.

    Matches the ordering contract of ``TokenHistogram``: ``sorted(tokens,
    key=lambda t: (-count[t], t))``. NumPy's ``<U`` string comparison is
    code-point order, identical to Python ``str`` comparison, so
    ``np.lexsort`` reproduces the dict implementation's ordering exactly.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if len(tokens) != counts.size:
        raise ValueError("tokens and counts must have the same length")
    if counts.size <= 1:
        return list(tokens), counts.copy()
    if any("\x00" in token for token in tokens):
        # NumPy ``<U`` arrays strip trailing NULs, which would corrupt the
        # lexicographic tie-break for such tokens; sort in Python instead.
        order = sorted(range(len(tokens)), key=lambda i: (-counts[i], tokens[i]))
        order = np.asarray(order, dtype=np.intp)
    else:
        token_array = np.asarray(tokens, dtype=np.str_)
        order = np.lexsort((token_array, -counts))
    return [tokens[i] for i in order], counts[order]


class HistogramArrays:
    """Immutable array view of one histogram, shared across pipeline stages.

    Attributes
    ----------
    tokens:
        Token strings in descending-frequency order.
    counts:
        ``int64`` appearance counts aligned with ``tokens`` (read-only).
    index:
        Token -> position lookup (the rank of each token).
    """

    __slots__ = ("tokens", "counts", "index", "_upper", "_lower", "_total")

    def __init__(
        self,
        tokens: Sequence[str],
        counts: np.ndarray,
        index: Optional[Dict[str, int]] = None,
    ) -> None:
        self.tokens: Tuple[str, ...] = tuple(tokens)
        array = np.ascontiguousarray(counts, dtype=np.int64)
        if array is counts and array.flags.writeable:
            # Never freeze a buffer the caller still owns.
            array = array.copy()
        array.flags.writeable = False
        self.counts: np.ndarray = array
        self.index: Dict[str, int] = (
            index
            if index is not None
            else {token: position for position, token in enumerate(self.tokens)}
        )
        self._upper: Optional[np.ndarray] = None
        self._lower: Optional[np.ndarray] = None
        self._total: Optional[int] = None

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def total(self) -> int:
        """Total number of occurrences (the dataset size)."""
        if self._total is None:
            self._total = int(self.counts.sum())
        return self._total

    # ------------------------------------------------------------------ #
    # Boundaries (vectorized form of TokenHistogram.boundaries)
    # ------------------------------------------------------------------ #

    def boundary_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(upper, lower)`` ranking-preservation slack per rank position.

        ``upper[i]`` is how many appearances token ``i`` may gain without
        overtaking its higher-ranked neighbour (:data:`UNBOUNDED` for the
        top-ranked token); ``lower[i]`` how many it may lose without
        falling behind its lower-ranked neighbour (its own count for the
        last token). Both arrays are ``int64`` and cached.

        The arithmetic runs on the active compute backend
        (:func:`repro.core.backend.get_backend`); the cached result is
        always a pair of read-only host arrays.
        """
        if self._upper is None:
            upper, lower = get_backend().boundary_slack(
                self.counts, unbounded=UNBOUNDED
            )
            upper.flags.writeable = False
            lower.flags.writeable = False
            self._upper, self._lower = upper, lower
        return self._upper, self._lower

    def slack(self) -> np.ndarray:
        """``min(upper, lower)`` per token — the binding boundary.

        A token can take part in an eligible pair with modulus ``s`` only
        when its slack is at least ``ceil(s / 2)``; tokens with zero slack
        (equal-frequency neighbours) can never be watermarked, which is
        what the eligibility pre-filter exploits.
        """
        upper, lower = self.boundary_arrays()
        return np.minimum(upper, lower)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def positions(self, tokens: Iterable[str]) -> np.ndarray:
        """Rank positions of ``tokens``.

        Parameters
        ----------
        tokens : Iterable[str]
            Canonical token strings to look up.

        Returns
        -------
        numpy.ndarray
            ``int64`` positions aligned with the input order; ``-1``
            marks tokens not present in the histogram.
        """
        lookup = self.index.get
        return np.array([lookup(token, -1) for token in tokens], dtype=np.int64)

    def frequencies(self, tokens: Iterable[str]) -> np.ndarray:
        """Appearance counts for ``tokens``.

        Parameters
        ----------
        tokens : Iterable[str]
            Canonical token strings to look up.

        Returns
        -------
        numpy.ndarray
            ``int64`` counts aligned with the input order; ``0`` marks
            tokens not present in the histogram (which is how the
            detector encodes a missing pair member).
        """
        positions = self.positions(tokens)
        present = positions >= 0
        values = np.zeros(positions.size, dtype=np.int64)
        values[present] = self.counts[positions[present]]
        return values


def frequency_matrix(
    histograms: Sequence["HistogramArrays"], tokens: Sequence[str]
) -> np.ndarray:
    """Stack the counts of ``tokens`` across many histograms.

    Returns an ``int64`` matrix of shape ``(len(histograms), len(tokens))``
    with zeros for absent tokens — the input of the batched detector's
    single vectorized verification pass.
    """
    matrix = np.zeros((len(histograms), len(tokens)), dtype=np.int64)
    for row, arrays in enumerate(histograms):
        matrix[row] = arrays.frequencies(tokens)
    return matrix


def counts_from_mapping(counts: Mapping[str, int]) -> Tuple[List[str], np.ndarray]:
    """Split a token->count mapping into parallel token/count sequences."""
    tokens = list(counts.keys())
    values = np.fromiter(counts.values(), dtype=np.int64, count=len(tokens))
    return tokens, values


__all__ = [
    "UNBOUNDED",
    "HistogramArrays",
    "sort_histogram",
    "frequency_matrix",
    "counts_from_mapping",
]
