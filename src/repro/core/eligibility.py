"""Eligible-pair generation (the paper's ``Eligible`` step).

A pair of tokens ``(tk_i, tk_j)`` is *eligible* for watermarking when the
frequency nudges required to make their difference a multiple of the
pair's modulus ``s_ij`` cannot break the ranking constraint. Concretely,
with boundaries ``u``/``l`` computed on the original histogram, the paper
requires::

    min(u_i, l_i, u_j, l_j) >= ceil(s_ij / 2)    and    s_ij >= 2

because the frequency-modification rule never moves either token by more
than ``ceil(s_ij / 2)`` appearances in either direction.

The number of candidate pairs is quadratic in the number of distinct
tokens (|D^hist| choose 2 — e.g. ~21.6 M pairs for the Taxi dataset's
6 573 tokens), so this module also offers a *candidate cap*: the
evaluation-scale datasets in the paper all fit the exhaustive scan, but
callers can bound the scan to the pairs formed by the ``max_candidates``
most promising tokens to keep generation latency predictable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hashing import pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenPair
from repro.exceptions import EligibilityError


@dataclass(frozen=True)
class EligiblePair:
    """A token pair that may be watermarked, with its precomputed values.

    Attributes
    ----------
    pair:
        The token pair with the higher-frequency member first.
    modulus:
        The pair modulus ``s_ij`` derived from the secret.
    remainder:
        ``(f_i - f_j) mod s_ij`` on the original histogram — the quantity
        the watermark will drive to zero.
    frequency_difference:
        ``f_i - f_j`` on the original histogram (non-negative).
    """

    pair: TokenPair
    modulus: int
    remainder: int
    frequency_difference: int

    @property
    def cost(self) -> int:
        """Total number of appearance changes needed to watermark the pair.

        If the remainder ``r`` is at most half the modulus the difference is
        *reduced* by ``r`` (cost ``r`` split across the two tokens);
        otherwise the difference is *increased* to the next multiple, which
        costs ``s_ij - r`` changes. This is exactly the magnitude the
        frequency-modification stage will apply.
        """
        if self.remainder == 0:
            return 0
        if self.remainder <= self.modulus // 2:
            return self.remainder
        return self.modulus - self.remainder


def _boundary_allows(modulus: int, slack_i: int, slack_j: int) -> bool:
    """The boundary rule ``min(u_i, l_i, u_j, l_j) >= ceil(s_ij / 2)``.

    ``slack`` is each token's binding boundary ``min(u, l)`` (with the
    top-ranked token's unbounded upper collapsing to its lower), so the
    rule reduces to both slacks covering ``ceil(s_ij / 2)``.
    """
    if modulus < 2:
        return False
    needed = (modulus + 1) // 2
    return slack_i >= needed and slack_j >= needed


def _candidate_token_mask(
    histogram: TokenHistogram, max_candidates: Optional[int]
) -> "np.ndarray":
    """Boolean mask (rank order) of the tokens admitted to the pair scan.

    With ``max_candidates`` set, tokens are ranked by boundary slack
    (stable sort, so descending-frequency order breaks ties) and only the
    top ``max_candidates`` are kept — the single implementation behind
    both :func:`iter_candidate_pairs` and :func:`generate_eligible_pairs`.
    """
    slack = histogram.arrays().slack()
    keep = np.ones(slack.size, dtype=bool)
    if max_candidates is not None and max_candidates < slack.size:
        ranking = np.argsort(-slack, kind="stable")
        keep = np.zeros(slack.size, dtype=bool)
        keep[ranking[:max_candidates]] = True
    return keep


def iter_candidate_pairs(
    histogram: TokenHistogram,
    *,
    max_candidates: Optional[int] = None,
) -> Iterator[Tuple[str, str]]:
    """Yield candidate ``(higher-frequency token, lower-frequency token)`` pairs.

    Candidates are enumerated over the descending-frequency order so the
    first element of each yielded tuple always has frequency greater than
    or equal to the second. When ``max_candidates`` is given only the
    tokens with the largest boundary slack take part, which keeps the scan
    sub-quadratic for very wide histograms.
    """
    keep = _candidate_token_mask(histogram, max_candidates)
    tokens: Sequence[str] = [
        token for token, kept in zip(histogram.tokens, keep) if kept
    ]
    for i in range(len(tokens)):
        for j in range(i + 1, len(tokens)):
            yield tokens[i], tokens[j]


def generate_eligible_pairs(
    histogram: TokenHistogram,
    secret: int,
    modulus_cap: int,
    *,
    max_candidates: Optional[int] = None,
    excluded_tokens: Optional[Sequence[str]] = None,
    require_modification: bool = False,
) -> List[EligiblePair]:
    """Compute the eligible pair list ``L_e`` for a histogram.

    Parameters
    ----------
    histogram:
        The original dataset's token histogram.
    secret:
        The high-entropy secret ``R``.
    modulus_cap:
        The modulus cap ``z`` (must be >= 2).
    max_candidates:
        Optional cap on the number of tokens considered (see module doc).
    excluded_tokens:
        Tokens the owner wants to shield from any frequency change (the
        paper's footnote 3); pairs touching them are never eligible.
    require_modification:
        Hardening extension beyond the paper: when True, pairs whose
        frequency difference is *already* a multiple of ``s_ij`` are not
        eligible. Such "free" pairs maximise the paper's objective but
        embed no evidence — they verify on the unwatermarked original as
        well — so owners who need the watermark to discriminate versions
        (dispute arbitration, provenance chains, per-buyer tracing) should
        enable this.

    Returns
    -------
    list of :class:`EligiblePair`, ordered by (remainder cost, pair) so the
    output is deterministic for a given histogram and secret.
    """
    if modulus_cap < 2:
        raise EligibilityError(f"modulus cap z must be >= 2, got {modulus_cap}")
    if len(histogram) < 2:
        return []
    arrays = histogram.arrays()
    slack = arrays.slack()
    keep = _candidate_token_mask(histogram, max_candidates)
    # Boundary pre-filter: every valid modulus needs ceil(s_ij / 2) >= 1
    # slack on both tokens, so tokens whose binding boundary is zero (an
    # equal-frequency neighbour on the tight side) can never take part in
    # an eligible pair — drop them before the quadratic scan instead of
    # hashing their pairs. On flat histograms this removes almost all
    # candidates; on the paper's power-law data it is a no-op.
    keep &= slack >= 1
    if excluded_tokens:
        excluded = set(excluded_tokens)
        tokens_all = histogram.tokens
        for index in np.nonzero(keep)[0]:
            if tokens_all[int(index)] in excluded:
                keep[index] = False
    candidate_indices = np.nonzero(keep)[0]
    tokens = histogram.tokens
    counts_list = arrays.counts.tolist()
    slack_list = slack.tolist()
    eligible: List[EligiblePair] = []
    for position, i in enumerate(candidate_indices):
        token_i = tokens[i]
        slack_i = slack_list[i]
        frequency_i = counts_list[i]
        for j in candidate_indices[position + 1 :]:
            token_j = tokens[j]
            modulus = pair_modulus(token_i, token_j, secret, modulus_cap)
            if not _boundary_allows(modulus, slack_i, slack_list[j]):
                continue
            difference = frequency_i - counts_list[j]
            remainder = difference % modulus
            if require_modification and remainder == 0:
                continue
            eligible.append(
                EligiblePair(
                    pair=TokenPair(token_i, token_j),
                    modulus=modulus,
                    remainder=remainder,
                    frequency_difference=difference,
                )
            )
    eligible.sort(key=lambda item: (item.cost, item.pair))
    return eligible


def eligible_pair_index(pairs: Sequence[EligiblePair]) -> Dict[TokenPair, EligiblePair]:
    """Index eligible pairs by their token pair for O(1) lookups."""
    return {item.pair: item for item in pairs}


__all__ = [
    "EligiblePair",
    "iter_candidate_pairs",
    "generate_eligible_pairs",
    "eligible_pair_index",
]
