"""Eligible-pair generation (the paper's ``Eligible`` step).

A pair of tokens ``(tk_i, tk_j)`` is *eligible* for watermarking when the
frequency nudges required to make their difference a multiple of the
pair's modulus ``s_ij`` cannot break the ranking constraint. Concretely,
with boundaries ``u``/``l`` computed on the original histogram, the paper
requires::

    min(u_i, l_i, u_j, l_j) >= ceil(s_ij / 2)    and    s_ij >= 2

because the frequency-modification rule never moves either token by more
than ``ceil(s_ij / 2)`` appearances in either direction.

The number of candidate pairs is quadratic in the number of distinct
tokens (|D^hist| choose 2 — e.g. ~21.6 M pairs for the Taxi dataset's
6 573 tokens), so this module also offers a *candidate cap*: the
evaluation-scale datasets in the paper all fit the exhaustive scan, but
callers can bound the scan to the pairs formed by the ``max_candidates``
most promising tokens to keep generation latency predictable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import ArrayBackend, BackendLike, resolve_backend
from repro.core.hashing import PairModulusCache, pair_modulus
from repro.core.histogram import TokenHistogram
from repro.core.tokens import TokenPair
from repro.exceptions import EligibilityError


@dataclass(frozen=True)
class EligiblePair:
    """A token pair that may be watermarked, with its precomputed values.

    Attributes
    ----------
    pair:
        The token pair with the higher-frequency member first.
    modulus:
        The pair modulus ``s_ij`` derived from the secret.
    remainder:
        ``(f_i - f_j) mod s_ij`` on the original histogram — the quantity
        the watermark will drive to zero.
    frequency_difference:
        ``f_i - f_j`` on the original histogram (non-negative).
    """

    pair: TokenPair
    modulus: int
    remainder: int
    frequency_difference: int

    @property
    def cost(self) -> int:
        """Total number of appearance changes needed to watermark the pair.

        If the remainder ``r`` is at most half the modulus the difference is
        *reduced* by ``r`` (cost ``r`` split across the two tokens);
        otherwise the difference is *increased* to the next multiple, which
        costs ``s_ij - r`` changes. This is exactly the magnitude the
        frequency-modification stage will apply.
        """
        if self.remainder == 0:
            return 0
        if self.remainder <= self.modulus // 2:
            return self.remainder
        return self.modulus - self.remainder


def _boundary_allows(modulus: int, slack_i: int, slack_j: int) -> bool:
    """The boundary rule ``min(u_i, l_i, u_j, l_j) >= ceil(s_ij / 2)``.

    ``slack`` is each token's binding boundary ``min(u, l)`` (with the
    top-ranked token's unbounded upper collapsing to its lower), so the
    rule reduces to both slacks covering ``ceil(s_ij / 2)``.
    """
    if modulus < 2:
        return False
    needed = (modulus + 1) // 2
    return slack_i >= needed and slack_j >= needed


def _candidate_token_mask(
    histogram: TokenHistogram, max_candidates: Optional[int]
) -> "np.ndarray":
    """Boolean mask (rank order) of the tokens admitted to the pair scan.

    With ``max_candidates`` set, tokens are ranked by boundary slack
    (stable sort, so descending-frequency order breaks ties) and only the
    top ``max_candidates`` are kept — the single implementation behind
    both :func:`iter_candidate_pairs` and :func:`generate_eligible_pairs`.
    """
    slack = histogram.arrays().slack()
    keep = np.ones(slack.size, dtype=bool)
    if max_candidates is not None and max_candidates < slack.size:
        ranking = np.argsort(-slack, kind="stable")
        keep = np.zeros(slack.size, dtype=bool)
        keep[ranking[:max_candidates]] = True
    return keep


def iter_candidate_pairs(
    histogram: TokenHistogram,
    *,
    max_candidates: Optional[int] = None,
) -> Iterator[Tuple[str, str]]:
    """Yield candidate ``(higher-frequency token, lower-frequency token)`` pairs.

    Candidates are enumerated over the descending-frequency order so the
    first element of each yielded tuple always has frequency greater than
    or equal to the second. When ``max_candidates`` is given only the
    tokens with the largest boundary slack take part, which keeps the scan
    sub-quadratic for very wide histograms.
    """
    keep = _candidate_token_mask(histogram, max_candidates)
    tokens: Sequence[str] = [
        token for token, kept in zip(histogram.tokens, keep) if kept
    ]
    for i in range(len(tokens)):
        for j in range(i + 1, len(tokens)):
            yield tokens[i], tokens[j]


@dataclass(frozen=True)
class EligibilityContext:
    """Secret-independent precomputation of one histogram's pair scan.

    Everything the eligibility scan reads about the *histogram* — the
    descending token order, counts, boundary slacks and the candidate
    index set after the slack / ``max_candidates`` / ``excluded_tokens``
    filters — depends only on the histogram and the generation knobs,
    never on the secret ``R``. Batch embedding over many candidate
    secrets for one dataset therefore builds this once
    (:meth:`build`) and re-runs only the secret-dependent part
    (moduli and remainders) per secret.

    Instances are plain captured state; reusing a context with a
    histogram it was not built from produces garbage, so only
    :func:`generate_eligible_pairs` and the batch generator pass them
    around.
    """

    tokens: Tuple[str, ...]
    counts: Tuple[int, ...]
    slack: Tuple[int, ...]
    candidate_indices: Tuple[int, ...]

    @classmethod
    def build(
        cls,
        histogram: TokenHistogram,
        *,
        max_candidates: Optional[int] = None,
        excluded_tokens: Optional[Sequence[str]] = None,
    ) -> "EligibilityContext":
        """Capture the histogram-side scan state for the given knobs."""
        arrays = histogram.arrays()
        slack = arrays.slack()
        keep = _candidate_token_mask(histogram, max_candidates)
        # Boundary pre-filter: every valid modulus needs ceil(s_ij / 2) >= 1
        # slack on both tokens, so tokens whose binding boundary is zero (an
        # equal-frequency neighbour on the tight side) can never take part in
        # an eligible pair — drop them before the quadratic scan instead of
        # hashing their pairs. On flat histograms this removes almost all
        # candidates; on the paper's power-law data it is a no-op.
        keep &= slack >= 1
        tokens_all = histogram.tokens
        if excluded_tokens:
            excluded = set(excluded_tokens)
            for index in np.nonzero(keep)[0]:
                if tokens_all[int(index)] in excluded:
                    keep[index] = False
        return cls(
            tokens=tuple(tokens_all),
            counts=tuple(arrays.counts.tolist()),
            slack=tuple(slack.tolist()),
            candidate_indices=tuple(int(i) for i in np.nonzero(keep)[0]),
        )


#: Largest candidate-pair count the vectorized scan materialises index
#: arrays for; wider histograms fall back to the streaming loop, which
#: allocates only for survivors (values are identical either way).
VECTOR_SCAN_MAX_PAIRS = 2_000_000

#: Total pairs a plan store may retain across its cached vocabularies
#: (~160 MB of plan arrays at worst). One shared owner secret applied to
#: a stream of *different* vocabularies would otherwise accumulate one
#: unreusable plan per dataset for the whole batch; past the budget the
#: oldest plans are evicted, so a repeating vocabulary stays hot while a
#: never-repeating stream runs in bounded memory.
PLAN_STORE_PAIR_BUDGET = 4_000_000


@dataclass(frozen=True)
class PairScanPlan:
    """Vectorized scan state for one ``(secret, cap, candidate vocabulary)``.

    The pair enumeration order and every modulus depend only on the
    candidate token list and the secret — not on the frequencies — so a
    batch embedding run that revisits the same vocabulary (snapshots or
    per-buyer copies of one corpus) reuses this plan and runs each
    dataset's eligibility scan as a handful of NumPy operations instead
    of a quadratic Python loop. :meth:`scan` produces exactly the list
    the reference loop produces: pairs are enumerated in the same
    row-major ``(i, j > i)`` order and every value comes from the same
    integer arithmetic.
    """

    candidate_tokens: Tuple[str, ...]
    first_index: "np.ndarray"
    second_index: "np.ndarray"
    moduli: "np.ndarray"
    #: ``ceil(s_ij / 2)`` per pair — the slack both members must cover.
    need: "np.ndarray"
    safe_moduli: "np.ndarray"
    valid: "np.ndarray"
    #: Per-backend device copies of the pair arrays, uploaded lazily on
    #: the first scan through each backend and reused for the plan's
    #: lifetime (a memo, not part of the plan's identity).
    _device: Dict[str, Tuple] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        candidate_tokens: Sequence[str],
        modulus_cache: PairModulusCache,
    ) -> "PairScanPlan":
        """Derive (or look up) every candidate pair's modulus once."""
        count = len(candidate_tokens)
        first_index, second_index = np.triu_indices(count, k=1)
        modulus_of = modulus_cache.modulus
        moduli = np.fromiter(
            (
                modulus_of(candidate_tokens[int(i)], candidate_tokens[int(j)])
                for i, j in zip(first_index, second_index)
            ),
            dtype=np.int64,
            count=len(first_index),
        )
        valid = moduli >= 2
        return cls(
            candidate_tokens=tuple(candidate_tokens),
            first_index=first_index,
            second_index=second_index,
            moduli=moduli,
            need=(moduli + 1) // 2,
            safe_moduli=np.where(valid, moduli, 1),
            valid=valid,
        )

    def _device_buffers(self, backend: ArrayBackend) -> Tuple:
        """This plan's pair arrays on ``backend``'s device (uploaded once)."""
        buffers = self._device.get(backend.name)
        if buffers is None:
            buffers = (
                backend.from_host(self.first_index),
                backend.from_host(self.second_index),
                backend.from_host(self.need),
                backend.from_host(self.safe_moduli),
                backend.from_host(self.valid),
            )
            self._device[backend.name] = buffers
        return buffers

    def scan(
        self,
        counts: "np.ndarray",
        slack: "np.ndarray",
        *,
        require_modification: bool = False,
        backend: BackendLike = None,
    ) -> List[EligiblePair]:
        """One dataset's eligibility scan over the cached pair plan.

        ``counts`` / ``slack`` are the candidate tokens' frequencies and
        binding boundaries (aligned with :attr:`candidate_tokens`). The
        scan arithmetic runs on the resolved compute backend through
        :meth:`repro.core.backend.ArrayBackend.pair_scan`, against device
        copies of the plan arrays that are uploaded once per backend.
        """
        resolved = resolve_backend(backend)
        first_index, second_index, need, safe_moduli, valid = self._device_buffers(
            resolved
        )
        survivors, remainder, difference = resolved.pair_scan(
            counts,
            slack,
            first_index=first_index,
            second_index=second_index,
            need=need,
            safe_moduli=safe_moduli,
            valid=valid,
            require_modification=require_modification,
        )
        tokens = self.candidate_tokens
        eligible = [
            EligiblePair(
                pair=TokenPair(
                    tokens[int(self.first_index[index])],
                    tokens[int(self.second_index[index])],
                ),
                modulus=int(self.moduli[index]),
                remainder=int(remainder[position]),
                frequency_difference=int(difference[position]),
            )
            for position, index in enumerate(survivors)
        ]
        eligible.sort(key=lambda item: (item.cost, item.pair))
        return eligible


def generate_eligible_pairs(
    histogram: TokenHistogram,
    secret: int,
    modulus_cap: int,
    *,
    max_candidates: Optional[int] = None,
    excluded_tokens: Optional[Sequence[str]] = None,
    require_modification: bool = False,
    context: Optional[EligibilityContext] = None,
    modulus_cache: Optional[PairModulusCache] = None,
    plan_store: Optional[Dict[Tuple[str, ...], PairScanPlan]] = None,
    backend: BackendLike = None,
) -> List[EligiblePair]:
    """Compute the eligible pair list ``L_e`` for a histogram.

    Parameters
    ----------
    histogram:
        The original dataset's token histogram.
    secret:
        The high-entropy secret ``R``.
    modulus_cap:
        The modulus cap ``z`` (must be >= 2).
    max_candidates:
        Optional cap on the number of tokens considered (see module doc).
    excluded_tokens:
        Tokens the owner wants to shield from any frequency change (the
        paper's footnote 3); pairs touching them are never eligible.
    require_modification:
        Hardening extension beyond the paper: when True, pairs whose
        frequency difference is *already* a multiple of ``s_ij`` are not
        eligible. Such "free" pairs maximise the paper's objective but
        embed no evidence — they verify on the unwatermarked original as
        well — so owners who need the watermark to discriminate versions
        (dispute arbitration, provenance chains, per-buyer tracing) should
        enable this.
    context:
        A prebuilt :class:`EligibilityContext` for this histogram and
        these knobs, skipping the histogram-side precomputation. Batch
        embedding reuses one context across many candidate secrets.
    modulus_cache:
        A :class:`~repro.core.hashing.PairModulusCache` for ``(secret,
        modulus_cap)``; pair moduli already derived (by an earlier
        dataset of the same batch, say) are then looked up instead of
        re-hashed. Must match the secret and cap exactly.
    plan_store:
        Candidate-vocabulary -> :class:`PairScanPlan` map for this
        ``(secret, modulus_cap)`` (requires ``modulus_cache``). When the
        candidate token list repeats across a batch, the scan runs
        vectorized over the cached plan instead of looping; results are
        identical.
    backend:
        Compute backend for the vectorized scan (name, instance or
        ``None`` for the ``FREQYWM_BACKEND`` / NumPy default). The
        streaming loop fallback always runs on the host; values are
        identical on every path.

    Returns
    -------
    list of :class:`EligiblePair`, ordered by (remainder cost, pair) so the
    output is deterministic for a given histogram and secret.
    """
    if modulus_cap < 2:
        raise EligibilityError(f"modulus cap z must be >= 2, got {modulus_cap}")
    if len(histogram) < 2:
        return []
    if modulus_cache is not None and not modulus_cache.matches(secret, modulus_cap):
        raise EligibilityError(
            "modulus cache was built for a different secret or modulus cap"
        )
    if context is None:
        context = EligibilityContext.build(
            histogram,
            max_candidates=max_candidates,
            excluded_tokens=excluded_tokens,
        )
    candidate_indices = context.candidate_indices
    tokens = context.tokens
    counts_list = context.counts
    slack_list = context.slack
    pair_count = len(candidate_indices) * (len(candidate_indices) - 1) // 2
    if (
        plan_store is not None
        and modulus_cache is not None
        and pair_count <= VECTOR_SCAN_MAX_PAIRS
    ):
        candidate_tokens = tuple(tokens[i] for i in candidate_indices)
        plan = plan_store.get(candidate_tokens)
        if plan is None:
            plan = PairScanPlan.build(candidate_tokens, modulus_cache)
            plan_store[candidate_tokens] = plan
            # Bound the store by retained pairs. Hits below re-insert
            # their key, so dict order is least-recently-used-first and
            # eviction drops the coldest plan.
            while (
                len(plan_store) > 1
                and sum(len(entry.moduli) for entry in plan_store.values())
                > PLAN_STORE_PAIR_BUDGET
            ):
                plan_store.pop(next(iter(plan_store)))
        else:
            # Move-to-end so a repeating vocabulary survives eviction.
            plan_store[candidate_tokens] = plan_store.pop(candidate_tokens)
        counts = np.fromiter(
            (counts_list[i] for i in candidate_indices),
            dtype=np.int64,
            count=len(candidate_indices),
        )
        slack = np.fromiter(
            (slack_list[i] for i in candidate_indices),
            dtype=np.int64,
            count=len(candidate_indices),
        )
        return plan.scan(
            counts,
            slack,
            require_modification=require_modification,
            backend=backend,
        )
    modulus_of = (
        modulus_cache.modulus
        if modulus_cache is not None
        else lambda a, b: pair_modulus(a, b, secret, modulus_cap)
    )
    eligible: List[EligiblePair] = []
    for position, i in enumerate(candidate_indices):
        token_i = tokens[i]
        slack_i = slack_list[i]
        frequency_i = counts_list[i]
        for j in candidate_indices[position + 1 :]:
            token_j = tokens[j]
            modulus = modulus_of(token_i, token_j)
            if not _boundary_allows(modulus, slack_i, slack_list[j]):
                continue
            difference = frequency_i - counts_list[j]
            remainder = difference % modulus
            if require_modification and remainder == 0:
                continue
            eligible.append(
                EligiblePair(
                    pair=TokenPair(token_i, token_j),
                    modulus=modulus,
                    remainder=remainder,
                    frequency_difference=difference,
                )
            )
    eligible.sort(key=lambda item: (item.cost, item.pair))
    return eligible


def eligible_pair_index(pairs: Sequence[EligiblePair]) -> Dict[TokenPair, EligiblePair]:
    """Index eligible pairs by their token pair for O(1) lookups."""
    return {item.pair: item for item in pairs}


__all__ = [
    "EligiblePair",
    "EligibilityContext",
    "PairScanPlan",
    "PLAN_STORE_PAIR_BUDGET",
    "VECTOR_SCAN_MAX_PAIRS",
    "iter_candidate_pairs",
    "generate_eligible_pairs",
    "eligible_pair_index",
]
