"""Watermark generation — Algorithm I (``WM_Generate``).

The generator wires together every stage of the FreqyWM pipeline:

1. **Histogram generation** — build the descending-frequency histogram of
   the original dataset.
2. **Eligible tokens** — sample the secret ``R``, derive per-pair moduli
   ``s_ij`` and collect the pairs whose boundaries tolerate the change.
3. **Optimal selection** — pick the watermarked pairs ``L_wm`` with the
   chosen strategy (MWM + knapsack, greedy, or random) under budget ``b``.
4. **Frequency modification** — plan and apply the ceil/floor adjustments
   that zero each pair's difference modulo ``s_ij``.
5. **Data transformation** — add/remove token instances at random
   positions so the edited dataset realises the watermarked histogram.

The result bundles the watermarked dataset (histogram and, when a raw
token sequence was supplied, the edited sequence), the secret list
``L_sc`` and per-stage diagnostics used by the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import GenerationConfig
from repro.core.eligibility import EligiblePair, generate_eligible_pairs
from repro.core.hashing import generate_secret
from repro.core.histogram import TokenHistogram
from repro.core.matching import SelectionResult, select_pairs
from repro.core.modification import (
    PairAdjustment,
    apply_adjustments,
    total_cost,
    verify_alignment,
)
from repro.core.secrets import WatermarkSecret
from repro.core.similarity import ranking_preserved, similarity_percent
from repro.core.tokens import TokenValue
from repro.core.transform import transform_dataset
from repro.exceptions import GenerationError
from repro.utils.rng import RngLike, derive_rng, ensure_rng
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class WatermarkResult:
    """Everything produced by one watermark generation run.

    Attributes
    ----------
    original_histogram / watermarked_histogram:
        Token histograms before and after embedding.
    watermarked_tokens:
        The edited token sequence, or ``None`` when generation was run
        directly on a histogram (histogram-only mode).
    secret:
        The owner's secret list ``L_sc`` (pairs, ``R``, ``z``).
    selection:
        Full pair-selection diagnostics (strategy, eligible/matched/selected
        counts, final similarity).
    adjustments:
        The per-pair frequency adjustments that were applied.
    eligible_pairs:
        The eligible list ``L_e`` (useful for analysis; not secret-critical
        but derived from the secret, so treat with the same care).
    timings:
        Wall-clock seconds per pipeline stage.
    """

    original_histogram: TokenHistogram
    watermarked_histogram: TokenHistogram
    watermarked_tokens: Optional[List[str]]
    secret: WatermarkSecret
    selection: SelectionResult
    adjustments: Tuple[PairAdjustment, ...]
    eligible_pairs: Tuple[EligiblePair, ...]
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def pair_count(self) -> int:
        """Number of watermarked pairs (the paper's main size metric)."""
        return len(self.selection.selected)

    @property
    def similarity_percent(self) -> float:
        """Similarity between original and watermarked histograms (cosine, %)."""
        return similarity_percent(
            self.original_histogram.as_dict(), self.watermarked_histogram.as_dict()
        )

    @property
    def distortion_percent(self) -> float:
        """Distortion introduced by the watermark, in percent."""
        return 100.0 - self.similarity_percent

    @property
    def total_changes(self) -> int:
        """Total number of token appearances added plus removed."""
        return total_cost(self.adjustments)

    def summary(self) -> Dict[str, object]:
        """Flat summary used by the CLI, examples and benchmarks."""
        return {
            "strategy": self.selection.strategy,
            "distinct_tokens": len(self.original_histogram),
            "eligible_pairs": len(self.eligible_pairs),
            "matched_pairs": self.selection.matched_count,
            "selected_pairs": self.pair_count,
            "similarity_percent": self.similarity_percent,
            "distortion_percent": self.distortion_percent,
            "total_changes": self.total_changes,
            "generation_seconds": sum(self.timings.values()),
        }


class WatermarkGenerator:
    """Reusable ``WM_Generate`` engine configured once, applied many times.

    Parameters
    ----------
    config:
        The generation parameters (budget, modulus cap, strategy, ...).
    rng:
        Seed or generator controlling every random choice (secret sampling
        in reproducible mode, the random heuristic, insertion positions).
        ``None`` uses the OS CSPRNG for the secret — the secure default.
    """

    def __init__(self, config: Optional[GenerationConfig] = None, *, rng: RngLike = None) -> None:
        self.config = config or GenerationConfig()
        self._rng_source = rng

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(
        self,
        data: Union[Sequence[TokenValue], TokenHistogram],
        *,
        secret_value: Optional[int] = None,
    ) -> WatermarkResult:
        """Embed a watermark into ``data``.

        ``data`` may be a raw sequence of token occurrences (the normal
        case) or an already-built :class:`TokenHistogram` (histogram-only
        mode, used when the caller keeps the raw data elsewhere). An
        explicit ``secret_value`` overrides secret sampling, which the
        multi-watermarking and test code rely on.
        """
        stopwatch = Stopwatch()
        tokens: Optional[Sequence[TokenValue]]
        with stopwatch.measure("histogram"):
            if isinstance(data, TokenHistogram):
                histogram, tokens = data, None
            else:
                histogram = TokenHistogram.from_tokens(data)
                tokens = data

        if len(histogram) < 2:
            raise GenerationError(
                "watermarking needs at least two distinct tokens; the dataset "
                "has a single token value"
            )

        rng = ensure_rng(self._rng_source)
        if secret_value is None:
            secret_value = generate_secret(self.config.secret_bits, rng=self._rng_source)

        with stopwatch.measure("eligibility"):
            eligible = generate_eligible_pairs(
                histogram,
                secret_value,
                self.config.modulus_cap,
                max_candidates=self.config.max_candidates,
                excluded_tokens=self.config.excluded_tokens,
                require_modification=self.config.require_modification,
            )

        with stopwatch.measure("selection"):
            selection = select_pairs(
                histogram,
                eligible,
                self.config.budget_percent,
                strategy=self.config.strategy,
                metric=self.config.metric,
                rng=derive_rng(self._rng_source, "selection") if self._rng_source is not None else rng,
                max_pairs=self.config.max_pairs,
            )

        with stopwatch.measure("modification"):
            adjustments = selection.adjustments
            watermarked_histogram = apply_adjustments(histogram, adjustments)
            if not verify_alignment(histogram, adjustments):
                raise GenerationError("internal error: adjusted pairs are not aligned")
            if not ranking_preserved(
                histogram.as_dict(), watermarked_histogram.as_dict()
            ):
                raise GenerationError("internal error: ranking constraint violated")

        watermarked_tokens: Optional[List[str]] = None
        if tokens is not None:
            with stopwatch.measure("transformation"):
                watermarked_tokens = transform_dataset(
                    tokens,
                    histogram,
                    watermarked_histogram,
                    rng=derive_rng(self._rng_source, "transform") if self._rng_source is not None else rng,
                )

        secret = WatermarkSecret.build(
            [item.pair for item in selection.selected],
            secret_value,
            self.config.modulus_cap,
            strategy=selection.strategy,
            budget_percent=self.config.budget_percent,
            metric=self.config.metric,
            original_size=histogram.total_count(),
            distinct_tokens=len(histogram),
        )

        return WatermarkResult(
            original_histogram=histogram,
            watermarked_histogram=watermarked_histogram,
            watermarked_tokens=watermarked_tokens,
            secret=secret,
            selection=selection,
            adjustments=adjustments,
            eligible_pairs=tuple(eligible),
            timings=stopwatch.as_dict(),
        )


def generate_watermark(
    data: Union[Sequence[TokenValue], TokenHistogram],
    *,
    budget_percent: float = 2.0,
    modulus_cap: int = 131,
    strategy: str = "optimal",
    metric: str = "cosine",
    rng: RngLike = None,
    secret_value: Optional[int] = None,
    max_candidates: Optional[int] = None,
    excluded_tokens: Sequence[str] = (),
    require_modification: bool = False,
) -> WatermarkResult:
    """Functional one-shot wrapper around :class:`WatermarkGenerator`.

    This is the primary public entry point mirroring the paper's
    ``WM_Generate(D_o, b) -> (D_w, L_sc)`` signature, with the remaining
    parameters exposed as keywords.
    """
    config = GenerationConfig(
        budget_percent=budget_percent,
        modulus_cap=modulus_cap,
        strategy=strategy,
        metric=metric,
        max_candidates=max_candidates,
        excluded_tokens=tuple(excluded_tokens),
        require_modification=require_modification,
    )
    return WatermarkGenerator(config, rng=rng).generate(data, secret_value=secret_value)


__all__ = ["WatermarkResult", "WatermarkGenerator", "generate_watermark"]
